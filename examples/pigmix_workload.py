"""PigMix workload with and without ReStore.

Generates a PigMix instance, declares it as the paper's 150 GB
configuration, and runs the L2-L8/L11 subset twice per query: once on
a stock engine and once against a ReStore repository primed by an
earlier submission.  Prints a per-query speedup table like Figure 10.

Run:  python examples/pigmix_workload.py
"""

from repro.experiments.common import PigMixSandbox
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

CONFIG = PigMixConfig(
    n_page_views=300, n_users=30, n_power_users=6, n_widerow=90, seed=1
)


def main() -> None:
    print(f"{'query':6s} {'no reuse':>10s} {'reusing':>10s} {'speedup':>9s}")
    print("-" * 40)
    total_speedup = []
    for name in PIGMIX_QUERY_NAMES:
        # stock engine, fresh sandbox (session without ReStore)
        plain = PigMixSandbox("150GB", CONFIG)
        base = plain.session().run(plain.query(name, f"out/{name}"))

        # ReStore-enabled sandbox: one session, prime then resubmit
        sandbox = PigMixSandbox("150GB", CONFIG)
        session = sandbox.session(sandbox.manager(
            heuristic="aggressive", register_whole_jobs="temporary-only"
        ))
        session.run(sandbox.query(name, f"out/{name}_p"))
        reused = session.run(sandbox.query(name, f"out/{name}_r"))

        speedup = base.sim_seconds / max(1e-9, reused.sim_seconds)
        total_speedup.append(speedup)
        print(
            f"{name:6s} {base.sim_minutes:8.2f}m {reused.sim_minutes:8.2f}m "
            f"{speedup:8.1f}x"
        )
    print("-" * 40)
    print(f"average speedup: {sum(total_speedup) / len(total_speedup):.1f}x "
          f"(paper: 24.4x at 150GB)")


if __name__ == "__main__":
    main()
