"""A multi-analyst log-analysis scenario with repository management.

Models the motivating workload of the paper's introduction: a team of
analysts repeatedly querying a shared clickstream dataset ("load,
filter, then drill down").  Queries arrive over several days; ReStore
shares work across them, and the §5 eviction rules (time-window and
input-modified) keep the repository honest when logs rotate.

Built with the fluent session builder (eviction policies by name) and
a live subscription on the typed event bus.

Run:  python examples/log_analysis.py
"""

from repro import EntryEvicted, JobEliminated, ReStoreSession, RewriteApplied

LOG_SCHEMA = (
    "ip, user, timestamp:int, url, status:int, bytes:int, referrer, agent"
)


def write_logs(dfs, day: int, n: int = 60) -> None:
    rows = []
    for i in range(n):
        status = 200 if i % 7 else 500
        rows.append(
            f"10.0.0.{i % 9}\tuser_{i % 6}\t{day * 100000 + i}"
            f"\t/page/{i % 12}\t{status}\t{100 + i}\tref{i % 3}\tua{i % 2}"
        )
    dfs.write_file("logs/access", "\n".join(rows) + "\n", overwrite=True)


def analyst_queries(day: int):
    """Three analysts, overlapping prefixes, different drill-downs."""
    base = f"""
        A = load 'logs/access' as ({LOG_SCHEMA});
        B = filter A by status == 500;
        C = foreach B generate user, url, bytes;
    """
    return {
        f"errors_by_user_d{day}": base
        + f"""
        D = group C by user;
        E = foreach D generate group, COUNT(C.url);
        store E into 'reports/errors_by_user_d{day}';
        """,
        f"errors_by_url_d{day}": base
        + f"""
        D = group C by url;
        E = foreach D generate group, COUNT(C.user);
        store E into 'reports/errors_by_url_d{day}';
        """,
        f"error_bytes_d{day}": base
        + f"""
        D = group C all;
        E = foreach D generate SUM(C.bytes);
        store E into 'reports/error_bytes_d{day}';
        """,
    }


def main() -> None:
    session = (
        ReStoreSession.builder()
        .datanodes(4)
        .heuristic("aggressive")
        .evict("time-window:6", "input-modified")
        .build()
    )
    # Live telemetry: evictions announce themselves as they happen.
    session.events.subscribe(
        lambda event: print(f"      ! {event}"), event_types=EntryEvicted
    )

    for day in (1, 2, 3):
        print(f"=== day {day}: logs rotate, three analysts submit ===")
        write_logs(session.dfs, day)
        for name, query in analyst_queries(day).items():
            result = session.run(query, name=name)
            decisions = [
                e
                for e in result.events
                if isinstance(e, (RewriteApplied, JobEliminated))
            ]
            reuse = "reused" if decisions else "computed"
            print(
                f"  {name:22s} {result.sim_minutes:6.2f} sim-min  [{reuse}]"
            )
            for event in decisions:
                print(f"      {event.render()}")
        print(
            f"  repository: {len(session.repository)} entries, "
            f"{session.repository.total_stored_bytes} stored bytes"
        )

    print("\nThe first analyst of each day computes the shared filter;")
    print("the other two reuse it. Rotating the logs (input-modified rule)")
    print("evicts the previous day's entries automatically.")


if __name__ == "__main__":
    main()
