"""Quickstart: the paper's Q1/Q2 example end to end.

Opens a :class:`repro.ReStoreSession` (simulated cluster + ReStore in
one object), runs Q1 (join of page_views and users), then submits Q2
(same join + group/aggregate) and watches ReStore answer Q2's join job
entirely from Q1's stored output — the flow of the paper's Figures 2-4.

Run:  python examples/quickstart.py
"""

from repro import ReStoreSession

# 1. A session: simulated HDFS + cluster + ReStore, wired together -------------------

session = ReStoreSession(datanodes=4)
session.write_file(
    "data/page_views",
    "\n".join(
        f"user_{i % 5}\t{i % 3}\t{1000 + i}\t{i * 0.5}\tinfo{i}\tlinks{i}"
        for i in range(50)
    )
    + "\n",
)
session.write_file(
    "data/users",
    "\n".join(
        f"user_{i}\t555-010{i}\t{i} king st\twaterloo" for i in range(4)
    )
    + "\n",
)

Q1 = """
A = load 'data/page_views' as (user, action:int, timestamp:int,
    est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into 'out/q1';
"""

Q2 = """
A = load 'data/page_views' as (user, action:int, timestamp:int,
    est_revenue:double, page_info, page_links);
B = foreach A generate user, est_revenue;
alpha = load 'data/users' as (name, phone, address, city);
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, SUM(C.est_revenue);
store E into 'out/q2';
"""

# 2. Run Q1; its job outputs and sub-jobs populate the repository ----------------------

r1 = session.run(Q1, name="Q1")
print(f"Q1 produced {len(r1.outputs['out/q1'])} join rows "
      f"in {r1.sim_minutes:.2f} simulated minutes")
print(f"repository now holds {len(session.repository)} entries:")
for entry in session.repository.ordered_entries():
    print(f"  {entry.entry_id}  {entry.anchor_kind:10s} -> {entry.output_path}")

# 3. Run Q2: the matcher finds Q1's stored join and rewrites ---------------------------

r2 = session.run(Q2, name="Q2")
print(f"\nQ2 answered in {r2.sim_minutes:.2f} simulated minutes "
      f"(Q1 took {r1.sim_minutes:.2f})")
print("typed events for the run:")
for event in r2.events:
    print(f"  {type(event).__name__}: {event}")
print("\nper-user revenue:")
for user, revenue in sorted(r2.outputs["out/q2"]):
    print(f"  {user}: {revenue:.1f}")

print("\nsession summary:")
print(session.report())
