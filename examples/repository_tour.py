"""A tour of the ReStore repository internals.

Shows the machinery the paper describes in §2.2-§5: what an entry
stores, how the §3 ordering rules (subsumption first, then I/O ratio
and execution time) arrange the scan order, plan rendering, and
snapshot persistence across engine restarts.

Run:  python examples/repository_tour.py
"""

from repro import ReStoreSession
from repro.persistence.snapshot import RepositorySnapshot

PV = "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"


def main() -> None:
    session = ReStoreSession(datanodes=4)
    session.write_file(
        "data/page_views",
        "\n".join(
            f"u{i % 6}\t{i % 4}\t{i}\t{i * 0.25}\tinfo\tlinks" for i in range(80)
        )
        + "\n",
    )

    session.run(f"""
        A = load 'data/page_views' as ({PV});
        B = filter A by est_revenue > 5.0;
        C = foreach B generate user, est_revenue;
        D = group C by user;
        E = foreach D generate group, SUM(C.est_revenue);
        store E into 'out/revenue';
    """)

    print("=== repository contents (scan order) ===")
    for entry in session.repository.ordered_entries():
        stats = entry.stats
        print(
            f"{entry.entry_id}  kind={entry.anchor_kind:10s} "
            f"in={stats.input_bytes:6d}B out={stats.output_bytes:6d}B "
            f"ratio={stats.io_ratio:7.1f} est={stats.exec_time_s:6.1f}s "
            f"-> {entry.output_path}"
        )

    print("\n=== one stored physical plan ===")
    biggest = session.repository.ordered_entries()[0]
    print(biggest.plan.describe())

    print("\n=== GraphViz rendering (paste into dot) ===")
    print(biggest.plan.to_dot("stored_plan"))

    print("\n=== subsumption (§3 ordering rule 1) ===")
    entries = session.repository.ordered_entries()
    matcher = session.manager.matcher
    for a in entries[:4]:
        for b in entries[:4]:
            if a is not b and matcher.contains(a.plan, b.plan):
                print(f"{a.entry_id} subsumes {b.entry_id}")

    print("\n=== persistence round trip ===")
    payload = RepositorySnapshot.capture(session.repository).to_bytes()
    restored = RepositorySnapshot.from_bytes(payload).restore_repository()
    print(
        f"serialized {len(payload)} bytes; restored "
        f"{len(restored)} entries with matching fingerprints: "
        + str(
            all(
                restored.get(e.entry_id).plan.fingerprint()
                == e.plan.fingerprint()
                for e in session.repository
            )
        )
    )


if __name__ == "__main__":
    main()
