"""Physical operators and plan DAGs (what ReStore stores and matches)."""

from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan

__all__ = [
    "PhysicalOperator",
    "PhysicalPlan",
    "POFilter",
    "POForEach",
    "POGlobalRearrange",
    "POLimit",
    "POLoad",
    "POLocalRearrange",
    "POPackage",
    "POSplit",
    "POStore",
    "POUnion",
    "linear_plan",
]
