"""Physical plan DAGs.

A :class:`PhysicalPlan` is the unit ReStore stores, matches and
rewrites: a DAG of :class:`PhysicalOperator` nodes from ``POLoad``
sources to ``POStore`` sinks, with ordered edges (input order matters
for join/cogroup branch numbering).

Plans carry Merkle-style structural fingerprints: each operator's
fingerprint is a digest of its own :meth:`signature` hash plus the
ordered fingerprints of its inputs, and the plan fingerprint combines
the sink fingerprints.  All of it is cached and invalidated whenever
the DAG mutates (or an operator's version changes), so repeated
repository lookups cost a dict probe instead of a recursive hash.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.exceptions import PlanError
from repro.pig.physical.operators import (
    PhysicalOperator,
    POGlobalRearrange,
    POLoad,
    POSplit,
    POStore,
)


class PhysicalPlan:
    """A DAG of physical operators with ordered edges."""

    def __init__(self):
        self._ops: Dict[int, PhysicalOperator] = {}
        self._succs: Dict[int, List[int]] = {}
        self._preds: Dict[int, List[int]] = {}
        # fingerprint caches, dropped on any structural mutation and
        # revalidated against per-operator versions (see _fp_token)
        self._fp_token: Optional[tuple] = None
        self._fp_by_op: Dict[int, str] = {}
        self._fp_plan: Optional[str] = None
        self._fp_load_sigs: Optional[frozenset] = None
        self._fp_sig_counts: Optional[Dict[str, int]] = None

    # -- construction ---------------------------------------------------------------

    def _mutated(self) -> None:
        """Invalidate every cached fingerprint (structure changed)."""
        self._fp_token = None
        self._fp_by_op = {}
        self._fp_plan = None
        self._fp_load_sigs = None
        self._fp_sig_counts = None

    def add(self, op: PhysicalOperator) -> PhysicalOperator:
        if op.op_id in self._ops:
            return op
        self._ops[op.op_id] = op
        self._succs[op.op_id] = []
        self._preds[op.op_id] = []
        self._mutated()
        return op

    def connect(self, src: PhysicalOperator, dst: PhysicalOperator) -> None:
        if src.op_id not in self._ops or dst.op_id not in self._ops:
            raise PlanError("connect: both operators must be added to the plan")
        self._succs[src.op_id].append(dst.op_id)
        self._preds[dst.op_id].append(src.op_id)
        self._mutated()

    def disconnect(self, src: PhysicalOperator, dst: PhysicalOperator) -> None:
        try:
            self._succs[src.op_id].remove(dst.op_id)
            self._preds[dst.op_id].remove(src.op_id)
        except (KeyError, ValueError):
            raise PlanError(
                f"disconnect: no edge {src.op_id} -> {dst.op_id}"
            ) from None
        self._mutated()

    def remove(self, op: PhysicalOperator) -> None:
        """Remove *op* and all its edges."""
        if op.op_id not in self._ops:
            return
        for succ_id in list(self._succs[op.op_id]):
            self._preds[succ_id].remove(op.op_id)
        for pred_id in list(self._preds[op.op_id]):
            self._succs[pred_id].remove(op.op_id)
        del self._ops[op.op_id]
        del self._succs[op.op_id]
        del self._preds[op.op_id]
        self._mutated()

    def insert_between(
        self,
        src: PhysicalOperator,
        dst: PhysicalOperator,
        op: PhysicalOperator,
    ) -> PhysicalOperator:
        """Splice *op* onto the edge src→dst, preserving edge order."""
        self.add(op)
        position = self._succs[src.op_id].index(dst.op_id)
        self._succs[src.op_id][position] = op.op_id
        self._preds[op.op_id].append(src.op_id)
        position = self._preds[dst.op_id].index(src.op_id)
        self._preds[dst.op_id][position] = op.op_id
        self._succs[op.op_id].append(dst.op_id)
        self._mutated()
        return op

    # -- inspection --------------------------------------------------------------------

    def __contains__(self, op: PhysicalOperator) -> bool:
        return op.op_id in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[PhysicalOperator]:
        return iter(list(self._ops.values()))

    @property
    def operators(self) -> List[PhysicalOperator]:
        return list(self._ops.values())

    def op_by_id(self, op_id: int) -> PhysicalOperator:
        return self._ops[op_id]

    def successors(self, op: PhysicalOperator) -> List[PhysicalOperator]:
        return [self._ops[i] for i in self._succs[op.op_id]]

    def predecessors(self, op: PhysicalOperator) -> List[PhysicalOperator]:
        return [self._ops[i] for i in self._preds[op.op_id]]

    def sources(self) -> List[PhysicalOperator]:
        """Operators with no predecessors (normally POLoads)."""
        return [op for op in self._ops.values() if not self._preds[op.op_id]]

    def sinks(self) -> List[PhysicalOperator]:
        """Operators with no successors (normally POStores)."""
        return [op for op in self._ops.values() if not self._succs[op.op_id]]

    def loads(self) -> List[POLoad]:
        return [op for op in self._ops.values() if isinstance(op, POLoad)]

    def stores(self) -> List[POStore]:
        return [op for op in self._ops.values() if isinstance(op, POStore)]

    def primary_store(self) -> Optional[POStore]:
        for op in self.stores():
            if not op.side:
                return op
        return None

    def side_stores(self) -> List[POStore]:
        return [op for op in self.stores() if op.side]

    def global_rearrange(self) -> Optional[POGlobalRearrange]:
        for op in self._ops.values():
            if isinstance(op, POGlobalRearrange):
                return op
        return None

    def topo_order(self) -> List[PhysicalOperator]:
        """Kahn topological order; raises on cycles."""
        in_deg = {i: len(p) for i, p in self._preds.items()}
        frontier = [i for i, d in in_deg.items() if d == 0]
        order: List[int] = []
        while frontier:
            # pop smallest id for determinism
            frontier.sort()
            node = frontier.pop(0)
            order.append(node)
            for succ in self._succs[node]:
                in_deg[succ] -= 1
                if in_deg[succ] == 0:
                    frontier.append(succ)
        if len(order) != len(self._ops):
            raise PlanError("physical plan contains a cycle")
        return [self._ops[i] for i in order]

    def upstream_closure(self, op: PhysicalOperator) -> Set[int]:
        """Ids of *op* and everything reachable backwards from it."""
        seen: Set[int] = set()
        stack = [op.op_id]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._preds[node])
        return seen

    def downstream_closure(self, op: PhysicalOperator) -> Set[int]:
        seen: Set[int] = set()
        stack = [op.op_id]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            stack.extend(self._succs[node])
        return seen

    # -- validation -----------------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants the executor relies on."""
        self.topo_order()  # raises on cycles
        gr_count = 0
        for op in self._ops.values():
            succs = self._succs[op.op_id]
            if len(succs) > 1 and not isinstance(op, POSplit):
                raise PlanError(
                    f"only POSplit may have multiple successors, found {op!r}"
                )
            if isinstance(op, POGlobalRearrange):
                gr_count += 1
            if isinstance(op, POStore) and succs:
                raise PlanError(f"store must be a sink: {op!r}")
            if isinstance(op, POLoad) and self._preds[op.op_id]:
                raise PlanError(f"load must be a source: {op!r}")
        if gr_count > 1:
            raise PlanError("a job plan may contain at most one shuffle")
        for op in self.sources():
            if not isinstance(op, POLoad):
                raise PlanError(f"plan source is not a load: {op!r}")
        for op in self.sinks():
            if not isinstance(op, POStore):
                raise PlanError(f"plan sink is not a store: {op!r}")

    # -- cloning / extraction ---------------------------------------------------------------

    def clone(self) -> Tuple["PhysicalPlan", Dict[int, PhysicalOperator]]:
        """Deep-copy the DAG; returns (plan, old_id -> new_op mapping)."""
        out = PhysicalPlan()
        mapping: Dict[int, PhysicalOperator] = {}
        for op in self._ops.values():
            twin = op.copy()
            mapping[op.op_id] = twin
            out.add(twin)
        for src_id, succ_ids in self._succs.items():
            for dst_id in succ_ids:
                out.connect(mapping[src_id], mapping[dst_id])
        return out, mapping

    def subplan_upto(self, op: PhysicalOperator) -> "PhysicalPlan":
        """Clone of everything upstream of *op* (inclusive).

        This is the physical plan of the sub-job that ends at *op*
        (paper §4: the candidate sub-job ``J_P``); callers append a
        Store to complete it.
        """
        return self.subplan_upto_mapped(op)[0]

    def subplan_upto_mapped(
        self, op: PhysicalOperator
    ) -> Tuple["PhysicalPlan", Dict[int, PhysicalOperator]]:
        """:meth:`subplan_upto` plus the old-id -> clone mapping.

        The mapping is how callers locate a specific operator's twin
        inside the extracted plan — matching clones by signature is
        ambiguous the moment two operators compute the same thing
        (two sinks with equal signatures would pick an arbitrary one).
        A contracted pass-through split maps to the operator that
        absorbed its edge.
        """
        keep = self.upstream_closure(op)
        out = PhysicalPlan()
        mapping: Dict[int, PhysicalOperator] = {}
        for op_id in keep:
            twin = self._ops[op_id].copy()
            mapping[op_id] = twin
            out.add(twin)
        for src_id in keep:
            for dst_id in self._succs[src_id]:
                if dst_id in keep:
                    out.connect(mapping[src_id], mapping[dst_id])
        # Drop dangling POSplit tees copied along the way: a split whose
        # only purpose was branching to ops outside the kept set becomes
        # a pass-through; contract splits with a single successor.
        for op_id in list(keep):
            twin = mapping[op_id]
            if isinstance(twin, POSplit):
                succs = out.successors(twin)
                preds = out.predecessors(twin)
                if len(succs) <= 1 and len(preds) == 1:
                    pred = preds[0]
                    out.remove(twin)
                    if succs:
                        out.connect(pred, succs[0])
                    mapping[op_id] = pred
        return out, mapping

    # -- fingerprints / serialization ----------------------------------------------------------

    def _current_token(self) -> tuple:
        """Cheap validity token: (op_id, version) for every operator.
        Catches in-place operator mutations (schema assignment,
        redirected load paths) that the structural mutators can't see."""
        return tuple(
            (op_id, op.version) for op_id, op in self._ops.items()
        )

    def _ensure_fingerprints(self) -> None:
        token = self._current_token()
        if self._fp_token == token:
            return
        by_op: Dict[int, str] = {}
        for op in self.topo_order():
            payload = op.signature_hash() + "".join(
                by_op[p.op_id] for p in self.predecessors(op)
            )
            by_op[op.op_id] = hashlib.blake2b(
                payload.encode("ascii"), digest_size=12
            ).hexdigest()
        self._fp_by_op = by_op
        self._fp_plan = "|".join(
            sorted(by_op[s.op_id] for s in self.sinks())
        )
        self._fp_load_sigs = frozenset(
            op.signature_hash() for op in self.loads()
        )
        counts: Counter = Counter(
            op.signature_hash()
            for op in self._ops.values()
            if not isinstance(op, (POStore, POSplit))
        )
        self._fp_sig_counts = dict(counts)
        self._fp_token = token

    def op_fingerprint(self, op: PhysicalOperator) -> str:
        """Merkle fingerprint of *op*: digest of its signature hash
        plus the ordered fingerprints of its inputs."""
        self._ensure_fingerprints()
        return self._fp_by_op[op.op_id]

    def fingerprint(self) -> str:
        """Canonical fingerprint of the whole DAG (sink-anchored).

        Equal fingerprints ⇔ structurally equivalent computations:
        the same operator signatures wired the same way (store paths
        and operator ids excluded).  Cached; invalidated on mutation.
        """
        self._ensure_fingerprints()
        return self._fp_plan  # type: ignore[return-value]

    def load_signature_set(self) -> frozenset:
        """Signature hashes of this plan's Load operators — the keys
        the repository's inverted index prunes candidates with."""
        self._ensure_fingerprints()
        return self._fp_load_sigs  # type: ignore[return-value]

    def signature_counts(self) -> Mapping[str, int]:
        """Multiset of operator signature hashes (Stores and Splits
        excluded — the matcher looks through the former's paths and
        the latter's tees).  A repository plan can only be contained
        in an input plan when its multiset is a sub-multiset of the
        input's, which makes this the index's pruning predicate."""
        self._ensure_fingerprints()
        return self._fp_sig_counts  # type: ignore[return-value]

    def to_dict(self) -> dict:
        ids = {op.op_id: idx for idx, op in enumerate(self._ops.values())}
        return {
            "ops": [op.to_dict() for op in self._ops.values()],
            "edges": [
                [ids[src], ids[dst]]
                for src in self._ops
                for dst in self._succs[src]
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhysicalPlan":
        plan = cls()
        ops = [PhysicalOperator.from_dict(d) for d in data["ops"]]
        for op in ops:
            plan.add(op)
        for src_idx, dst_idx in data["edges"]:
            plan.connect(ops[src_idx], ops[dst_idx])
        return plan

    # -- rendering --------------------------------------------------------------------------------

    def to_dot(self, name: str = "plan") -> str:
        """GraphViz rendering for docs and debugging."""
        lines = [f"digraph {name} {{", "  rankdir=LR;"]
        for op in self._ops.values():
            label = op.describe().replace('"', "'")
            lines.append(f'  n{op.op_id} [label="{label}"];')
        for src, dsts in self._succs.items():
            for dst in dsts:
                lines.append(f"  n{src} -> n{dst};")
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """One-line-per-op textual rendering in topological order."""
        parts = []
        for op in self.topo_order():
            preds = ",".join(str(p.op_id) for p in self.predecessors(op))
            parts.append(
                f"#{op.op_id} {op.describe()}" + (f" <- [{preds}]" if preds else "")
            )
        return "\n".join(parts)

    def __repr__(self) -> str:
        return f"PhysicalPlan(ops={len(self._ops)})"


def linear_plan(*ops: PhysicalOperator) -> PhysicalPlan:
    """Convenience: chain operators into a straight-line plan."""
    plan = PhysicalPlan()
    prev: Optional[PhysicalOperator] = None
    for op in ops:
        plan.add(op)
        if prev is not None:
            plan.connect(prev, op)
        prev = op
    return plan
