"""Physical operators — the vocabulary ReStore matches over.

These mirror Pig's physical layer: ``POLoad``/``POStore`` at job
boundaries, pipelined row operators (``POForEach``, ``POFilter``,
``POUnion``, ``POSplit``, ``POLimit``) and the shuffle triple
``POLocalRearrange`` → ``POGlobalRearrange`` → ``POPackage`` that
implements JOIN / GROUP / COGROUP / DISTINCT / ORDER.

Every operator exposes :meth:`signature` — a hashable description of
*what the operator computes*, deliberately excluding identity details
(operator ids, output paths) so that equal computations in different
queries compare equal.  ReStore's operator-equivalence test (paper §3)
is: same signature and pairwise-equivalent inputs.

:meth:`signature_hash` digests the signature into a short hex string;
plans combine these Merkle-style (operator hash + ordered input
hashes) into structural fingerprints that the repository indexes.  The
digest is cached per operator and invalidated when the operator
mutates (``schema`` assignment, or an explicit
:meth:`invalidate_fingerprint` after in-place parameter edits such as
:meth:`~repro.core.rewriter.PlanRewriter.redirect_loads`).
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Optional, Sequence, Tuple

from repro.exceptions import PlanError
from repro.relational.expressions import Expression, expression_from_dict
from repro.relational.schema import Schema

_OP_COUNTER = itertools.count(1)


class PhysicalOperator:
    """Base class for all physical operators.

    ``op_id`` is unique per process and only identifies the node inside
    a plan; it never participates in equivalence.  ``schema`` annotates
    the rows this operator emits.
    """

    #: short name used in plan rendering and serialized form
    kind: str = "abstract"

    def __init__(self, schema: Optional[Schema] = None):
        self.op_id: int = next(_OP_COUNTER)
        #: bumped on every mutation; plans use it to validate cached
        #: fingerprints that were derived from this operator
        self.version: int = 0
        self._sig_hash: Optional[str] = None
        self._schema: Optional[Schema] = schema

    # -- equivalence ------------------------------------------------------------

    @property
    def schema(self) -> Optional[Schema]:
        return self._schema

    @schema.setter
    def schema(self, value: Optional[Schema]) -> None:
        self._schema = value
        self.invalidate_fingerprint()

    def signature(self) -> tuple:
        """Hashable description of the computation (no identity)."""
        raise NotImplementedError

    def signature_hash(self) -> str:
        """Short stable digest of :meth:`signature`, cached until the
        operator mutates."""
        if self._sig_hash is None:
            payload = repr(self.signature()).encode("utf-8")
            self._sig_hash = hashlib.blake2b(
                payload, digest_size=12
            ).hexdigest()
        return self._sig_hash

    def invalidate_fingerprint(self) -> None:
        """Drop the cached signature digest after an in-place mutation
        (callers that edit parameters directly must invoke this)."""
        self.version += 1
        self._sig_hash = None

    # -- serialization -----------------------------------------------------------

    def params_dict(self) -> dict:
        """Operator-specific parameters for persistence."""
        return {}

    def to_dict(self) -> dict:
        out = {"kind": self.kind, "params": self.params_dict()}
        if self.schema is not None:
            out["schema"] = self.schema.to_dict()
        return out

    @staticmethod
    def from_dict(data: dict) -> "PhysicalOperator":
        kind = data["kind"]
        cls = _OPERATOR_KINDS.get(kind)
        if cls is None:
            raise PlanError(f"unknown physical operator kind {kind!r}")
        op = cls._from_params(data.get("params", {}))
        if "schema" in data:
            op.schema = Schema.from_dict(data["schema"])
        return op

    @classmethod
    def _from_params(cls, params: dict) -> "PhysicalOperator":
        return cls(**params)

    # -- misc ----------------------------------------------------------------------

    def copy(self) -> "PhysicalOperator":
        """A fresh operator (new op_id) computing the same thing."""
        clone = PhysicalOperator.from_dict(self.to_dict())
        return clone

    def describe(self) -> str:
        return f"{self.kind}"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.op_id} {self.describe()}>"


class POLoad(PhysicalOperator):
    """Read a DFS file and emit typed rows.

    Two loads are equivalent when they read the same path with the
    same loader and field layout — the paper's "inputs ... from the
    same data sets" condition.
    """

    kind = "load"

    def __init__(self, path: str, schema: Schema, loader: str = "PigStorage"):
        super().__init__(schema)
        self.path = path
        self.loader = loader

    def signature(self) -> tuple:
        names_types = tuple(
            (f.name, f.dtype.value) for f in (self.schema or Schema())
        )
        return ("load", self.path, self.loader, names_types)

    def params_dict(self) -> dict:
        return {"path": self.path, "loader": self.loader}

    @classmethod
    def _from_params(cls, params: dict) -> "POLoad":
        return cls(params["path"], Schema(), params.get("loader", "PigStorage"))

    def describe(self) -> str:
        return f"load {self.path!r}"


class POStore(PhysicalOperator):
    """Write incoming rows to a DFS file.

    The output *path* is excluded from the signature: a stored result
    is the same computation wherever it lands.  ``side`` marks stores
    injected by ReStore's sub-job enumerator (vs. the job's primary
    output store).
    """

    kind = "store"

    def __init__(self, path: str, schema: Optional[Schema] = None, side: bool = False):
        super().__init__(schema)
        self.path = path
        self.side = side

    def signature(self) -> tuple:
        return ("store",)

    def params_dict(self) -> dict:
        return {"path": self.path, "side": self.side}

    @classmethod
    def _from_params(cls, params: dict) -> "POStore":
        return cls(params["path"], side=params.get("side", False))

    def describe(self) -> str:
        tag = " (side)" if self.side else ""
        return f"store {self.path!r}{tag}"


class POForEach(PhysicalOperator):
    """Pig's FOREACH ... GENERATE: projection / computed fields / flatten.

    ``exprs[i]`` produces output field *i*; when ``flattens[i]`` is
    true and the value is a bag, its tuples are expanded (cross product
    across multiple flattened bags — this is how JOIN results are
    materialized after POPackage).
    """

    kind = "foreach"

    def __init__(
        self,
        exprs: Sequence[Expression],
        flattens: Optional[Sequence[bool]] = None,
        names: Optional[Sequence[str]] = None,
        schema: Optional[Schema] = None,
    ):
        super().__init__(schema)
        self.exprs: Tuple[Expression, ...] = tuple(exprs)
        self.flattens: Tuple[bool, ...] = tuple(
            flattens if flattens is not None else [False] * len(self.exprs)
        )
        self.names: Tuple[str, ...] = tuple(
            names if names is not None else [f"f{i}" for i in range(len(self.exprs))]
        )
        if len(self.flattens) != len(self.exprs):
            raise PlanError("foreach: flattens length must match exprs")

    def signature(self) -> tuple:
        return (
            "foreach",
            tuple(e.fingerprint() for e in self.exprs),
            self.flattens,
        )

    @property
    def is_pure_projection(self) -> bool:
        """True when every generated field is a bare column reference."""
        from repro.relational.expressions import Column

        return all(isinstance(e, Column) for e in self.exprs) and not any(
            self.flattens
        )

    def params_dict(self) -> dict:
        return {
            "exprs": [e.to_dict() for e in self.exprs],
            "flattens": list(self.flattens),
            "names": list(self.names),
        }

    @classmethod
    def _from_params(cls, params: dict) -> "POForEach":
        return cls(
            [expression_from_dict(e) for e in params["exprs"]],
            params.get("flattens"),
            params.get("names"),
        )

    def describe(self) -> str:
        return f"foreach gen {len(self.exprs)} fields"


class POFilter(PhysicalOperator):
    """Pig's FILTER ... BY: drop rows whose predicate is not true."""

    kind = "filter"

    def __init__(self, predicate: Expression, schema: Optional[Schema] = None):
        super().__init__(schema)
        self.predicate = predicate

    def signature(self) -> tuple:
        return ("filter", self.predicate.fingerprint())

    def params_dict(self) -> dict:
        return {"predicate": self.predicate.to_dict()}

    @classmethod
    def _from_params(cls, params: dict) -> "POFilter":
        return cls(expression_from_dict(params["predicate"]))

    def describe(self) -> str:
        return "filter"


class POLocalRearrange(PhysicalOperator):
    """Map-side key extraction feeding the shuffle.

    ``branch`` tags which input of the downstream POPackage the rows
    belong to (join/cogroup input index).
    """

    kind = "lrearrange"

    def __init__(
        self,
        key_exprs: Sequence[Expression],
        branch: int = 0,
        schema: Optional[Schema] = None,
    ):
        super().__init__(schema)
        self.key_exprs: Tuple[Expression, ...] = tuple(key_exprs)
        self.branch = branch

    def make_key(self, row):
        if len(self.key_exprs) == 1:
            return self.key_exprs[0].eval(row)
        return tuple(e.eval(row) for e in self.key_exprs)

    def signature(self) -> tuple:
        return (
            "lrearrange",
            tuple(e.fingerprint() for e in self.key_exprs),
            self.branch,
        )

    def params_dict(self) -> dict:
        return {
            "key_exprs": [e.to_dict() for e in self.key_exprs],
            "branch": self.branch,
        }

    @classmethod
    def _from_params(cls, params: dict) -> "POLocalRearrange":
        return cls(
            [expression_from_dict(e) for e in params["key_exprs"]],
            params.get("branch", 0),
        )

    def describe(self) -> str:
        return f"lrearrange branch={self.branch}"


class POGlobalRearrange(PhysicalOperator):
    """The shuffle marker — the map/reduce boundary of the job.

    A job plan contains at most one; the MR compiler cuts plans so
    this invariant holds (one shuffle per MapReduce job).
    """

    kind = "grearrange"

    def __init__(self, n_inputs: int = 1, schema: Optional[Schema] = None):
        super().__init__(schema)
        self.n_inputs = n_inputs

    def signature(self) -> tuple:
        return ("grearrange", self.n_inputs)

    def params_dict(self) -> dict:
        return {"n_inputs": self.n_inputs}

    def describe(self) -> str:
        return f"grearrange n={self.n_inputs}"


class POPackage(PhysicalOperator):
    """Reduce-side regrouping of shuffled rows.

    Modes:

    * ``group``    — emit ``(key, Bag(rows))`` for the single input;
    * ``cogroup``  — emit ``(key, Bag_0, ..., Bag_{n-1})``;
    * ``join``     — like cogroup but keys missing from any non-outer
      input are dropped (inner join); a following POForEach flattens;
    * ``distinct`` — emit each distinct row once (key = whole row);
    * ``sort``     — emit rows in key order (ORDER BY).
    """

    kind = "package"

    MODES = ("group", "cogroup", "join", "distinct", "sort")

    def __init__(
        self,
        mode: str,
        n_inputs: int = 1,
        outer_flags: Optional[Sequence[bool]] = None,
        schema: Optional[Schema] = None,
    ):
        super().__init__(schema)
        if mode not in self.MODES:
            raise PlanError(f"unknown package mode {mode!r}")
        self.mode = mode
        self.n_inputs = n_inputs
        self.outer_flags: Tuple[bool, ...] = tuple(
            outer_flags if outer_flags is not None else [False] * n_inputs
        )

    def signature(self) -> tuple:
        return ("package", self.mode, self.n_inputs, self.outer_flags)

    def params_dict(self) -> dict:
        return {
            "mode": self.mode,
            "n_inputs": self.n_inputs,
            "outer_flags": list(self.outer_flags),
        }

    def describe(self) -> str:
        return f"package {self.mode} n={self.n_inputs}"


class POFRJoin(PhysicalOperator):
    """Fragment-replicate (map-side) join — Pig's ``USING 'replicated'``.

    The second input is small enough to replicate to every mapper and
    hold in memory; the first input streams against its hash table, so
    the job needs no shuffle at all.  An extension beyond the paper's
    evaluation queries (which all use the shuffle join), included
    because real PigMix L2 runs replicated.
    """

    kind = "frjoin"

    def __init__(
        self,
        key_exprs_per_input: Sequence[Sequence["Expression"]],
        schema: Optional[Schema] = None,
    ):
        super().__init__(schema)
        self.key_exprs_per_input: Tuple[Tuple["Expression", ...], ...] = tuple(
            tuple(k) for k in key_exprs_per_input
        )
        if len(self.key_exprs_per_input) != 2:
            raise PlanError("frjoin takes exactly two inputs")

    def make_key(self, branch: int, row):
        exprs = self.key_exprs_per_input[branch]
        if len(exprs) == 1:
            return exprs[0].eval(row)
        return tuple(e.eval(row) for e in exprs)

    def signature(self) -> tuple:
        return (
            "frjoin",
            tuple(
                tuple(e.fingerprint() for e in exprs)
                for exprs in self.key_exprs_per_input
            ),
        )

    def params_dict(self) -> dict:
        return {
            "key_exprs_per_input": [
                [e.to_dict() for e in exprs]
                for exprs in self.key_exprs_per_input
            ]
        }

    @classmethod
    def _from_params(cls, params: dict) -> "POFRJoin":
        return cls(
            [
                [expression_from_dict(e) for e in exprs]
                for exprs in params["key_exprs_per_input"]
            ]
        )

    def describe(self) -> str:
        return "frjoin (replicated)"


class POSplit(PhysicalOperator):
    """A tee: forwards every row to all successors.

    This is the branching operator the paper injects together with a
    Store to materialize sub-job outputs (§4, Figure 8).
    """

    kind = "split"

    def signature(self) -> tuple:
        return ("split",)

    def describe(self) -> str:
        return "split"


class POUnion(PhysicalOperator):
    """Merge rows from several map branches (bag union, no dedup)."""

    kind = "union"

    def __init__(self, n_inputs: int = 2, schema: Optional[Schema] = None):
        super().__init__(schema)
        self.n_inputs = n_inputs

    def signature(self) -> tuple:
        return ("union", self.n_inputs)

    def params_dict(self) -> dict:
        return {"n_inputs": self.n_inputs}

    def describe(self) -> str:
        return f"union n={self.n_inputs}"


class POLimit(PhysicalOperator):
    """Emit at most *n* rows (applied where it appears in the plan)."""

    kind = "limit"

    def __init__(self, n: int, schema: Optional[Schema] = None):
        super().__init__(schema)
        self.n = n

    def signature(self) -> tuple:
        return ("limit", self.n)

    def params_dict(self) -> dict:
        return {"n": self.n}

    def describe(self) -> str:
        return f"limit {self.n}"


_OPERATOR_KINDS = {
    cls.kind: cls
    for cls in (
        POLoad,
        POStore,
        POForEach,
        POFilter,
        POFRJoin,
        POLocalRearrange,
        POGlobalRearrange,
        POPackage,
        POSplit,
        POUnion,
        POLimit,
    )
}
