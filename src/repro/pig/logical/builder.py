"""AST -> logical plan: name resolution, typing, schema propagation.

This is the Pig front-end's semantic analysis.  All field references
are resolved to positions here, so everything downstream (physical
plans, ReStore matching) is alias-independent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import SchemaError
from repro.pig import ast
from repro.pig.logical.operators import (
    LOCogroup,
    LODistinct,
    LOFilter,
    LOForEach,
    LOJoin,
    LOLimit,
    LOLoad,
    LOSort,
    LOStore,
    LOUnion,
    LogicalOperator,
    LogicalPlan,
    ResolvedGenItem,
)
from repro.relational.expressions import (
    AggCall,
    BagField,
    BagStar,
    BinaryOp,
    Column,
    Const,
    Expression,
    FuncCall,
    UnaryOp,
)
from repro.relational.expressions import AGGREGATE_FUNCTIONS, SCALAR_FUNCTIONS
from repro.relational.schema import FieldSchema, Schema
from repro.relational.types import DataType


# -- name resolution ---------------------------------------------------------------


def resolve_field(schema: Schema, name: str) -> int:
    """Resolve *name* in *schema*: exact, then unique ``::`` suffix."""
    if schema.has_field(name):
        return schema.index_of(name)
    suffix_matches = [
        i for i, f in enumerate(schema) if f.name.endswith("::" + name)
    ]
    if len(suffix_matches) == 1:
        return suffix_matches[0]
    if len(suffix_matches) > 1:
        raise SchemaError(
            f"ambiguous field {name!r}: matches "
            + ", ".join(schema[i].name for i in suffix_matches)
        )
    raise SchemaError(
        f"field {name!r} not found in schema ({', '.join(schema.names)})"
    )


def _type_of_const(value) -> DataType:
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INT
    if isinstance(value, float):
        return DataType.DOUBLE
    return DataType.CHARARRAY


_SCALAR_RESULT_TYPES = {
    "CONCAT": DataType.CHARARRAY,
    "UPPER": DataType.CHARARRAY,
    "LOWER": DataType.CHARARRAY,
    "SUBSTRING": DataType.CHARARRAY,
    "STRSPLIT": DataType.TUPLE,
    "SIZE": DataType.LONG,
    "ABS": DataType.DOUBLE,
    "ROUND": DataType.LONG,
    "FLOOR": DataType.LONG,
    "CEIL": DataType.LONG,
    "LOG": DataType.DOUBLE,
}


def infer_type(expr: Expression, schema: Schema) -> FieldSchema:
    """Best-effort output field type of *expr* over *schema* rows."""
    if isinstance(expr, Column):
        field = schema[expr.index]
        return FieldSchema(field.name, field.dtype, field.inner)
    if isinstance(expr, Const):
        return FieldSchema("const", _type_of_const(expr.value))
    if isinstance(expr, BagField):
        inner = schema[expr.bag_index].inner or Schema()
        if expr.field_index < len(inner):
            f = inner[expr.field_index]
            return FieldSchema(f.name, f.dtype, f.inner)
        return FieldSchema("value", DataType.BYTEARRAY)
    if isinstance(expr, BagStar):
        field = schema[expr.bag_index]
        return FieldSchema(field.name, DataType.BAG, field.inner)
    if isinstance(expr, AggCall):
        name = expr.name.upper()
        source = infer_type(expr.arg, schema)
        if name in ("COUNT", "COUNT_STAR"):
            return FieldSchema("count", DataType.LONG)
        if name == "AVG":
            return FieldSchema("avg", DataType.DOUBLE)
        if name == "SUM":
            dtype = (
                DataType.DOUBLE
                if source.dtype in (DataType.FLOAT, DataType.DOUBLE)
                else DataType.LONG
            )
            return FieldSchema("sum", dtype)
        return FieldSchema(name.lower(), source.dtype)
    if isinstance(expr, BinaryOp):
        if expr.op in ("==", "!=", "<", "<=", ">", ">=", "and", "or"):
            return FieldSchema("bool", DataType.BOOLEAN)
        left = infer_type(expr.left, schema)
        right = infer_type(expr.right, schema)
        if DataType.DOUBLE in (left.dtype, right.dtype) or DataType.FLOAT in (
            left.dtype,
            right.dtype,
        ) or expr.op == "/":
            return FieldSchema("num", DataType.DOUBLE)
        return FieldSchema("num", DataType.LONG)
    if isinstance(expr, UnaryOp):
        if expr.op in ("not", "isnull", "notnull"):
            return FieldSchema("bool", DataType.BOOLEAN)
        return infer_type(expr.operand, schema)
    if isinstance(expr, FuncCall):
        dtype = _SCALAR_RESULT_TYPES.get(expr.name.upper(), DataType.BYTEARRAY)
        return FieldSchema(expr.name.lower(), dtype)
    return FieldSchema("value", DataType.BYTEARRAY)


# -- expression resolution ----------------------------------------------------------


class ExpressionResolver:
    """Resolves AST expressions against one input schema."""

    def __init__(self, schema: Schema):
        self.schema = schema

    def resolve(self, node: ast.AstExpr) -> Expression:
        if isinstance(node, ast.ANumber):
            return Const(node.value)
        if isinstance(node, ast.AString):
            return Const(node.value)
        if isinstance(node, ast.ADollar):
            if not 0 <= node.index < len(self.schema):
                raise SchemaError(f"positional ${node.index} out of range")
            return Column(node.index, self.schema[node.index].name)
        if isinstance(node, ast.AName):
            index = resolve_field(self.schema, node.name)
            return Column(index, self.schema[index].name)
        if isinstance(node, ast.ADot):
            return self._resolve_dot(node)
        if isinstance(node, ast.ABinary):
            return BinaryOp(node.op, self.resolve(node.left), self.resolve(node.right))
        if isinstance(node, ast.AUnary):
            return UnaryOp(node.op, self.resolve(node.operand))
        if isinstance(node, ast.ACall):
            return self._resolve_call(node)
        if isinstance(node, ast.AStar):
            raise SchemaError("* is only allowed as a GENERATE item or in COUNT(*)")
        raise SchemaError(f"cannot resolve expression node {node!r}")

    def _resolve_dot(self, node: ast.ADot) -> Expression:
        if not isinstance(node.base, ast.AName):
            raise SchemaError("dotted reference base must be a name")
        base_name = node.base.name
        # Case 1: base names a bag field -> project inside the bag.
        if self.schema.has_field(base_name):
            field = self.schema.field_named(base_name)
            if field.dtype is DataType.BAG and field.inner is not None:
                bag_index = self.schema.index_of(base_name)
                if node.field == "*":
                    return BagStar(bag_index)
                inner_index = (
                    int(node.field[1:])
                    if node.field.startswith("$")
                    else resolve_field(field.inner, node.field)
                )
                return BagField(bag_index, inner_index, node.field)
        # Case 2: relation-qualified field (A.user == A::user).
        qualified = f"{base_name}::{node.field}"
        if self.schema.has_field(qualified):
            index = self.schema.index_of(qualified)
            return Column(index, qualified)
        raise SchemaError(
            f"cannot resolve dotted reference {base_name}.{node.field}"
        )

    def _resolve_call(self, node: ast.ACall) -> Expression:
        upper = node.name.upper()
        if upper in AGGREGATE_FUNCTIONS or upper == "COUNT":
            return self._resolve_aggregate(upper, node)
        if upper in SCALAR_FUNCTIONS:
            return FuncCall(upper, tuple(self.resolve(a) for a in node.args))
        raise SchemaError(f"unknown function {node.name!r}")

    def _resolve_aggregate(self, name: str, node: ast.ACall) -> Expression:
        if len(node.args) != 1:
            raise SchemaError(f"{name} takes exactly one argument")
        arg = node.args[0]
        if isinstance(arg, ast.AStar):
            bag_index = self._sole_bag_index()
            return AggCall("COUNT_STAR", BagStar(bag_index))
        resolved = self.resolve(arg)
        if isinstance(resolved, Column):
            field = self.schema[resolved.index]
            if field.dtype is DataType.BAG:
                resolved = BagStar(resolved.index)
            else:
                raise SchemaError(
                    f"{name} needs a bag argument, got scalar field "
                    f"{field.name!r} (aggregate outside GROUP?)"
                )
        if isinstance(resolved, BagStar):
            if name in ("COUNT", "COUNT_STAR"):
                return AggCall("COUNT_STAR", resolved)
            # Pig's SUM(bag) aggregates the bag's first field.
            inner = self.schema[resolved.bag_index].inner
            if inner is None or len(inner) == 0:
                raise SchemaError(f"{name} over a bag with unknown inner schema")
            return AggCall(name, BagField(resolved.bag_index, 0, inner[0].name))
        if isinstance(resolved, BagField):
            return AggCall(name, resolved)
        raise SchemaError(f"{name} argument must reference a bag")

    def _sole_bag_index(self) -> int:
        bags = [
            i for i, f in enumerate(self.schema) if f.dtype is DataType.BAG
        ]
        if len(bags) != 1:
            raise SchemaError("COUNT(*) needs exactly one bag in scope")
        return bags[0]


# -- plan building ----------------------------------------------------------------------


class LogicalPlanBuilder:
    """Builds a :class:`LogicalPlan` from a parsed script."""

    def __init__(self):
        self.env: dict = {}

    def build(self, script: ast.Script) -> LogicalPlan:
        stores: List[LOStore] = []
        for statement in script.statements:
            built = self._build_statement(statement)
            if isinstance(built, LOStore):
                stores.append(built)
        if not stores:
            raise SchemaError("script has no STORE statement")
        return LogicalPlan(stores)

    def _input(self, alias: str) -> LogicalOperator:
        try:
            return self.env[alias]
        except KeyError:
            raise SchemaError(f"unknown alias {alias!r}") from None

    def _build_statement(self, statement: ast.AstStatement):
        if isinstance(statement, ast.LoadStmt):
            return self._build_load(statement)
        if isinstance(statement, ast.ForeachStmt):
            return self._build_foreach(statement)
        if isinstance(statement, ast.FilterStmt):
            return self._build_filter(statement)
        if isinstance(statement, ast.JoinStmt):
            return self._build_join(statement)
        if isinstance(statement, ast.GroupStmt):
            return self._build_group(statement)
        if isinstance(statement, ast.DistinctStmt):
            node = LODistinct(statement.alias, self._input(statement.input_alias))
            self.env[statement.alias] = node
            return node
        if isinstance(statement, ast.UnionStmt):
            return self._build_union(statement)
        if isinstance(statement, ast.OrderStmt):
            return self._build_order(statement)
        if isinstance(statement, ast.LimitStmt):
            node = LOLimit(
                statement.alias, self._input(statement.input_alias), statement.n
            )
            self.env[statement.alias] = node
            return node
        if isinstance(statement, ast.SampleStmt):
            # SAMPLE desugars to a filter with a deterministic row-hash
            # predicate (Pig implements it the same way).
            from repro.relational.expressions import RowSample

            node = LOFilter(
                statement.alias,
                self._input(statement.input_alias),
                RowSample(statement.fraction),
            )
            self.env[statement.alias] = node
            return node
        if isinstance(statement, ast.SplitStmt):
            return self._build_split(statement)
        if isinstance(statement, ast.StoreStmt):
            return LOStore(
                self._input(statement.input_alias), statement.path, statement.storer
            )
        raise SchemaError(f"unsupported statement {statement!r}")

    def _build_load(self, statement: ast.LoadStmt) -> LOLoad:
        fields = []
        for fd in statement.schema:
            dtype = (
                DataType.from_name(fd.type_name)
                if fd.type_name
                else DataType.CHARARRAY
            )
            fields.append(FieldSchema(fd.name, dtype))
        node = LOLoad(
            statement.alias, statement.path, Schema(tuple(fields)), statement.loader
        )
        self.env[statement.alias] = node
        return node

    def _build_filter(self, statement: ast.FilterStmt) -> LOFilter:
        input_node = self._input(statement.input_alias)
        predicate = ExpressionResolver(input_node.schema).resolve(statement.predicate)
        node = LOFilter(statement.alias, input_node, predicate)
        self.env[statement.alias] = node
        return node

    def _build_foreach(self, statement: ast.ForeachStmt) -> LOForEach:
        input_node = self._input(statement.input_alias)
        resolver = ExpressionResolver(input_node.schema)
        items: List[ResolvedGenItem] = []
        out_fields: List[FieldSchema] = []
        used_names: set = set()

        def unique(name: str) -> str:
            base = name
            counter = 1
            while name in used_names:
                name = f"{base}_{counter}"
                counter += 1
            used_names.add(name)
            return name

        for item in statement.items:
            if isinstance(item.expr, ast.AStar) and not item.flatten:
                # generate * -> every input column
                for i, f in enumerate(input_node.schema):
                    items.append(
                        ResolvedGenItem(Column(i, f.name), unique(f.name), False)
                    )
                    out_fields.append(
                        FieldSchema(items[-1].name, f.dtype, f.inner)
                    )
                continue
            expr = resolver.resolve(item.expr)
            if item.flatten:
                flat_fields = self._flatten_fields(expr, input_node.schema)
                for f in flat_fields:
                    out_fields.append(FieldSchema(unique(f.name), f.dtype, f.inner))
                items.append(
                    ResolvedGenItem(expr, out_fields[-1].name, True)
                )
                continue
            inferred = infer_type(expr, input_node.schema)
            name = unique(item.alias or inferred.name)
            items.append(ResolvedGenItem(expr, name, False))
            out_fields.append(FieldSchema(name, inferred.dtype, inferred.inner))

        node = LOForEach(
            statement.alias, input_node, items, Schema(tuple(out_fields))
        )
        self.env[statement.alias] = node
        return node

    def _flatten_fields(self, expr: Expression, schema: Schema) -> List[FieldSchema]:
        """Output fields contributed by one FLATTEN(...) item."""
        if isinstance(expr, BagStar):
            inner = schema[expr.bag_index].inner
            if inner is None:
                raise SchemaError("cannot flatten a bag with unknown schema")
            return list(inner)
        if isinstance(expr, BagField):
            inner = schema[expr.bag_index].inner or Schema()
            if expr.field_index < len(inner):
                f = inner[expr.field_index]
                return [FieldSchema(f.name, f.dtype, f.inner)]
            return [FieldSchema("value", DataType.BYTEARRAY)]
        if isinstance(expr, Column):
            field = schema[expr.index]
            if field.dtype is DataType.TUPLE and field.inner is not None:
                return list(field.inner)
            if field.dtype is DataType.BAG and field.inner is not None:
                return list(field.inner)
            return [field]
        raise SchemaError("FLATTEN expects a bag or tuple expression")

    def _build_join(self, statement: ast.JoinStmt) -> LOJoin:
        input_nodes = [self._input(j.alias) for j in statement.inputs]
        key_exprs = []
        for node, join_input in zip(input_nodes, statement.inputs):
            resolver = ExpressionResolver(node.schema)
            key_exprs.append(tuple(resolver.resolve(k) for k in join_input.keys))
        arities = {len(k) for k in key_exprs}
        if len(arities) != 1:
            raise SchemaError("join key lists must have equal arity")
        # Output schema: concatenation with alias:: qualification.
        fields: List[FieldSchema] = []
        for node in input_nodes:
            for f in node.schema:
                fields.append(
                    FieldSchema(f"{node.alias}::{f.name}", f.dtype, f.inner)
                )
        schema = Schema(tuple(fields))
        if statement.strategy == "replicated":
            if any(j.outer for j in statement.inputs):
                raise SchemaError("replicated join supports inner joins only")
            if len(input_nodes) != 2:
                raise SchemaError("replicated join takes exactly two inputs")
        node = LOJoin(
            statement.alias,
            input_nodes,
            key_exprs,
            [j.outer for j in statement.inputs],
            schema,
            strategy=statement.strategy,
        )
        self.env[statement.alias] = node
        return node

    def _group_key_field(self, key_exprs, schema: Schema) -> FieldSchema:
        if len(key_exprs) == 1:
            inferred = infer_type(key_exprs[0], schema)
            return FieldSchema("group", inferred.dtype, inferred.inner)
        inner_fields = []
        used = set()
        for i, k in enumerate(key_exprs):
            inferred = infer_type(k, schema)
            name = inferred.name
            while name in used:
                name = f"{name}_{i}"
            used.add(name)
            inner_fields.append(FieldSchema(name, inferred.dtype, inferred.inner))
        return FieldSchema("group", DataType.TUPLE, Schema(tuple(inner_fields)))

    def _build_group(self, statement: ast.GroupStmt) -> LOCogroup:
        input_nodes = [self._input(a) for a in statement.inputs]
        key_exprs: List[Tuple[Expression, ...]] = []
        if statement.group_all:
            key_exprs = [(Const("all"),) for _ in input_nodes]
        else:
            for node, keys in zip(input_nodes, statement.keys_per_input):
                resolver = ExpressionResolver(node.schema)
                key_exprs.append(tuple(resolver.resolve(k) for k in keys))
        group_field = (
            FieldSchema("group", DataType.CHARARRAY)
            if statement.group_all
            else self._group_key_field(key_exprs[0], input_nodes[0].schema)
        )
        fields = [group_field]
        for node in input_nodes:
            fields.append(FieldSchema(node.alias, DataType.BAG, node.schema))
        node = LOCogroup(
            statement.alias,
            input_nodes,
            key_exprs,
            Schema(tuple(fields)),
            statement.group_all,
        )
        self.env[statement.alias] = node
        return node

    def _build_union(self, statement: ast.UnionStmt) -> LOUnion:
        input_nodes = [self._input(a) for a in statement.inputs]
        arities = {len(n.schema) for n in input_nodes}
        if len(arities) != 1:
            raise SchemaError("UNION inputs must have the same arity")
        node = LOUnion(statement.alias, input_nodes)
        self.env[statement.alias] = node
        return node

    def _build_order(self, statement: ast.OrderStmt) -> LOSort:
        input_node = self._input(statement.input_alias)
        resolver = ExpressionResolver(input_node.schema)
        sort_items = [
            (resolver.resolve(item.expr), item.ascending)
            for item in statement.items
        ]
        node = LOSort(statement.alias, input_node, sort_items)
        self.env[statement.alias] = node
        return node

    def _build_split(self, statement: ast.SplitStmt) -> Optional[LogicalOperator]:
        """SPLIT desugars to one FILTER per branch (Pig does the same)."""
        input_node = self._input(statement.input_alias)
        resolver = ExpressionResolver(input_node.schema)
        last = None
        for branch in statement.branches:
            predicate = resolver.resolve(branch.condition)
            node = LOFilter(branch.alias, input_node, predicate)
            self.env[branch.alias] = node
            last = node
        return last


def build_logical_plan(script: ast.Script) -> LogicalPlan:
    """Convenience wrapper: AST script -> logical plan."""
    return LogicalPlanBuilder().build(script)
