"""Rule-based logical optimizer.

A small but real subset of Pig's logical rules.  Besides performance,
canonicalizing plans matters for ReStore: two syntactically different
queries that compute the same thing normalize to closer plans, which
raises match rates in the repository.

Rules:

* ``MergeConsecutiveFilters`` — filter(filter(X, p), q) -> filter(X, p AND q)
* ``MergeForEach``            — composes two back-to-back pure projections
* ``PushFilterBeforeForEach`` — swaps a filter below a pure projection
* ``RemoveIdentityForEach``   — drops a projection that copies all fields
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.pig.logical.operators import (
    LOFilter,
    LOForEach,
    LogicalOperator,
    LogicalPlan,
    ResolvedGenItem,
)
from repro.relational.expressions import (
    BinaryOp,
    Column,
    Const,
    Expression,
    FuncCall,
    UnaryOp,
)


def _remap_expression(expr: Expression, mapping: Dict[int, Expression]) -> Expression:
    """Substitute column references using *mapping* (index -> expr)."""
    if isinstance(expr, Column):
        return mapping[expr.index]
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _remap_expression(expr.left, mapping),
            _remap_expression(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _remap_expression(expr.operand, mapping))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_remap_expression(a, mapping) for a in expr.args)
        )
    # Bag expressions never appear above a pure projection.
    raise ValueError(f"cannot remap {expr!r}")


def _is_scalar_expr(expr: Expression) -> bool:
    if isinstance(expr, (Column, Const)):
        return True
    if isinstance(expr, BinaryOp):
        return _is_scalar_expr(expr.left) and _is_scalar_expr(expr.right)
    if isinstance(expr, UnaryOp):
        return _is_scalar_expr(expr.operand)
    if isinstance(expr, FuncCall):
        return all(_is_scalar_expr(a) for a in expr.args)
    return False


def _is_pure_projection(node: LogicalOperator) -> bool:
    return (
        isinstance(node, LOForEach)
        and all(not item.flatten for item in node.items)
        and all(_is_scalar_expr(item.expr) for item in node.items)
    )


class Rule:
    """One rewrite rule; ``apply`` returns a replacement or None."""

    name = "rule"

    def apply(self, node: LogicalOperator) -> Optional[LogicalOperator]:
        raise NotImplementedError


class MergeConsecutiveFilters(Rule):
    name = "merge-filters"

    def apply(self, node: LogicalOperator) -> Optional[LogicalOperator]:
        if not isinstance(node, LOFilter):
            return None
        child = node.inputs[0]
        if not isinstance(child, LOFilter):
            return None
        merged_pred = BinaryOp("and", child.predicate, node.predicate)
        return LOFilter(node.alias, child.inputs[0], merged_pred)


class MergeForEach(Rule):
    name = "merge-foreach"

    def apply(self, node: LogicalOperator) -> Optional[LogicalOperator]:
        if not (_is_pure_projection(node)):
            return None
        child = node.inputs[0]
        if not _is_pure_projection(child):
            return None
        mapping = {i: item.expr for i, item in enumerate(child.items)}
        try:
            new_items = [
                ResolvedGenItem(
                    _remap_expression(item.expr, mapping), item.name, False
                )
                for item in node.items
            ]
        except (ValueError, KeyError):
            return None
        return LOForEach(node.alias, child.inputs[0], new_items, node.schema)


class PushFilterBeforeForEach(Rule):
    name = "push-filter"

    def apply(self, node: LogicalOperator) -> Optional[LogicalOperator]:
        if not isinstance(node, LOFilter):
            return None
        child = node.inputs[0]
        if not _is_pure_projection(child):
            return None
        mapping = {i: item.expr for i, item in enumerate(child.items)}
        try:
            pushed_pred = _remap_expression(node.predicate, mapping)
        except (ValueError, KeyError):
            return None
        assert isinstance(child, LOForEach)
        new_filter = LOFilter(node.alias + "_pushed", child.inputs[0], pushed_pred)
        return LOForEach(node.alias, new_filter, child.items, child.schema)


class RemoveIdentityForEach(Rule):
    name = "remove-identity-foreach"

    def apply(self, node: LogicalOperator) -> Optional[LogicalOperator]:
        if not isinstance(node, LOForEach):
            return None
        child = node.inputs[0]
        if len(node.items) != len(child.schema):
            return None
        for i, item in enumerate(node.items):
            if item.flatten or not isinstance(item.expr, Column):
                return None
            if item.expr.index != i or item.name != child.schema[i].name:
                return None
        return child


DEFAULT_RULES: List[Rule] = [
    MergeConsecutiveFilters(),
    MergeForEach(),
    PushFilterBeforeForEach(),
    RemoveIdentityForEach(),
]


class LogicalOptimizer:
    """Applies rules bottom-up until fixpoint (bounded passes)."""

    def __init__(self, rules: Optional[List[Rule]] = None, max_passes: int = 10):
        self.rules = rules if rules is not None else list(DEFAULT_RULES)
        self.max_passes = max_passes

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        for _ in range(self.max_passes):
            if not self._one_pass(plan):
                break
        return plan

    def _one_pass(self, plan: LogicalPlan) -> bool:
        changed = False
        parents = plan.parents()
        for node in plan.nodes():
            for rule in self.rules:
                replacement = rule.apply(node)
                if replacement is None or replacement is node:
                    continue
                self._replace(plan, parents, node, replacement)
                return True  # topology changed; restart the pass
        return changed

    @staticmethod
    def _replace(
        plan: LogicalPlan,
        parents: dict,
        old: LogicalOperator,
        new: LogicalOperator,
    ) -> None:
        for consumer, position in parents.get(old.op_id, []):
            consumer.inputs[position] = new
        for i, store in enumerate(plan.stores):
            if store is old:
                plan.stores[i] = new  # only happens for store-level rules
