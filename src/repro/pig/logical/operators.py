"""Logical operators: the DAG produced from a parsed Pig Latin script.

Logical nodes carry resolved expressions (positions, not names) and a
computed output schema.  The MapReduce compiler walks this DAG to emit
physical plans cut into jobs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.relational.expressions import Expression
from repro.relational.schema import Schema

_LO_COUNTER = itertools.count(1)


class LogicalOperator:
    """Base logical node; ``inputs`` are upstream nodes (ordered)."""

    kind = "abstract"

    def __init__(self, inputs: Sequence["LogicalOperator"], alias: str, schema: Schema):
        self.op_id = next(_LO_COUNTER)
        self.inputs: List[LogicalOperator] = list(inputs)
        self.alias = alias
        self.schema = schema

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.op_id} {self.alias!r}>"


class LOLoad(LogicalOperator):
    kind = "load"

    def __init__(
        self, alias: str, path: str, schema: Schema, loader: str = "PigStorage"
    ):
        super().__init__([], alias, schema)
        self.path = path
        self.loader = loader

    def describe(self) -> str:
        return f"load {self.path!r}"


class LOFilter(LogicalOperator):
    kind = "filter"

    def __init__(self, alias: str, input_node: LogicalOperator, predicate: Expression):
        super().__init__([input_node], alias, input_node.schema)
        self.predicate = predicate


@dataclass(frozen=True)
class ResolvedGenItem:
    """A FOREACH output field with its resolved expression."""

    expr: Expression
    name: str
    flatten: bool = False


class LOForEach(LogicalOperator):
    kind = "foreach"

    def __init__(
        self,
        alias: str,
        input_node: LogicalOperator,
        items: Sequence[ResolvedGenItem],
        schema: Schema,
    ):
        super().__init__([input_node], alias, schema)
        self.items: Tuple[ResolvedGenItem, ...] = tuple(items)


class LOJoin(LogicalOperator):
    kind = "join"

    def __init__(
        self,
        alias: str,
        input_nodes: Sequence[LogicalOperator],
        key_exprs: Sequence[Sequence[Expression]],
        outer_flags: Sequence[bool],
        schema: Schema,
        strategy: str = "shuffle",
    ):
        super().__init__(input_nodes, alias, schema)
        self.key_exprs: Tuple[Tuple[Expression, ...], ...] = tuple(
            tuple(k) for k in key_exprs
        )
        self.outer_flags: Tuple[bool, ...] = tuple(outer_flags)
        self.strategy = strategy


class LOCogroup(LogicalOperator):
    """GROUP (one input) / COGROUP (several inputs)."""

    kind = "cogroup"

    def __init__(
        self,
        alias: str,
        input_nodes: Sequence[LogicalOperator],
        key_exprs: Sequence[Sequence[Expression]],
        schema: Schema,
        group_all: bool = False,
    ):
        super().__init__(input_nodes, alias, schema)
        self.key_exprs: Tuple[Tuple[Expression, ...], ...] = tuple(
            tuple(k) for k in key_exprs
        )
        self.group_all = group_all

    @property
    def is_group(self) -> bool:
        return len(self.inputs) == 1


class LODistinct(LogicalOperator):
    kind = "distinct"

    def __init__(self, alias: str, input_node: LogicalOperator):
        super().__init__([input_node], alias, input_node.schema)


class LOUnion(LogicalOperator):
    kind = "union"

    def __init__(self, alias: str, input_nodes: Sequence[LogicalOperator]):
        super().__init__(input_nodes, alias, input_nodes[0].schema)


class LOSort(LogicalOperator):
    kind = "sort"

    def __init__(
        self,
        alias: str,
        input_node: LogicalOperator,
        sort_items: Sequence[Tuple[Expression, bool]],
    ):
        super().__init__([input_node], alias, input_node.schema)
        self.sort_items: Tuple[Tuple[Expression, bool], ...] = tuple(sort_items)


class LOLimit(LogicalOperator):
    kind = "limit"

    def __init__(self, alias: str, input_node: LogicalOperator, n: int):
        super().__init__([input_node], alias, input_node.schema)
        self.n = n


class LOStore(LogicalOperator):
    kind = "store"

    def __init__(
        self, input_node: LogicalOperator, path: str, storer: str = "PigStorage"
    ):
        super().__init__([input_node], f"store:{path}", input_node.schema)
        self.path = path
        self.storer = storer

    def describe(self) -> str:
        return f"store {self.path!r}"


class LogicalPlan:
    """The DAG for one script: reachable from its store sinks."""

    def __init__(self, stores: Sequence[LOStore]):
        self.stores: List[LOStore] = list(stores)

    def nodes(self) -> List[LogicalOperator]:
        """All reachable nodes, deduplicated, in reverse-DFS order."""
        seen: dict = {}
        order: List[LogicalOperator] = []

        def visit(node: LogicalOperator):
            if node.op_id in seen:
                return
            seen[node.op_id] = node
            for upstream in node.inputs:
                visit(upstream)
            order.append(node)

        for store in self.stores:
            visit(store)
        return order

    def parents(self) -> dict:
        """Map node id -> list of (consumer node, input position)."""
        out: dict = {}
        for node in self.nodes():
            for position, upstream in enumerate(node.inputs):
                out.setdefault(upstream.op_id, []).append((node, position))
        return out

    def describe(self) -> str:
        lines = []
        for node in self.nodes():
            ins = ",".join(str(i.op_id) for i in node.inputs)
            lines.append(
                f"#{node.op_id} {node.kind} {node.alias!r}"
                + (f" <- [{ins}]" if ins else "")
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.nodes())
