"""PigServer: the end-to-end dataflow system facade.

Runs the whole pipeline the paper describes in §6.1: parse -> logical
plan -> logical optimizer -> MapReduce compiler -> (ReStore hooks) ->
Hadoop execution, then cleans up intermediate outputs *except* the
ones ReStore decided to keep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import ReStoreEvent
from repro.execution.interpreter import DEFAULT_BATCH_SIZE
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import Workflow
from repro.mapreduce.runner import HadoopSimulator, JobListener
from repro.mapreduce.stats import WorkflowStats
from repro.pig.logical.builder import build_logical_plan
from repro.pig.logical.optimizer import LogicalOptimizer
from repro.pig.mrcompiler import MRCompiler
from repro.pig.parser import parse
from repro.relational.schema import Schema
from repro.relational.tuples import Row, deserialize_rows, snapshot_rows


@dataclass
class PigRunResult:
    """Everything produced by one script execution."""

    workflow: Workflow
    stats: WorkflowStats
    #: final output path -> parsed rows
    outputs: Dict[str, List[Row]] = field(default_factory=dict)
    #: typed ReStore events drained from the manager for this run
    events: List[ReStoreEvent] = field(default_factory=list)

    @property
    def sim_seconds(self) -> float:
        return self.stats.sim_seconds

    @property
    def sim_minutes(self) -> float:
        return self.stats.sim_seconds / 60.0

    def single_output(self) -> List[Row]:
        if len(self.outputs) != 1:
            raise ValueError(
                f"expected one output, script stored {len(self.outputs)}"
            )
        return next(iter(self.outputs.values()))


class PigServer:
    """Compiles and runs Pig Latin scripts on the simulated stack."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        cluster: Optional[ClusterConfig] = None,
        cost_model: Optional[CostModel] = None,
        restore: Optional[JobListener] = None,
        optimize: bool = True,
        default_parallel: int = 28,
        fast_data_plane: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        payload_reuse: bool = True,
    ):
        self.dfs = dfs
        self.cluster = cluster or ClusterConfig()
        self.cost_model = cost_model or CostModel(cluster=self.cluster)
        self.fast_data_plane = fast_data_plane
        self.runner = HadoopSimulator(
            dfs,
            self.cluster,
            self.cost_model,
            fast_data_plane=fast_data_plane,
            batch_size=batch_size,
            payload_reuse=payload_reuse,
        )
        self.restore = restore
        self.optimize = optimize
        self.default_parallel = default_parallel

    # -- compilation ------------------------------------------------------------

    def compile(
        self, source: str, name: str = "", script_id: Optional[int] = None
    ) -> Workflow:
        """Parse + analyze + optimize + cut into a MapReduce workflow.

        Script ids (and thus ``tmp/s<id>`` temp prefixes) are allocated
        by the DFS, not a process-global counter: numbering restarts
        with every fresh filesystem (deterministic tests/sessions) but
        can never collide between servers sharing one DFS, which would
        overwrite temp outputs the ReStore repository kept alive.
        ``script_id=`` overrides the allocation — the multi-process
        service passes the coordinator-allocated id so worker-side
        compilation names temps exactly as a serial run would.
        """
        if script_id is None:
            script_id = self.dfs.next_script_id()
        script = parse(source)
        plan = build_logical_plan(script)
        if self.optimize:
            plan = LogicalOptimizer().optimize(plan)
        compiler = MRCompiler(
            temp_prefix=f"tmp/s{script_id}",
            default_parallel=self.default_parallel,
            job_prefix=f"s{script_id}",
        )
        return compiler.compile(plan, name=name or f"script_{script_id}")

    def explain(self, source: str) -> str:
        """Render the compiled workflow like Pig's EXPLAIN: jobs, their
        dependencies, and each job's physical plan."""
        workflow = self.compile(source, name="explain")
        deps = workflow.dependency_ids()
        lines = [f"workflow: {len(workflow.jobs)} MapReduce job(s)"]
        for job in workflow.topo_order():
            kind = "map-reduce" if job.has_shuffle else "map-only"
            upstream = ", ".join(deps[job.job_id]) or "none"
            temp = " (temporary output)" if job.temporary else ""
            lines.append("")
            lines.append(
                f"{job.job_id} [{kind}] -> {job.output_path}{temp}"
            )
            lines.append(f"  depends on: {upstream}")
            for plan_line in job.plan.describe().splitlines():
                lines.append(f"  {plan_line}")
        return "\n".join(lines)

    # -- execution ----------------------------------------------------------------

    def run(self, source: str, name: str = "") -> PigRunResult:
        """Compile and execute a script; returns outputs + statistics."""
        workflow = self.compile(source, name=name)
        return self.run_workflow(workflow)

    def run_workflow(self, workflow: Workflow) -> PigRunResult:
        stats = self.runner.run_workflow(workflow, listener=self.restore)
        result = PigRunResult(workflow=workflow, stats=stats)

        # Collect final outputs (skip temps and ReStore side stores).
        for job in workflow.jobs:
            if job.temporary:
                continue
            store = job.plan.primary_store()
            if store is None:
                continue
            path = store.path
            if self.dfs.exists(path):
                schema = store.schema or Schema()
                if self.fast_data_plane:
                    # served straight from the typed-dataset cache the
                    # store just pinned — no re-parse of final outputs.
                    # Bags are defensively copied: outputs are caller-
                    # owned (legacy handed out fresh parses), and a
                    # caller mutating a cache-pinned Bag would corrupt
                    # every later read of this path
                    result.outputs[path] = list(
                        snapshot_rows(self.dfs.read_rows(path, schema))
                    )
                else:
                    result.outputs[path] = deserialize_rows(
                        self.dfs.read_text(path), schema
                    )

        # Stock Pig deletes intermediate outputs when the workflow ends;
        # ReStore keeps the ones registered in its repository (§1).
        kept = self.restore.protected_paths() if self.restore else set()
        self.runner.cleanup_temporaries(workflow, keep=kept)

        if self.restore is not None:
            result.events = list(self.restore.drain())
        return result
