"""Logical plan -> workflow of MapReduce jobs.

Implements Pig's job-cutting rule: physical operators are grouped into
mapper and reducer stages, and **each blocking (shuffle) operator —
Join, Group, CoGroup, Distinct, Order — starts its own MapReduce job**
(paper §2: "when more than one of these physical operators exist in a
query execution plan, each one of them has to be embedded in a
separate MapReduce job").  Jobs exchange data through temporary DFS
files, which are precisely the intermediate results ReStore keeps.

Aliases consumed by several downstream statements are recompiled per
consumer (recomputation).  This matches the workflow shapes ReStore
sees from Pig and deliberately *creates* the duplicated sub-plans that
result reuse then collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.exceptions import CompilationError
from repro.mapreduce.job import JobConf, MapReduceJob, Workflow
from repro.pig.logical.operators import (
    LOCogroup,
    LODistinct,
    LOFilter,
    LOForEach,
    LOJoin,
    LOLimit,
    LOLoad,
    LOSort,
    LOStore,
    LOUnion,
    LogicalOperator,
    LogicalPlan,
)
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.expressions import BagStar, Column, Expression, UnaryOp
from repro.relational.schema import FieldSchema, Schema
from repro.relational.types import DataType


@dataclass
class Cursor:
    """Where a compiled logical node's rows are available."""

    job: MapReduceJob
    op: PhysicalOperator
    phase: str  # "map" | "reduce"


class MRCompiler:
    """Compiles one logical plan into a :class:`Workflow`."""

    def __init__(
        self,
        temp_prefix: str = "tmp/run",
        default_parallel: int = 28,
        job_prefix: Optional[str] = None,
    ):
        self.temp_prefix = temp_prefix.rstrip("/")
        self.default_parallel = default_parallel
        #: when set, jobs get deterministic ids ``job_<prefix>_<n>``
        #: instead of drawing from the process-global counter; the
        #: engine passes the DFS-scoped script id, so a rerun of the
        #: same stream on a fresh DFS reproduces identical job ids
        #: (the 1-worker service determinism guarantee relies on it)
        self.job_prefix = job_prefix
        self._jobs: List[MapReduceJob] = []
        self._tmp_counter = 0
        self._job_counter = 0

    # -- public -------------------------------------------------------------------

    def compile(self, plan: LogicalPlan, name: str = "workflow") -> Workflow:
        self._jobs = []
        self._tmp_counter = 0
        self._job_counter = 0
        for store in plan.stores:
            self._compile_store(store)
        workflow = Workflow(jobs=list(self._jobs), name=name)
        for job in workflow.jobs:
            job.validate()
        return workflow

    # -- helpers ---------------------------------------------------------------------

    def _new_tmp_path(self) -> str:
        self._tmp_counter += 1
        return f"{self.temp_prefix}/t{self._tmp_counter}"

    def _new_job(self, name: str) -> MapReduceJob:
        job_id = None
        if self.job_prefix is not None:
            self._job_counter += 1
            job_id = f"job_{self.job_prefix}_{self._job_counter}"
        job = MapReduceJob(
            PhysicalPlan(),
            JobConf(name=name, n_reducers=self.default_parallel),
            job_id=job_id,
        )
        self._jobs.append(job)
        return job

    def _absorb(self, target: MapReduceJob, source: MapReduceJob) -> None:
        """Move all of *source*'s plan into *target* and drop *source*."""
        for op in source.plan.operators:
            target.plan.add(op)
        for op in source.plan.operators:
            for succ in source.plan.successors(op):
                target.plan.connect(op, succ)
        self._jobs.remove(source)

    def _close_job(self, cursor: Cursor, schema: Schema) -> str:
        """End *cursor*'s job with a temporary store; return its path."""
        tmp_path = self._new_tmp_path()
        store = POStore(tmp_path, schema=schema)
        cursor.job.plan.add(store)
        cursor.job.plan.connect(cursor.op, store)
        cursor.job.temporary = True
        return tmp_path

    def _merge_into(
        self, job: MapReduceJob, cursor: Cursor, schema: Schema
    ) -> PhysicalOperator:
        """Make *cursor*'s rows available inside *job*'s map phase.

        Pure map segments are absorbed; anything already past a shuffle
        is closed with a temp store and re-loaded (a new job boundary —
        the paper's Figure 1 arrows).
        """
        if cursor.job is job:
            return cursor.op
        mergeable = (
            cursor.phase == "map"
            and cursor.job.plan.global_rearrange() is None
            and not cursor.job.plan.stores()
        )
        if mergeable:
            self._absorb(job, cursor.job)
            return cursor.op
        tmp_path = self._close_job(cursor, schema)
        load = POLoad(tmp_path, schema)
        job.plan.add(load)
        return load

    # -- node compilation ----------------------------------------------------------------

    def _compile_store(self, store: LOStore) -> MapReduceJob:
        cursor = self._compile_node(store.inputs[0])
        po_store = POStore(store.path, schema=store.inputs[0].schema)
        cursor.job.plan.add(po_store)
        cursor.job.plan.connect(cursor.op, po_store)
        return cursor.job

    def _compile_node(self, node: LogicalOperator) -> Cursor:
        if isinstance(node, LOLoad):
            job = self._new_job(node.alias)
            load = POLoad(node.path, node.schema, node.loader)
            job.plan.add(load)
            return Cursor(job, load, "map")
        if isinstance(node, LOFilter):
            return self._append_pipelined(
                node, POFilter(node.predicate, schema=node.schema)
            )
        if isinstance(node, LOForEach):
            op = POForEach(
                [item.expr for item in node.items],
                [item.flatten for item in node.items],
                [item.name for item in node.items],
                schema=node.schema,
            )
            return self._append_pipelined(node, op)
        if isinstance(node, LOLimit):
            return self._append_pipelined(node, POLimit(node.n, schema=node.schema))
        if isinstance(node, LOJoin):
            return self._compile_join(node)
        if isinstance(node, LOCogroup):
            return self._compile_cogroup(node)
        if isinstance(node, LODistinct):
            return self._compile_distinct(node)
        if isinstance(node, LOSort):
            return self._compile_sort(node)
        if isinstance(node, LOUnion):
            return self._compile_union(node)
        raise CompilationError(f"cannot compile logical node {node!r}")

    def _append_pipelined(
        self, node: LogicalOperator, op: PhysicalOperator
    ) -> Cursor:
        cursor = self._compile_node(node.inputs[0])
        cursor.job.plan.add(op)
        cursor.job.plan.connect(cursor.op, op)
        return Cursor(cursor.job, op, cursor.phase)

    # -- shuffle nodes ----------------------------------------------------------------------

    def _start_shuffle(
        self,
        node: LogicalOperator,
        key_exprs_per_input: Sequence[Sequence[Expression]],
        mode: str,
        package_schema: Schema,
        outer_flags: Optional[Sequence[bool]] = None,
    ) -> Tuple[MapReduceJob, POPackage]:
        job = self._new_job(node.alias)
        branch_ops: List[PhysicalOperator] = []
        for input_node in node.inputs:
            cursor = self._compile_node(input_node)
            branch_ops.append(self._merge_into(job, cursor, input_node.schema))

        n = len(node.inputs)
        gr = POGlobalRearrange(n)
        job.plan.add(gr)
        for branch, (branch_op, keys) in enumerate(
            zip(branch_ops, key_exprs_per_input)
        ):
            lr = POLocalRearrange(
                list(keys), branch=branch, schema=node.inputs[branch].schema
            )
            job.plan.add(lr)
            job.plan.connect(branch_op, lr)
            job.plan.connect(lr, gr)
        package = POPackage(mode, n, outer_flags, schema=package_schema)
        job.plan.add(package)
        job.plan.connect(gr, package)
        return job, package

    def _compile_cogroup(self, node: LOCogroup) -> Cursor:
        mode = "group" if node.is_group else "cogroup"
        job, package = self._start_shuffle(
            node, node.key_exprs, mode, node.schema
        )
        return Cursor(job, package, "reduce")

    def _compile_join(self, node: LOJoin) -> Cursor:
        if node.strategy == "replicated":
            return self._compile_fr_join(node)
        # The package sees (key, bag per input); the inner schemas let
        # the interpreter pad outer-join nulls.
        package_fields = [FieldSchema("group", DataType.BYTEARRAY)]
        for i, input_node in enumerate(node.inputs):
            package_fields.append(
                FieldSchema(f"bag_{i}", DataType.BAG, input_node.schema)
            )
        package_schema = Schema(tuple(package_fields))
        job, package = self._start_shuffle(
            node, node.key_exprs, "join", package_schema, node.outer_flags
        )
        # Flatten every bag: the cross product materializes join rows.
        n = len(node.inputs)
        flatten = POForEach(
            [BagStar(i + 1) for i in range(n)],
            [True] * n,
            [f"bag_{i}" for i in range(n)],
            schema=node.schema,
        )
        job.plan.add(flatten)
        job.plan.connect(package, flatten)
        return Cursor(job, flatten, "reduce")

    def _compile_fr_join(self, node: LOJoin) -> Cursor:
        """Fragment-replicate join: map-side, no shuffle (Pig's
        ``USING 'replicated'``).  The second input is the replicated
        (in-memory) side; the job stays map-only, so a following
        GROUP/COGROUP can absorb it into its own map phase."""
        from repro.pig.physical.operators import POFRJoin

        job = self._new_job(node.alias)
        branch_ops = []
        for input_node in node.inputs:
            cursor = self._compile_node(input_node)
            branch_ops.append(self._merge_into(job, cursor, input_node.schema))
        frjoin = POFRJoin(node.key_exprs, schema=node.schema)
        job.plan.add(frjoin)
        for branch_op in branch_ops:
            job.plan.connect(branch_op, frjoin)
        return Cursor(job, frjoin, "map")

    def _compile_distinct(self, node: LODistinct) -> Cursor:
        schema = node.schema
        keys = [Column(i, f.name) for i, f in enumerate(schema)]
        job, package = self._start_shuffle(node, [keys], "distinct", schema)
        return Cursor(job, package, "reduce")

    def _compile_sort(self, node: LOSort) -> Cursor:
        keys: List[Expression] = []
        for expr, ascending in node.sort_items:
            if ascending:
                keys.append(expr)
            else:
                # Descending: negate numeric keys at rearrange time.
                keys.append(UnaryOp("neg", expr))
        job, package = self._start_shuffle(node, [keys], "sort", node.schema)
        return Cursor(job, package, "reduce")

    def _compile_union(self, node: LOUnion) -> Cursor:
        job = self._new_job(node.alias)
        branch_ops = []
        for input_node in node.inputs:
            cursor = self._compile_node(input_node)
            branch_ops.append(self._merge_into(job, cursor, input_node.schema))
        union = POUnion(len(node.inputs), schema=node.schema)
        job.plan.add(union)
        for branch_op in branch_ops:
            job.plan.connect(branch_op, union)
        return Cursor(job, union, "map")


def compile_to_workflow(
    plan: LogicalPlan,
    temp_prefix: str = "tmp/run",
    default_parallel: int = 28,
    name: str = "workflow",
) -> Workflow:
    """Convenience wrapper around :class:`MRCompiler`."""
    return MRCompiler(temp_prefix, default_parallel).compile(plan, name)
