"""Abstract syntax tree for the Pig Latin subset.

Pure syntax — no name resolution or typing happens here; the logical
plan builder (``pig.logical.builder``) resolves field references
against alias schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# -- expressions -----------------------------------------------------------------


class AstExpr:
    """Base class for syntactic expressions."""


@dataclass(frozen=True)
class ANumber(AstExpr):
    value: object  # int or float


@dataclass(frozen=True)
class AString(AstExpr):
    value: str


@dataclass(frozen=True)
class AName(AstExpr):
    """A bare identifier reference (field or relation name)."""

    name: str


@dataclass(frozen=True)
class ADollar(AstExpr):
    """Positional field reference ``$n``."""

    index: int


@dataclass(frozen=True)
class ADot(AstExpr):
    """Dotted reference ``base.field`` (bag or disambiguated field)."""

    base: AstExpr
    field: str  # field name, or "$n" positional text


@dataclass(frozen=True)
class AStar(AstExpr):
    """``*`` — all fields."""


@dataclass(frozen=True)
class ABinary(AstExpr):
    op: str
    left: AstExpr
    right: AstExpr


@dataclass(frozen=True)
class AUnary(AstExpr):
    op: str  # "not" | "neg" | "isnull" | "notnull"
    operand: AstExpr


@dataclass(frozen=True)
class ACall(AstExpr):
    """Function call — scalar builtin or aggregate, decided at build."""

    name: str
    args: Tuple[AstExpr, ...]


# -- statements -------------------------------------------------------------------


class AstStatement:
    """Base class for statements."""


@dataclass(frozen=True)
class FieldDef:
    name: str
    type_name: Optional[str] = None


@dataclass(frozen=True)
class LoadStmt(AstStatement):
    alias: str
    path: str
    schema: Tuple[FieldDef, ...] = ()
    loader: str = "PigStorage"


@dataclass(frozen=True)
class GenItem:
    """One FOREACH ... GENERATE item."""

    expr: AstExpr
    alias: Optional[str] = None
    flatten: bool = False


@dataclass(frozen=True)
class ForeachStmt(AstStatement):
    alias: str
    input_alias: str
    items: Tuple[GenItem, ...]


@dataclass(frozen=True)
class FilterStmt(AstStatement):
    alias: str
    input_alias: str
    predicate: AstExpr


@dataclass(frozen=True)
class JoinInput:
    alias: str
    keys: Tuple[AstExpr, ...]
    outer: bool = False  # this side is preserved (LEFT/RIGHT/FULL)


@dataclass(frozen=True)
class JoinStmt(AstStatement):
    alias: str
    inputs: Tuple[JoinInput, ...]
    parallel: Optional[int] = None
    strategy: str = "shuffle"  # "shuffle" | "replicated"


@dataclass(frozen=True)
class GroupStmt(AstStatement):
    """GROUP (single input) and COGROUP (multiple inputs)."""

    alias: str
    inputs: Tuple[str, ...]
    keys_per_input: Tuple[Tuple[AstExpr, ...], ...]
    group_all: bool = False
    parallel: Optional[int] = None


@dataclass(frozen=True)
class DistinctStmt(AstStatement):
    alias: str
    input_alias: str
    parallel: Optional[int] = None


@dataclass(frozen=True)
class UnionStmt(AstStatement):
    alias: str
    inputs: Tuple[str, ...]


@dataclass(frozen=True)
class OrderItem:
    expr: AstExpr
    ascending: bool = True


@dataclass(frozen=True)
class OrderStmt(AstStatement):
    alias: str
    input_alias: str
    items: Tuple[OrderItem, ...]
    parallel: Optional[int] = None


@dataclass(frozen=True)
class LimitStmt(AstStatement):
    alias: str
    input_alias: str
    n: int


@dataclass(frozen=True)
class SampleStmt(AstStatement):
    alias: str
    input_alias: str
    fraction: float


@dataclass(frozen=True)
class SplitBranch:
    alias: str
    condition: AstExpr


@dataclass(frozen=True)
class SplitStmt(AstStatement):
    input_alias: str
    branches: Tuple[SplitBranch, ...]


@dataclass(frozen=True)
class StoreStmt(AstStatement):
    input_alias: str
    path: str
    storer: str = "PigStorage"


@dataclass
class Script:
    """A parsed Pig Latin script: an ordered list of statements."""

    statements: List[AstStatement] = field(default_factory=list)

    def stores(self) -> List[StoreStmt]:
        return [s for s in self.statements if isinstance(s, StoreStmt)]
