"""Pig-like dataflow system: parser, plans, MR compiler, engine."""

from repro.pig.engine import PigRunResult, PigServer
from repro.pig.mrcompiler import MRCompiler, compile_to_workflow
from repro.pig.parser import parse

__all__ = [
    "MRCompiler",
    "PigRunResult",
    "PigServer",
    "compile_to_workflow",
    "parse",
]
