"""Tokenizer for the Pig Latin subset.

Keywords are *not* reserved at the lexer level: Pig famously allows
``group`` as both a statement keyword and the implicit field name of a
grouped relation, so the parser matches keywords contextually and the
lexer only distinguishes token shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.exceptions import PigParseError

# token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
DOLLAR = "DOLLAR"
SYMBOL = "SYMBOL"
EOF = "EOF"

_TWO_CHAR_SYMBOLS = ("==", "!=", "<=", ">=", "::")
_ONE_CHAR_SYMBOLS = "=;,().*+-/%<>{}#:"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def matches_keyword(self, word: str) -> bool:
        return self.kind == IDENT and self.text.lower() == word.lower()

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize *source* into a list ending with an EOF token."""
    return list(_token_stream(source))


def _token_stream(source: str) -> Iterator[Token]:
    index = 0
    line = 1
    column = 1
    length = len(source)

    def advance(n: int = 1):
        nonlocal index, line, column
        for _ in range(n):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]
        # whitespace
        if ch.isspace():
            advance()
            continue
        # comments: -- to end of line, /* ... */
        if source.startswith("--", index):
            while index < length and source[index] != "\n":
                advance()
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise PigParseError("unterminated block comment", line, column)
            advance(end + 2 - index)
            continue
        start_line, start_col = line, column
        # strings
        if ch == "'":
            end = index + 1
            chunks = []
            while end < length and source[end] != "'":
                if source[end] == "\\" and end + 1 < length:
                    chunks.append(source[end + 1])
                    end += 2
                else:
                    chunks.append(source[end])
                    end += 1
            if end >= length:
                raise PigParseError(
                    "unterminated string literal", start_line, start_col
                )
            text = "".join(chunks)
            advance(end + 1 - index)
            yield Token(STRING, text, start_line, start_col)
            continue
        # dollar positional refs
        if ch == "$":
            end = index + 1
            while end < length and source[end].isdigit():
                end += 1
            if end == index + 1:
                raise PigParseError("expected digits after $", start_line, start_col)
            text = source[index:end]
            advance(end - index)
            yield Token(DOLLAR, text, start_line, start_col)
            continue
        # numbers (int or float, optional exponent)
        if ch.isdigit() or (
            ch == "." and index + 1 < length and source[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                source[end].isdigit() or (source[end] == "." and not seen_dot)
            ):
                if source[end] == ".":
                    seen_dot = True
                end += 1
            if end < length and source[end] in "eE":
                exp = end + 1
                if exp < length and source[exp] in "+-":
                    exp += 1
                if exp < length and source[exp].isdigit():
                    end = exp
                    while end < length and source[end].isdigit():
                        end += 1
                    seen_dot = True
            text = source[index:end]
            advance(end - index)
            yield Token(NUMBER, text, start_line, start_col)
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            end = index
            while end < length and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[index:end]
            advance(end - index)
            yield Token(IDENT, text, start_line, start_col)
            continue
        # symbols
        two = source[index : index + 2]
        if two in _TWO_CHAR_SYMBOLS:
            advance(2)
            yield Token(SYMBOL, two, start_line, start_col)
            continue
        if ch in _ONE_CHAR_SYMBOLS:
            advance()
            yield Token(SYMBOL, ch, start_line, start_col)
            continue
        raise PigParseError(f"unexpected character {ch!r}", start_line, start_col)

    yield Token(EOF, "", line, column)
