"""JobControlCompiler: the paper's §6.2 submission loop, explicitly.

Pig's ``JobControlCompiler`` iterates over a workflow: each iteration
selects the jobs whose dependencies have finished ("jobs that depend
on already executed jobs or depend on no other jobs"), prepares them —
with ReStore, every selected job passes through plan matching and
sub-job generation first — and submits the batch to Hadoop.  After the
batch completes, statistics are harvested and the next iteration
begins.

``HadoopSimulator.run_workflow`` performs the same work in dependency
order; this class exposes the *batched* structure for callers that
care about iteration-level behaviour (and mirrors the paper's
description one-to-one).  Jobs inside one batch are independent, so
Equation 1 charges the batch the maximum of its members' times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.runner import HadoopSimulator, JobListener
from repro.mapreduce.stats import JobStats, WorkflowStats


@dataclass
class IterationReport:
    """One JobControlCompiler iteration: the submitted batch."""

    index: int
    submitted: List[str] = field(default_factory=list)
    eliminated: List[str] = field(default_factory=list)
    #: simulated seconds for the batch (max over its parallel jobs)
    sim_seconds: float = 0.0


class JobControlCompiler:
    """Batched workflow execution with ReStore hooks per iteration."""

    def __init__(
        self,
        runner: HadoopSimulator,
        restore: Optional[JobListener] = None,
    ):
        self.runner = runner
        self.restore = restore

    def ready_jobs(
        self, workflow: Workflow, finished: Set[str]
    ) -> List[MapReduceJob]:
        """Jobs whose dependencies all finished (or were eliminated)."""
        out = []
        for job in workflow.jobs:
            if job.job_id in finished:
                continue
            deps = workflow.dependencies(job)
            if all(d.job_id in finished for d in deps):
                out.append(job)
        return out

    def run(self, workflow: Workflow) -> tuple:
        """Execute the whole workflow; returns (stats, iteration log)."""
        if self.restore is not None:
            self.restore.on_workflow_start(workflow)

        stats = WorkflowStats(name=workflow.name)
        iterations: List[IterationReport] = []
        finished: Set[str] = set()

        try:
            self._run_iterations(workflow, stats, iterations, finished)
        finally:
            if self.restore is not None:
                self.restore.on_workflow_end(workflow)

        deps = workflow.dependency_ids()
        job_times = {
            job_id: s.sim_seconds for job_id, s in stats.job_stats.items()
        }
        stats.sim_seconds = self.runner.cost_model.workflow_time(
            job_times, deps
        )
        return stats, iterations

    def _run_iterations(
        self,
        workflow: Workflow,
        stats: WorkflowStats,
        iterations: List["IterationReport"],
        finished: Set[str],
    ) -> None:
        while len(finished) < len(workflow.jobs):
            batch = self.ready_jobs(workflow, finished)
            if not batch:
                raise ValueError("workflow stuck: dependency cycle?")
            report = IterationReport(index=len(iterations))

            # Stage 1 (paper): matching + sub-job generation per job.
            to_submit: List[MapReduceJob] = []
            for job in batch:
                run_it = True
                if self.restore is not None:
                    run_it = self.restore.before_job(job, workflow)
                if not run_it or job.eliminated_by is not None:
                    finished.add(job.job_id)
                    report.eliminated.append(job.job_id)
                    stats.eliminated_jobs.append(job.job_id)
                else:
                    to_submit.append(job)

            # Stage 2: submit the prepared batch; harvest statistics.
            batch_seconds = 0.0
            for job in to_submit:
                job_stats: JobStats = self.runner.run_job(job)
                stats.job_stats[job.job_id] = job_stats
                finished.add(job.job_id)
                report.submitted.append(job.job_id)
                batch_seconds = max(batch_seconds, job_stats.sim_seconds)
                if self.restore is not None:
                    self.restore.after_job(job, job_stats, workflow)
            report.sim_seconds = batch_seconds
            iterations.append(report)
