"""Recursive-descent parser for the Pig Latin subset.

Grammar (statements end with ``;``):

    alias = LOAD 'path' [USING Loader] [AS (field[:type], ...)]
    alias = FOREACH rel GENERATE item [, item]...      item := [FLATTEN(] expr [)] [AS name]
    alias = FILTER rel BY bool_expr
    alias = JOIN rel BY keys [LEFT|RIGHT|FULL [OUTER]], rel BY keys [PARALLEL n]
    alias = GROUP rel (ALL | BY keys) [PARALLEL n]
    alias = COGROUP rel BY keys, rel BY keys [PARALLEL n]
    alias = DISTINCT rel [PARALLEL n]
    alias = UNION rel, rel [, rel]...
    alias = ORDER rel BY field [ASC|DESC] [, ...] [PARALLEL n]
    alias = LIMIT rel n
    SPLIT rel INTO alias IF cond [, alias IF cond]...
    STORE rel INTO 'path' [USING Storer]

Keywords are contextual (``group`` is also a valid field name).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.exceptions import PigParseError
from repro.pig import ast
from repro.pig.lexer import DOLLAR, EOF, IDENT, NUMBER, STRING, SYMBOL, Token, tokenize


class Parser:
    """One-pass parser over the token list."""

    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ---------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        return any(self.peek().matches_keyword(w) for w in words)

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.matches_keyword(word):
            raise PigParseError(
                f"expected {word.upper()!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.at_keyword(word):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> Token:
        token = self.peek()
        if token.kind != SYMBOL or token.text != symbol:
            raise PigParseError(
                f"expected {symbol!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.kind == SYMBOL and token.text == symbol:
            self.advance()
            return True
        return False

    def expect_ident(self) -> Token:
        token = self.peek()
        if token.kind != IDENT:
            raise PigParseError(
                f"expected identifier, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def expect_string(self) -> str:
        token = self.peek()
        if token.kind != STRING:
            raise PigParseError(
                f"expected string literal, found {token.text!r}",
                token.line,
                token.column,
            )
        self.advance()
        return token.text

    def expect_number(self) -> Token:
        token = self.peek()
        if token.kind != NUMBER:
            raise PigParseError(
                f"expected number, found {token.text!r}", token.line, token.column
            )
        return self.advance()

    # -- entry point ----------------------------------------------------------------

    def parse_script(self) -> ast.Script:
        script = ast.Script()
        while self.peek().kind != EOF:
            script.statements.append(self.parse_statement())
            self.expect_symbol(";")
        return script

    # -- statements --------------------------------------------------------------------

    def parse_statement(self) -> ast.AstStatement:
        if self.at_keyword("store"):
            return self._parse_store()
        if self.at_keyword("split"):
            return self._parse_split()
        alias = self.expect_ident().text
        self.expect_symbol("=")
        return self._parse_relation_expr(alias)

    def _parse_relation_expr(self, alias: str) -> ast.AstStatement:
        token = self.peek()
        if token.matches_keyword("load"):
            return self._parse_load(alias)
        if token.matches_keyword("foreach"):
            return self._parse_foreach(alias)
        if token.matches_keyword("filter"):
            return self._parse_filter(alias)
        if token.matches_keyword("join"):
            return self._parse_join(alias)
        if token.matches_keyword("group"):
            return self._parse_group(alias, cogroup=False)
        if token.matches_keyword("cogroup"):
            return self._parse_group(alias, cogroup=True)
        if token.matches_keyword("distinct"):
            return self._parse_distinct(alias)
        if token.matches_keyword("union"):
            return self._parse_union(alias)
        if token.matches_keyword("order"):
            return self._parse_order(alias)
        if token.matches_keyword("limit"):
            return self._parse_limit(alias)
        if token.matches_keyword("sample"):
            return self._parse_sample(alias)
        raise PigParseError(
            f"unknown operator {token.text!r}", token.line, token.column
        )

    def _parse_load(self, alias: str) -> ast.LoadStmt:
        self.expect_keyword("load")
        path = self.expect_string()
        loader = "PigStorage"
        if self.accept_keyword("using"):
            loader = self.expect_ident().text
            # accept a no-arg or string-arg constructor call: PigStorage(',')
            if self.accept_symbol("("):
                if self.peek().kind == STRING:
                    self.advance()
                self.expect_symbol(")")
        schema: Tuple[ast.FieldDef, ...] = ()
        # Real Pig requires AS for a schema; the paper's Q1 writes
        # "load 'users' using (name, ...)" — accept both spellings.
        if self.accept_keyword("as") or (
            self.peek().kind == SYMBOL and self.peek().text == "("
        ):
            schema = self._parse_field_defs()
        return ast.LoadStmt(alias, path, schema, loader)

    def _parse_field_defs(self) -> Tuple[ast.FieldDef, ...]:
        self.expect_symbol("(")
        fields: List[ast.FieldDef] = []
        while True:
            name = self.expect_ident().text
            type_name = None
            if self.accept_symbol(":"):
                type_name = self.expect_ident().text
            fields.append(ast.FieldDef(name, type_name))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return tuple(fields)

    def _parse_foreach(self, alias: str) -> ast.ForeachStmt:
        self.expect_keyword("foreach")
        input_alias = self.expect_ident().text
        self.expect_keyword("generate")
        items: List[ast.GenItem] = []
        while True:
            items.append(self._parse_gen_item())
            if not self.accept_symbol(","):
                break
        return ast.ForeachStmt(alias, input_alias, tuple(items))

    def _parse_gen_item(self) -> ast.GenItem:
        flatten = False
        if self.at_keyword("flatten"):
            self.advance()
            self.expect_symbol("(")
            expr = self.parse_expression()
            self.expect_symbol(")")
            flatten = True
        else:
            expr = self.parse_expression()
        item_alias = None
        if self.accept_keyword("as"):
            item_alias = self.expect_ident().text
            if self.accept_symbol(":"):
                self.expect_ident()  # type annotation: parsed, not enforced
        return ast.GenItem(expr, item_alias, flatten)

    def _parse_filter(self, alias: str) -> ast.FilterStmt:
        self.expect_keyword("filter")
        input_alias = self.expect_ident().text
        self.expect_keyword("by")
        predicate = self.parse_expression()
        return ast.FilterStmt(alias, input_alias, predicate)

    def _parse_join(self, alias: str) -> ast.JoinStmt:
        self.expect_keyword("join")
        inputs: List[ast.JoinInput] = []
        outer_sides: List[str] = []
        while True:
            rel = self.expect_ident().text
            self.expect_keyword("by")
            keys = self._parse_key_list()
            side = ""
            if self.at_keyword("left", "right", "full"):
                side = self.advance().text.lower()
                self.accept_keyword("outer")
            outer_sides.append(side)
            inputs.append(ast.JoinInput(rel, keys))
            if not self.accept_symbol(","):
                break
        strategy = "shuffle"
        if self.accept_keyword("using"):
            token = self.peek()
            strategy = self.expect_string().lower()
            if strategy not in ("shuffle", "replicated"):
                raise PigParseError(
                    f"unknown join strategy {strategy!r}", token.line, token.column
                )
        parallel = self._parse_parallel()
        # LEFT preserves the first input, RIGHT the second, FULL both.
        resolved: List[ast.JoinInput] = []
        any_side = next((s for s in outer_sides if s), "")
        for index, join_input in enumerate(inputs):
            outer = (
                (any_side == "left" and index == 0)
                or (any_side == "right" and index == 1)
                or any_side == "full"
            )
            resolved.append(
                ast.JoinInput(join_input.alias, join_input.keys, outer)
            )
        return ast.JoinStmt(alias, tuple(resolved), parallel, strategy)

    def _parse_key_list(self) -> Tuple[ast.AstExpr, ...]:
        if self.accept_symbol("("):
            keys: List[ast.AstExpr] = [self.parse_expression()]
            while self.accept_symbol(","):
                keys.append(self.parse_expression())
            self.expect_symbol(")")
            return tuple(keys)
        return (self.parse_expression(),)

    def _parse_group(self, alias: str, cogroup: bool) -> ast.GroupStmt:
        self.expect_keyword("cogroup" if cogroup else "group")
        inputs: List[str] = []
        keys_per_input: List[Tuple[ast.AstExpr, ...]] = []
        group_all = False
        while True:
            rel = self.expect_ident().text
            inputs.append(rel)
            if not cogroup and self.accept_keyword("all"):
                group_all = True
                keys_per_input.append(())
            else:
                self.expect_keyword("by")
                keys_per_input.append(self._parse_key_list())
            if not self.accept_symbol(","):
                break
        parallel = self._parse_parallel()
        return ast.GroupStmt(
            alias, tuple(inputs), tuple(keys_per_input), group_all, parallel
        )

    def _parse_distinct(self, alias: str) -> ast.DistinctStmt:
        self.expect_keyword("distinct")
        input_alias = self.expect_ident().text
        parallel = self._parse_parallel()
        return ast.DistinctStmt(alias, input_alias, parallel)

    def _parse_union(self, alias: str) -> ast.UnionStmt:
        self.expect_keyword("union")
        inputs = [self.expect_ident().text]
        while self.accept_symbol(","):
            inputs.append(self.expect_ident().text)
        if len(inputs) < 2:
            token = self.peek()
            raise PigParseError(
                "UNION needs at least two inputs", token.line, token.column
            )
        return ast.UnionStmt(alias, tuple(inputs))

    def _parse_order(self, alias: str) -> ast.OrderStmt:
        self.expect_keyword("order")
        input_alias = self.expect_ident().text
        self.expect_keyword("by")
        items: List[ast.OrderItem] = []
        while True:
            expr = self.parse_expression()
            ascending = True
            if self.at_keyword("asc"):
                self.advance()
            elif self.at_keyword("desc"):
                self.advance()
                ascending = False
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept_symbol(","):
                break
        parallel = self._parse_parallel()
        return ast.OrderStmt(alias, input_alias, tuple(items), parallel)

    def _parse_limit(self, alias: str) -> ast.LimitStmt:
        self.expect_keyword("limit")
        input_alias = self.expect_ident().text
        n = int(self.expect_number().text)
        return ast.LimitStmt(alias, input_alias, n)

    def _parse_sample(self, alias: str) -> ast.SampleStmt:
        self.expect_keyword("sample")
        input_alias = self.expect_ident().text
        fraction = float(self.expect_number().text)
        token = self.peek()
        if not 0.0 <= fraction <= 1.0:
            raise PigParseError(
                f"sample fraction must be in [0, 1], got {fraction}",
                token.line,
                token.column,
            )
        return ast.SampleStmt(alias, input_alias, fraction)

    def _parse_split(self) -> ast.SplitStmt:
        self.expect_keyword("split")
        input_alias = self.expect_ident().text
        self.expect_keyword("into")
        branches: List[ast.SplitBranch] = []
        while True:
            branch_alias = self.expect_ident().text
            self.expect_keyword("if")
            condition = self.parse_expression()
            branches.append(ast.SplitBranch(branch_alias, condition))
            if not self.accept_symbol(","):
                break
        return ast.SplitStmt(input_alias, tuple(branches))

    def _parse_store(self) -> ast.StoreStmt:
        self.expect_keyword("store")
        input_alias = self.expect_ident().text
        self.expect_keyword("into")
        path = self.expect_string()
        storer = "PigStorage"
        if self.accept_keyword("using"):
            storer = self.expect_ident().text
            if self.accept_symbol("("):
                if self.peek().kind == STRING:
                    self.advance()
                self.expect_symbol(")")
        return ast.StoreStmt(input_alias, path, storer)

    def _parse_parallel(self) -> Optional[int]:
        if self.accept_keyword("parallel"):
            return int(self.expect_number().text)
        return None

    # -- expressions -----------------------------------------------------------------------

    def parse_expression(self) -> ast.AstExpr:
        return self._parse_or()

    def _parse_or(self) -> ast.AstExpr:
        left = self._parse_and()
        while self.at_keyword("or"):
            self.advance()
            left = ast.ABinary("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.AstExpr:
        left = self._parse_not()
        while self.at_keyword("and"):
            self.advance()
            left = ast.ABinary("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.AstExpr:
        if self.at_keyword("not"):
            self.advance()
            return ast.AUnary("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.AstExpr:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == SYMBOL and token.text in ("==", "!=", "<=", ">=", "<", ">"):
            op = self.advance().text
            return ast.ABinary(op, left, self._parse_additive())
        # IS [NOT] NULL
        if token.matches_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return ast.AUnary("notnull" if negated else "isnull", left)
        return left

    def _parse_additive(self) -> ast.AstExpr:
        left = self._parse_multiplicative()
        while self.peek().kind == SYMBOL and self.peek().text in ("+", "-"):
            op = self.advance().text
            left = ast.ABinary(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.AstExpr:
        left = self._parse_unary()
        while self.peek().kind == SYMBOL and self.peek().text in ("*", "/", "%"):
            op = self.advance().text
            left = ast.ABinary(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.AstExpr:
        if self.peek().kind == SYMBOL and self.peek().text == "-":
            self.advance()
            return ast.AUnary("neg", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.AstExpr:
        expr = self._parse_primary()
        while self.peek().kind == SYMBOL and self.peek().text == ".":
            self.advance()
            token = self.peek()
            if token.kind == IDENT:
                self.advance()
                expr = ast.ADot(expr, token.text)
            elif token.kind == DOLLAR:
                self.advance()
                expr = ast.ADot(expr, token.text)
            elif token.kind == SYMBOL and token.text == "*":
                self.advance()
                expr = ast.ADot(expr, "*")
            else:
                raise PigParseError(
                    "expected field after '.'", token.line, token.column
                )
        return expr

    def _parse_primary(self) -> ast.AstExpr:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            text = token.text
            value = (
                float(text) if ("." in text or "e" in text or "E" in text) else int(text)
            )
            return ast.ANumber(value)
        if token.kind == STRING:
            self.advance()
            return ast.AString(token.text)
        if token.kind == DOLLAR:
            self.advance()
            return ast.ADollar(int(token.text[1:]))
        if token.kind == SYMBOL and token.text == "*":
            self.advance()
            return ast.AStar()
        if token.kind == SYMBOL and token.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect_symbol(")")
            return expr
        if token.kind == IDENT:
            # function call or bare name (possibly keyword-shaped: "group")
            if self.peek(1).kind == SYMBOL and self.peek(1).text == "(":
                name = self.advance().text
                self.expect_symbol("(")
                args: List[ast.AstExpr] = []
                if not (self.peek().kind == SYMBOL and self.peek().text == ")"):
                    args.append(self.parse_expression())
                    while self.accept_symbol(","):
                        args.append(self.parse_expression())
                self.expect_symbol(")")
                return ast.ACall(name, tuple(args))
            self.advance()
            name = token.text
            # double-colon qualified names: alias::field
            while self.peek().kind == SYMBOL and self.peek().text == "::":
                self.advance()
                name += "::" + self.expect_ident().text
            return ast.AName(name)
        raise PigParseError(
            f"unexpected token {token.text!r} in expression", token.line, token.column
        )


def parse(source: str) -> ast.Script:
    """Parse Pig Latin *source* into a :class:`Script`."""
    return Parser(source).parse_script()
