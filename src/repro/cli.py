"""Command-line interface: run Pig scripts and paper experiments.

Usage::

    python -m repro run script.pig --data data/pv.tsv=pigmix/page_views
    python -m repro explain script.pig
    python -m repro experiment fig10 --rows 300
    python -m repro list-experiments
    python -m repro bench --quick

``run``/``explain`` build a fresh session (simulated cluster + ReStore;
disable with ``--no-restore``), copy the given local files into the
DFS, and execute the script.  ReStore policies are pluggable by name:
``--heuristic conservative --selector rules --evict time-window:4``.

``run --workers N`` (or ``--executor threads|processes``) routes the
script through the shared :class:`~repro.service.JobService` instead
of a private session — the deployment shape the paper's §1 shared
service describes.  ``--executor processes`` executes on the
spawn-based worker-process pool.

``--snapshot``/``--journal`` make the repository durable across
invocations: the session recovers from the named local files before
running, journals every mutation, and rotates a fresh snapshot on
exit.  Stored output payloads persist natively in the crc-framed
block store next to the snapshot (``<snapshot>.blocks.g<N>``), and
recovery scrubs every entry against it — restoring intact bytes into
the fresh DFS and condemning anything missing or corrupt instead of
serving it::

    python -m repro run q1.pig --data pv.tsv=data/pv --snapshot state.snap
    python -m repro run q2.pig --data pv.tsv=data/pv --snapshot state.snap
    # q2's overlapping sub-jobs are answered from q1's stored results

A legacy ``<snapshot>.files/`` sidecar directory (written by older
versions) is imported into the block store once, on the first warm
start that finds it, and is no longer written afterwards.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.session import ReStoreSession


def _persistence_config(args):
    """Turn ``--snapshot``/``--journal`` into a local-backend config.

    Either flag implies the other: a lone ``--snapshot state.snap``
    journals to ``state.snap.journal``; a lone ``--journal`` derives
    the snapshot path the same way in reverse.
    """
    snapshot, journal = args.snapshot, args.journal
    if snapshot is None and journal is None:
        return None
    if args.no_restore:
        raise SystemExit("--snapshot/--journal require ReStore "
                         "(drop --no-restore)")
    if snapshot is None:
        snapshot = (journal[: -len(".journal")]
                    if journal.endswith(".journal")
                    else journal + ".snapshot")
    if journal is None:
        journal = snapshot + ".journal"
    from repro.persistence.durability import PersistenceConfig

    return PersistenceConfig(
        snapshot_path=snapshot, journal_path=journal, backend="local"
    )


def _sidecar_dir(config) -> pathlib.Path:
    return pathlib.Path(config.snapshot_path + ".files")


def _migrate_sidecar(config) -> int:
    """One-shot import of a legacy ``<snapshot>.files/`` sidecar.

    Earlier versions mirrored stored DFS files into a local sidecar
    directory; payloads now live natively in the block store.  The
    first warm start that finds a sidecar folds every file into block
    generation 0 and journals its segment ref (so the recovery that
    follows restores the bytes and the scrub verifies them), then
    retires the directory — the sidecar is deprecated and never
    written again.  Must run *before* recovery: the scrub condemns
    entries whose bytes it cannot find.
    """
    root = _sidecar_dir(config)
    if not root.is_dir():
        return 0
    from repro.persistence.blockstore import BlockStore
    from repro.persistence.journal import Journal

    store = BlockStore(config.blockstore_storage(None, 0), 0)
    journal = Journal(config.journal_storage(None))
    records = []
    for local in sorted(root.rglob("*")):
        if not local.is_file():
            continue
        dfs_path = local.relative_to(root).as_posix()
        ref = store.append(dfs_path, local.read_bytes())
        records.append(
            {"type": "payload_stored", "path": dfs_path, "ref": ref.to_list()}
        )
    if records:
        journal.append_payloads(records)
    import shutil

    shutil.rmtree(root, ignore_errors=True)
    return len(records)


def _load_data(target, mappings: List[str]) -> None:
    for mapping in mappings:
        if "=" not in mapping:
            raise SystemExit(
                f"--data expects LOCAL=DFS_PATH, got {mapping!r}"
            )
        local, dfs_path = mapping.split("=", 1)
        payload = pathlib.Path(local).read_bytes()
        target.dfs.write_file(dfs_path, payload, overwrite=True)


def _build_session(args) -> ReStoreSession:
    builder = ReStoreSession.builder().datanodes(args.datanodes)
    persistence = _persistence_config(args)
    if args.no_restore:
        builder.without_restore()
    else:
        builder.heuristic(args.heuristic).selector(args.selector)
        if args.evict:
            builder.evict(*args.evict)
        if persistence is not None:
            builder.persistence(persistence)
    if persistence is not None:
        _migrate_sidecar(persistence)
    try:
        session = builder.build()
    except ValueError as exc:
        # unknown plugin names / bad specs: the message lists the
        # valid registry entries
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    _load_data(session, args.data or [])
    return session


def _run_via_service(args, source: str, name: str):
    """Route the script through a :class:`~repro.service.JobService`
    worker pool — the shared multi-tenant deployment — instead of a
    private session.  Returns ``(outcome, repository_size)``."""
    from repro.core.manager import ReStoreConfig
    from repro.service import JobService, ServiceConfig

    if args.no_restore:
        raise SystemExit(
            "--workers/--executor run the shared ReStore JobService "
            "(drop --no-restore, or drop the service flags)"
        )
    persistence = _persistence_config(args)
    if persistence is not None:
        _migrate_sidecar(persistence)
    timeout = getattr(args, "exchange_timeout", 30.0)
    service_config = ServiceConfig(
        executor=args.executor or "threads",
        max_workers=args.workers,
        exchange_timeout=timeout if timeout and timeout > 0 else None,
        retries=getattr(args, "retries", 1),
    )
    config = ReStoreConfig(
        heuristic=args.heuristic,
        selector=args.selector,
        eviction_policies=list(args.evict or []),
    )
    try:
        service = JobService(
            datanodes=args.datanodes,
            config=config,
            persistence=persistence,
            service=service_config,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    try:
        _load_data(service, args.data or [])
        outcome = service.open_session("cli").run(source, name=name)
        if service.persister is not None:
            # rotate a fresh snapshot — compaction folds every live
            # payload into the block store, so the next invocation
            # starts warm with natively restored bytes
            service.persister.take_snapshot()
        return outcome, len(service.repository)
    finally:
        service.shutdown(wait=True)


def cmd_run(args) -> int:
    from repro.core.manager import ReStoreManager

    source = pathlib.Path(args.script).read_text()
    name = pathlib.Path(args.script).stem
    if args.executor is not None or args.workers > 1:
        result, repo_entries = _run_via_service(args, source, name)
    else:
        session = _build_session(args)
        result = session.run(source, name=name)
        if session.persister is not None:
            # rotate a fresh snapshot — compaction folds every live
            # payload into the block store, so the next invocation
            # starts warm with natively restored bytes
            session.persister.take_snapshot()
        repo_entries = (
            len(session.repository) if session.repository is not None else None
        )

    for path, rows in result.outputs.items():
        print(f"== {path} ({len(rows)} rows) ==")
        for row in rows[: args.max_rows]:
            print("\t".join("" if v is None else str(v) for v in row))
        if len(rows) > args.max_rows:
            print(f"... {len(rows) - args.max_rows} more rows")
    print(f"\nsimulated time: {result.sim_minutes:.2f} min "
          f"({result.stats.n_jobs_executed} job(s) executed)")
    decisions = ReStoreManager.legacy_strings(result.events)
    if decisions:
        print("ReStore rewrites:")
        for line in decisions:
            print(f"  {line}")
    if repo_entries is not None:
        print(f"repository: {repo_entries} entries")
    return 0


def cmd_explain(args) -> int:
    source = pathlib.Path(args.script).read_text()
    session = _build_session(args)
    print(session.explain(source))
    return 0


def _experiment_registry() -> dict:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments import ablations

    registry = {
        name: module.run for name, module in ALL_EXPERIMENTS.items()
    }
    registry["ablation-ordering"] = ablations.run_ordering_ablation
    registry["ablation-selector"] = ablations.run_selector_ablation
    registry["ablation-optimizer"] = ablations.run_optimizer_ablation
    registry["workload-stream"] = ablations.run_workload_stream
    return registry


def cmd_experiment(args) -> int:
    from repro.pigmix.datagen import PigMixConfig
    from repro.pigmix.synthetic import SyntheticConfig

    registry = _experiment_registry()
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; try one of:", file=sys.stderr)
        for name in sorted(registry):
            print(f"  {name}", file=sys.stderr)
        return 2

    runner = registry[args.name]
    kwargs = {}
    if args.name in ("table2", "fig16", "fig17"):
        kwargs["config"] = SyntheticConfig(n_rows=max(200, args.rows * 3))
    else:
        kwargs["pigmix_config"] = PigMixConfig(
            n_page_views=args.rows,
            n_users=max(10, args.rows // 10),
            n_power_users=max(4, args.rows // 50),
            n_widerow=max(20, args.rows // 4),
        )
    result = runner(**kwargs)
    print(result.format_table())
    return 0


def cmd_list_experiments(_args) -> int:
    for name in sorted(_experiment_registry()):
        print(name)
    return 0


def cmd_bench(args) -> int:
    from repro.bench.harness import run_from_args

    return run_from_args(args, args.out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReStore reproduction: run Pig scripts and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_args(p):
        p.add_argument("script", help="Pig Latin script file")
        p.add_argument(
            "--data",
            action="append",
            metavar="LOCAL=DFS_PATH",
            help="copy a local file into the simulated DFS (repeatable)",
        )
        p.add_argument("--datanodes", type=int, default=4)
        p.add_argument(
            "--no-restore",
            action="store_true",
            help="run on a stock engine without ReStore",
        )
        p.add_argument(
            "--heuristic",
            default="aggressive",
            metavar="NAME",
            help="sub-job heuristic plugin (e.g. conservative, "
                 "aggressive, no-heuristic, never)",
        )
        p.add_argument(
            "--selector",
            default="keep-all",
            metavar="NAME",
            help="keep selector plugin (e.g. keep-all, rules)",
        )
        p.add_argument(
            "--evict",
            action="append",
            metavar="NAME[:ARG]",
            help="eviction policy plugin, repeatable (e.g. "
                 "time-window:4, input-modified, capacity:1048576)",
        )
        p.add_argument(
            "--snapshot",
            metavar="PATH",
            help="persist the repository to a local snapshot file and "
                 "recover from it on the next run (journals to "
                 "PATH.journal unless --journal overrides; stored "
                 "payloads live in PATH.blocks.g<N>; a legacy "
                 "PATH.files/ sidecar is imported once and deprecated)",
        )
        p.add_argument(
            "--journal",
            metavar="PATH",
            help="append-only journal file for repository mutations "
                 "(implies --snapshot with a derived path)",
        )

    run_p = sub.add_parser("run", help="execute a Pig script")
    add_engine_args(run_p)
    run_p.add_argument("--max-rows", type=int, default=20)
    run_p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run through the shared JobService with this many pool "
             "workers (default 1 = private session)",
    )
    run_p.add_argument(
        "--executor",
        choices=("threads", "processes"),
        default=None,
        help="JobService execution substrate (implies the service "
             "path even with --workers 1)",
    )
    run_p.add_argument(
        "--exchange-timeout",
        type=float,
        default=30.0,
        help="process mode: seconds to wait for any single worker "
             "reply before killing the hung worker and retrying "
             "(0 = block forever; default 30)",
    )
    run_p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="process mode: replays of a submission after its worker "
             "crashed or hung (default 1)",
    )
    run_p.set_defaults(func=cmd_run)

    explain_p = sub.add_parser("explain", help="show the compiled workflow")
    add_engine_args(explain_p)
    explain_p.set_defaults(func=cmd_explain)

    exp_p = sub.add_parser("experiment", help="run a paper experiment")
    exp_p.add_argument("name", help="e.g. fig10, table1, ablation-ordering")
    exp_p.add_argument(
        "--rows", type=int, default=300, help="generated page_views rows"
    )
    exp_p.set_defaults(func=cmd_experiment)

    list_p = sub.add_parser("list-experiments", help="list experiment names")
    list_p.set_defaults(func=cmd_list_experiments)

    from repro.bench.harness import add_benchmark_arguments

    bench_p = sub.add_parser(
        "bench",
        help="run the repository-scale + service-throughput benchmarks",
    )
    add_benchmark_arguments(bench_p)
    bench_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_repo_scale.json"),
        help="where to write the JSON trajectory",
    )
    bench_p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:
        if isinstance(exc.code, int):
            return exc.code
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
