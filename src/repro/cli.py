"""Command-line interface: run Pig scripts and paper experiments.

Usage::

    python -m repro run script.pig --data data/pv.tsv=pigmix/page_views
    python -m repro explain script.pig
    python -m repro experiment fig10 --rows 300
    python -m repro list-experiments
    python -m repro bench --quick

``run``/``explain`` build a fresh session (simulated cluster + ReStore;
disable with ``--no-restore``), copy the given local files into the
DFS, and execute the script.  ReStore policies are pluggable by name:
``--heuristic conservative --selector rules --evict time-window:4``.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.session import ReStoreSession


def _load_data(session: ReStoreSession, mappings: List[str]) -> None:
    for mapping in mappings:
        if "=" not in mapping:
            raise SystemExit(
                f"--data expects LOCAL=DFS_PATH, got {mapping!r}"
            )
        local, dfs_path = mapping.split("=", 1)
        payload = pathlib.Path(local).read_bytes()
        session.write_file(dfs_path, payload)


def _build_session(args) -> ReStoreSession:
    builder = ReStoreSession.builder().datanodes(args.datanodes)
    if args.no_restore:
        builder.without_restore()
    else:
        builder.heuristic(args.heuristic).selector(args.selector)
        if args.evict:
            builder.evict(*args.evict)
    try:
        session = builder.build()
    except ValueError as exc:
        # unknown plugin names / bad specs: the message lists the
        # valid registry entries
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2) from None
    _load_data(session, args.data or [])
    return session


def cmd_run(args) -> int:
    source = pathlib.Path(args.script).read_text()
    session = _build_session(args)
    result = session.run(source, name=pathlib.Path(args.script).stem)

    for path, rows in result.outputs.items():
        print(f"== {path} ({len(rows)} rows) ==")
        for row in rows[: args.max_rows]:
            print("\t".join("" if v is None else str(v) for v in row))
        if len(rows) > args.max_rows:
            print(f"... {len(rows) - args.max_rows} more rows")
    print(f"\nsimulated time: {result.sim_minutes:.2f} min "
          f"({result.stats.n_jobs_executed} job(s) executed)")
    if result.rewrites:
        print("ReStore rewrites:")
        for event in result.rewrites:
            print(f"  {event}")
    if session.repository is not None:
        print(f"repository: {len(session.repository)} entries")
    return 0


def cmd_explain(args) -> int:
    source = pathlib.Path(args.script).read_text()
    session = _build_session(args)
    print(session.explain(source))
    return 0


def _experiment_registry() -> dict:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments import ablations

    registry = {
        name: module.run for name, module in ALL_EXPERIMENTS.items()
    }
    registry["ablation-ordering"] = ablations.run_ordering_ablation
    registry["ablation-selector"] = ablations.run_selector_ablation
    registry["ablation-optimizer"] = ablations.run_optimizer_ablation
    registry["workload-stream"] = ablations.run_workload_stream
    return registry


def cmd_experiment(args) -> int:
    from repro.pigmix.datagen import PigMixConfig
    from repro.pigmix.synthetic import SyntheticConfig

    registry = _experiment_registry()
    if args.name not in registry:
        print(f"unknown experiment {args.name!r}; try one of:", file=sys.stderr)
        for name in sorted(registry):
            print(f"  {name}", file=sys.stderr)
        return 2

    runner = registry[args.name]
    kwargs = {}
    if args.name in ("table2", "fig16", "fig17"):
        kwargs["config"] = SyntheticConfig(n_rows=max(200, args.rows * 3))
    else:
        kwargs["pigmix_config"] = PigMixConfig(
            n_page_views=args.rows,
            n_users=max(10, args.rows // 10),
            n_power_users=max(4, args.rows // 50),
            n_widerow=max(20, args.rows // 4),
        )
    result = runner(**kwargs)
    print(result.format_table())
    return 0


def cmd_list_experiments(_args) -> int:
    for name in sorted(_experiment_registry()):
        print(name)
    return 0


def cmd_bench(args) -> int:
    from repro.bench.harness import run_from_args

    return run_from_args(args, args.out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ReStore reproduction: run Pig scripts and experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_engine_args(p):
        p.add_argument("script", help="Pig Latin script file")
        p.add_argument(
            "--data",
            action="append",
            metavar="LOCAL=DFS_PATH",
            help="copy a local file into the simulated DFS (repeatable)",
        )
        p.add_argument("--datanodes", type=int, default=4)
        p.add_argument(
            "--no-restore",
            action="store_true",
            help="run on a stock engine without ReStore",
        )
        p.add_argument(
            "--heuristic",
            default="aggressive",
            metavar="NAME",
            help="sub-job heuristic plugin (e.g. conservative, "
                 "aggressive, no-heuristic, never)",
        )
        p.add_argument(
            "--selector",
            default="keep-all",
            metavar="NAME",
            help="keep selector plugin (e.g. keep-all, rules)",
        )
        p.add_argument(
            "--evict",
            action="append",
            metavar="NAME[:ARG]",
            help="eviction policy plugin, repeatable (e.g. "
                 "time-window:4, input-modified, capacity:1048576)",
        )

    run_p = sub.add_parser("run", help="execute a Pig script")
    add_engine_args(run_p)
    run_p.add_argument("--max-rows", type=int, default=20)
    run_p.set_defaults(func=cmd_run)

    explain_p = sub.add_parser("explain", help="show the compiled workflow")
    add_engine_args(explain_p)
    explain_p.set_defaults(func=cmd_explain)

    exp_p = sub.add_parser("experiment", help="run a paper experiment")
    exp_p.add_argument("name", help="e.g. fig10, table1, ablation-ordering")
    exp_p.add_argument(
        "--rows", type=int, default=300, help="generated page_views rows"
    )
    exp_p.set_defaults(func=cmd_experiment)

    list_p = sub.add_parser("list-experiments", help="list experiment names")
    list_p.set_defaults(func=cmd_list_experiments)

    from repro.bench.harness import add_benchmark_arguments

    bench_p = sub.add_parser(
        "bench",
        help="run the repository-scale + service-throughput benchmarks",
    )
    add_benchmark_arguments(bench_p)
    bench_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("BENCH_repo_scale.json"),
        help="where to write the JSON trajectory",
    )
    bench_p.set_defaults(func=cmd_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SystemExit as exc:
        if isinstance(exc.code, int):
            return exc.code
        raise


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
