"""Simulated MapReduce engine (Hadoop-like) and job/workflow model."""

from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.counters import Counters
from repro.mapreduce.job import JobConf, MapReduceJob, Workflow
from repro.mapreduce.runner import HadoopSimulator, JobListener
from repro.mapreduce.shuffle import ShuffleBuffer, sort_key, stable_hash
from repro.mapreduce.stats import (
    JobStats,
    StoreStat,
    TimeBreakdown,
    WorkflowStats,
)

__all__ = [
    "ClusterConfig",
    "Counters",
    "HadoopSimulator",
    "JobConf",
    "JobListener",
    "JobStats",
    "MapReduceJob",
    "ShuffleBuffer",
    "StoreStat",
    "TimeBreakdown",
    "Workflow",
    "WorkflowStats",
    "sort_key",
    "stable_hash",
]
