"""Cluster configuration — the hardware facts of the simulated cluster.

Defaults mirror the paper's testbed (§7): 15 nodes, one dedicated to
the JobTracker/NameNode, 14 workers each with 4 map slots and
2 reduce slots, HDFS with 3-way replication.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated MapReduce cluster."""

    n_worker_nodes: int = 14
    map_slots_per_node: int = 4
    reduce_slots_per_node: int = 2
    replication: int = 3
    #: simulated HDFS block size used to derive map-task counts from
    #: *scaled* input bytes (Hadoop default era: 64–128 MB)
    sim_block_size: int = 128 * 1024 * 1024

    @property
    def total_map_slots(self) -> int:
        return self.n_worker_nodes * self.map_slots_per_node

    @property
    def total_reduce_slots(self) -> int:
        return self.n_worker_nodes * self.reduce_slots_per_node

    def n_map_tasks(self, scaled_input_bytes: float) -> int:
        """One map task per simulated block, at least one."""
        if scaled_input_bytes <= 0:
            return 1
        return max(1, int(-(-scaled_input_bytes // self.sim_block_size)))

    def n_reduce_tasks(self, requested: int) -> int:
        return max(1, min(requested, self.total_reduce_slots))
