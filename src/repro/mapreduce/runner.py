"""The Hadoop simulator: executes jobs and workflows.

``HadoopSimulator.run_workflow`` walks the job DAG in dependency
order, invoking an optional :class:`JobListener` before and after each
job — the integration point ReStore uses, mirroring how the paper
extends Pig's ``JobControlCompiler`` (§6.2): plans are matched and
rewritten right before submission, statistics harvested right after
completion.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Optional

from repro.dfs.filesystem import DistributedFileSystem
from repro.execution.interpreter import DEFAULT_BATCH_SIZE, JobInterpreter
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.stats import JobStats, WorkflowStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.costmodel.model import CostModel


class JobListener:
    """Hooks around job execution (ReStore implements these).

    This is the formal contract between the engine and any reuse
    manager: besides the three execution hooks, the engine asks the
    listener which paths to spare during temp cleanup
    (:meth:`protected_paths`) and collects the structured events it
    accumulated (:meth:`drain`) — no duck-typed ``getattr`` probing.
    """

    def on_workflow_start(self, workflow: Workflow) -> None:
        """Called once before any job of the workflow runs."""

    def on_workflow_end(self, workflow: Workflow) -> None:
        """Called once after the workflow finishes (even on failure).

        ReStore releases per-workflow state here — e.g. the pins that
        protect repository outputs referenced by this workflow's
        rewritten plans from concurrent eviction.
        """

    def before_job(self, job: MapReduceJob, workflow: Workflow) -> bool:
        """Called before submission; return False to skip the job
        (e.g. its entire output was answered from the repository)."""
        return True

    def after_job(self, job: MapReduceJob, stats: JobStats, workflow: Workflow) -> None:
        """Called after successful execution with fresh statistics."""

    def protected_paths(self) -> set:
        """DFS paths the engine must not delete during temp cleanup."""
        return set()

    def drain(self) -> list:
        """Return (and clear) structured events accumulated since the
        last drain — :class:`repro.events.ReStoreEvent` instances."""
        return []


class HadoopSimulator:
    """Runs MapReduce jobs over the simulated DFS and times them."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        cluster: Optional[ClusterConfig] = None,
        cost_model: Optional["CostModel"] = None,
        fast_data_plane: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        payload_reuse: bool = True,
    ):
        # Imported here to break the mapreduce <-> costmodel cycle:
        # the model consumes this package's ClusterConfig and stats.
        from repro.costmodel.model import CostModel

        self.dfs = dfs
        self.cluster = cluster or ClusterConfig()
        self.cost_model = cost_model or CostModel(cluster=self.cluster)
        #: route execution through the typed-dataset cache + compiled
        #: dispatch; False restores the text-at-every-edge path (the
        #: ``exec_sim`` ablation baseline) — counters and outputs are
        #: byte-identical either way, only wall time differs
        self.fast_data_plane = fast_data_plane
        #: chunk size of the batched operator-evaluation tier; 0 keeps
        #: the per-row fast plane (see :class:`JobInterpreter`)
        self.batch_size = batch_size
        #: let copy-style stores clone their producer's serialized
        #: payload instead of re-serializing (fast plane only)
        self.payload_reuse = payload_reuse

    def run_job(self, job: MapReduceJob) -> JobStats:
        interpreter = JobInterpreter(
            job,
            self.dfs,
            n_reduce_tasks=self.cluster.n_reduce_tasks(job.conf.n_reducers),
            fast_data_plane=self.fast_data_plane,
            batch_size=self.batch_size,
            payload_reuse=self.payload_reuse,
        )
        stats = interpreter.run()
        stats.sim = self.cost_model.job_time(stats, job.conf.n_reducers)
        return stats

    def run_workflow(
        self,
        workflow: Workflow,
        listener: Optional[JobListener] = None,
    ) -> WorkflowStats:
        started = time.perf_counter()
        result = WorkflowStats(name=workflow.name)
        if listener is not None:
            listener.on_workflow_start(workflow)

        try:
            for job in workflow.topo_order():
                run_it = True
                if listener is not None:
                    run_it = listener.before_job(job, workflow)
                if not run_it or job.eliminated_by is not None:
                    result.eliminated_jobs.append(job.job_id)
                    continue
                stats = self.run_job(job)
                result.job_stats[job.job_id] = stats
                if listener is not None:
                    listener.after_job(job, stats, workflow)
        finally:
            if listener is not None:
                listener.on_workflow_end(workflow)

        deps = workflow.dependency_ids()
        job_times = {
            job_id: stats.sim_seconds
            for job_id, stats in result.job_stats.items()
        }
        result.sim_seconds = self.cost_model.workflow_time(job_times, deps)
        result.wall_seconds = time.perf_counter() - started
        return result

    def cleanup_temporaries(
        self, workflow: Workflow, keep: Optional[set] = None
    ) -> int:
        """Delete temp outputs (stock Pig behaviour the paper changes).

        ReStore passes ``keep`` with the paths it decided to retain in
        its repository.  Returns the number of files deleted.
        """
        keep = keep or set()
        deleted = 0
        for job in workflow.jobs:
            if job.temporary and job.output_path not in keep:
                if self.dfs.delete_if_exists(job.output_path):
                    deleted += 1
        return deleted
