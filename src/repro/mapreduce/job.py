"""MapReduce jobs: a physical plan plus execution configuration.

A :class:`MapReduceJob` is the unit the paper's ReStore operates on —
"each job is represented by its physical plan" (§6.1).  The plan runs
from POLoad sources to POStore sinks and contains at most one shuffle.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pig.physical.operators import POLoad, POStore
from repro.pig.physical.plan import PhysicalPlan

_JOB_COUNTER = itertools.count(1)


@dataclass
class JobConf:
    """Per-job execution knobs (mirrors Hadoop's JobConf)."""

    name: str = ""
    n_reducers: int = 28


class MapReduceJob:
    """One MapReduce job in a workflow."""

    def __init__(
        self,
        plan: PhysicalPlan,
        conf: Optional[JobConf] = None,
        output_path: Optional[str] = None,
        temporary: bool = False,
        job_id: Optional[str] = None,
    ):
        self.job_id = job_id or f"job_{next(_JOB_COUNTER):06d}"
        self.plan = plan
        self.conf = conf or JobConf(name=self.job_id)
        self._output_path = output_path
        #: True when the primary output is a workflow-internal temp file
        #: (deleted after the workflow in stock Pig; kept by ReStore)
        self.temporary = temporary
        #: Filled by ReStore when the whole job was answered from the
        #: repository and therefore never runs.
        self.eliminated_by: Optional[str] = None

    # -- plan accessors -----------------------------------------------------------

    @property
    def output_path(self) -> str:
        if self._output_path is not None:
            return self._output_path
        store = self.plan.primary_store()
        return store.path if store is not None else ""

    @property
    def load_paths(self) -> List[str]:
        return [op.path for op in self.plan.loads()]

    @property
    def store_paths(self) -> List[str]:
        return [op.path for op in self.plan.stores()]

    @property
    def has_shuffle(self) -> bool:
        return self.plan.global_rearrange() is not None

    def loads(self) -> List[POLoad]:
        return self.plan.loads()

    def stores(self) -> List[POStore]:
        return self.plan.stores()

    def validate(self) -> None:
        self.plan.validate()

    # -- serialization ------------------------------------------------------------

    def to_dict(self) -> dict:
        """Wire form of this job: the snapshot codec's plan JSON plus
        execution configuration.  ``from_dict`` rebuilds a job whose
        plan fingerprint is identical to the original's — the property
        the multi-process service relies on for coordinator-side
        matching against worker-side execution."""
        data = {
            "job_id": self.job_id,
            "plan": self.plan.to_dict(),
            "conf": {"name": self.conf.name, "n_reducers": self.conf.n_reducers},
            "temporary": self.temporary,
        }
        if self._output_path is not None:
            data["output_path"] = self._output_path
        if self.eliminated_by is not None:
            data["eliminated_by"] = self.eliminated_by
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "MapReduceJob":
        conf = data.get("conf", {})
        job = cls(
            PhysicalPlan.from_dict(data["plan"]),
            conf=JobConf(
                name=conf.get("name", ""),
                n_reducers=int(conf.get("n_reducers", 28)),
            ),
            output_path=data.get("output_path"),
            temporary=bool(data.get("temporary", False)),
            job_id=data["job_id"],
        )
        job.eliminated_by = data.get("eliminated_by")
        return job

    def __repr__(self) -> str:
        kind = "MR" if self.has_shuffle else "map-only"
        return (
            f"MapReduceJob({self.job_id}, {kind}, ops={len(self.plan)}, "
            f"out={self.output_path!r})"
        )


@dataclass
class Workflow:
    """A DAG of MapReduce jobs linked by produced/consumed DFS paths.

    Dependencies are derived from the data: job B depends on job A when
    B loads a path that A stores (the paper's Figure 1 arrows).
    """

    jobs: List[MapReduceJob] = field(default_factory=list)
    name: str = "workflow"

    def add(self, job: MapReduceJob) -> MapReduceJob:
        self.jobs.append(job)
        return job

    def remove(self, job: MapReduceJob) -> None:
        self.jobs.remove(job)

    def producers(self) -> Dict[str, MapReduceJob]:
        """Map of output path -> producing job."""
        out: Dict[str, MapReduceJob] = {}
        for job in self.jobs:
            for path in job.store_paths:
                out[path] = job
        return out

    def dependencies(self, job: MapReduceJob) -> List[MapReduceJob]:
        producers = self.producers()
        deps = []
        for path in job.load_paths:
            producer = producers.get(path)
            if producer is not None and producer is not job:
                deps.append(producer)
        return deps

    def dependency_ids(self) -> Dict[str, List[str]]:
        return {
            job.job_id: [d.job_id for d in self.dependencies(job)]
            for job in self.jobs
        }

    def topo_order(self) -> List[MapReduceJob]:
        """Jobs in dependency order (Kahn)."""
        remaining = list(self.jobs)
        done: set = set()
        order: List[MapReduceJob] = []
        while remaining:
            progressed = False
            for job in list(remaining):
                if all(d.job_id in done for d in self.dependencies(job)):
                    order.append(job)
                    done.add(job.job_id)
                    remaining.remove(job)
                    progressed = True
            if not progressed:
                raise ValueError("workflow contains a dependency cycle")
        return order

    def final_jobs(self) -> List[MapReduceJob]:
        """Jobs whose outputs nothing else in the workflow consumes."""
        consumed = {p for job in self.jobs for p in job.load_paths}
        return [
            job
            for job in self.jobs
            if not any(p in consumed for p in job.store_paths)
        ]

    def to_dict(self) -> dict:
        """Wire form: job list (each via :meth:`MapReduceJob.to_dict`)
        plus the workflow name.  Dependencies are not serialized —
        they are derived from load/store paths, so the rebuilt
        workflow's DAG is identical by construction."""
        return {"name": self.name, "jobs": [job.to_dict() for job in self.jobs]}

    @classmethod
    def from_dict(cls, data: dict) -> "Workflow":
        return cls(
            jobs=[MapReduceJob.from_dict(j) for j in data.get("jobs", [])],
            name=data.get("name", "workflow"),
        )

    def job_by_id(self, job_id: str) -> MapReduceJob:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(job_id)

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self):
        return iter(self.jobs)

    def __repr__(self) -> str:
        return f"Workflow({self.name!r}, jobs={len(self.jobs)})"
