"""Execution statistics produced by the simulated MapReduce engine.

These are the statistics ReStore's repository keeps per stored output
(§5): input/output sizes, record counts, shuffle volume, and the cost
model's simulated time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class StoreStat:
    """Bytes/records written by one POStore during a job."""

    path: str
    bytes: int = 0
    records: int = 0
    phase: str = "map"  # "map" | "reduce"
    side: bool = False  # True for ReStore-injected sub-job stores


@dataclass
class TimeBreakdown:
    """Equation 2 terms, in simulated seconds."""

    t_startup: float = 0.0
    t_load: float = 0.0
    t_ops: float = 0.0
    t_sort: float = 0.0
    t_store: float = 0.0
    t_side_stores: float = 0.0
    n_map_tasks: int = 1
    n_reduce_tasks: int = 0

    @property
    def total(self) -> float:
        return (
            self.t_startup
            + self.t_load
            + self.t_ops
            + self.t_sort
            + self.t_store
            + self.t_side_stores
        )

    @property
    def total_without_side_stores(self) -> float:
        return self.total - self.t_side_stores


@dataclass
class JobStats:
    """Everything measured while executing one MapReduce job."""

    job_id: str
    name: str = ""
    load_bytes: Dict[str, int] = field(default_factory=dict)
    input_records: int = 0
    map_output_records: int = 0
    shuffle_records: int = 0
    shuffle_bytes: int = 0
    reduce_groups: int = 0
    op_records: int = 0
    stores: List[StoreStat] = field(default_factory=list)
    sim: Optional[TimeBreakdown] = None
    wall_seconds: float = 0.0

    @property
    def input_bytes(self) -> int:
        return sum(self.load_bytes.values())

    @property
    def output_bytes(self) -> int:
        """Bytes written by the primary (non-side) stores."""
        return sum(s.bytes for s in self.stores if not s.side)

    @property
    def output_records(self) -> int:
        return sum(s.records for s in self.stores if not s.side)

    @property
    def side_store_bytes(self) -> int:
        """Bytes written by ReStore-injected stores (the §4 overhead)."""
        return sum(s.bytes for s in self.stores if s.side)

    @property
    def total_store_bytes(self) -> int:
        return sum(s.bytes for s in self.stores)

    def store_for_path(self, path: str) -> Optional[StoreStat]:
        for store in self.stores:
            if store.path == path:
                return store
        return None

    @property
    def sim_seconds(self) -> float:
        return self.sim.total if self.sim is not None else 0.0


@dataclass
class WorkflowStats:
    """Aggregate result of running one workflow."""

    name: str = "workflow"
    job_stats: Dict[str, JobStats] = field(default_factory=dict)
    eliminated_jobs: List[str] = field(default_factory=list)
    #: Equation 1 critical-path time over executed jobs (simulated s)
    sim_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def total_input_bytes(self) -> int:
        return sum(s.input_bytes for s in self.job_stats.values())

    @property
    def total_side_store_bytes(self) -> int:
        return sum(s.side_store_bytes for s in self.job_stats.values())

    @property
    def n_jobs_executed(self) -> int:
        return len(self.job_stats)

    @property
    def sim_minutes(self) -> float:
        return self.sim_seconds / 60.0
