"""Hadoop-style counters collected during job execution.

The cost model and ReStore's repository statistics are fed entirely
from these counters — exactly the statistics the paper notes "can
easily be collected by any MapReduce system" (§5).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator


class Counters:
    """A named counter group with dict-like access."""

    # Standard counter names (subset of Hadoop's TaskCounter/FileSystemCounter)
    MAP_INPUT_RECORDS = "MAP_INPUT_RECORDS"
    MAP_OUTPUT_RECORDS = "MAP_OUTPUT_RECORDS"
    REDUCE_INPUT_GROUPS = "REDUCE_INPUT_GROUPS"
    REDUCE_INPUT_RECORDS = "REDUCE_INPUT_RECORDS"
    REDUCE_OUTPUT_RECORDS = "REDUCE_OUTPUT_RECORDS"
    HDFS_BYTES_READ = "HDFS_BYTES_READ"
    HDFS_BYTES_WRITTEN = "HDFS_BYTES_WRITTEN"
    SHUFFLE_BYTES = "SHUFFLE_BYTES"
    SHUFFLE_RECORDS = "SHUFFLE_RECORDS"
    OPERATOR_RECORDS = "OPERATOR_RECORDS"

    def __init__(self):
        self._values: Dict[str, int] = defaultdict(int)

    def incr(self, name: str, amount: int = 1) -> None:
        self._values[name] += amount

    def get(self, name: str) -> int:
        return self._values.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] += value

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"
