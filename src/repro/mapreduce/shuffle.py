"""Sort/shuffle between map and reduce: partition, sort, group.

Keys can be heterogeneous (ints, floats, strings, tuples, None), so
ordering uses a type-ranked canonical form, and partitioning uses a
content-stable hash (Python's ``hash`` of strings is process-seeded
and would make runs non-deterministic).

Records are **decorated at add time**: the canonical sort key and the
partition hash are computed once per record when it enters the buffer,
so sorting compares precomputed keys and the group scan never
re-derives them (decorate-sort-undecorate).  Wire-byte accounting uses
:func:`repro.relational.tuples.serialized_row_size` — the serialized
length without building the line — and reuses the key's ``repr`` for
both the partition hash and the key-length term.  Both changes are
value-identical to the historical per-record recomputation;
``tests/test_shuffle.py`` pins that down.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.relational.tuples import Row, serialized_row_size

#: one decorated shuffle record: (sort key, key, branch tag, row)
ShuffleRecord = Tuple[tuple, object, int, Row]

_by_sort_key = itemgetter(0)


def stable_hash(key, key_repr: Optional[str] = None) -> int:
    """Deterministic non-negative hash of an arbitrary key value.

    ``key_repr`` lets hot callers that already rendered ``repr(key)``
    (the shuffle reuses it for wire-byte accounting) skip a second
    rendering; it must equal ``repr(key)``.
    """
    if key_repr is None:
        key_repr = repr(key)
    return zlib.crc32(key_repr.encode())


_TYPE_RANK = {type(None): 0, bool: 1, int: 2, float: 2, str: 3, tuple: 4}


def sort_key(key):
    """Total order over heterogeneous key values.

    Numbers sort together (int/float), then strings, then tuples
    (element-wise recursively); None sorts first — matching Hadoop's
    null-first writable comparators closely enough for our purposes.
    """
    if isinstance(key, tuple):
        return (4, tuple(sort_key(k) for k in key))
    rank = _TYPE_RANK.get(type(key), 5)
    if key is None:
        return (0, 0)
    if rank == 5:
        return (5, repr(key))
    return (rank, key)


class ShuffleBuffer:
    """Collects map output and serves sorted, grouped reduce input."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self._partitions: Dict[int, List[ShuffleRecord]] = defaultdict(list)
        self.records = 0
        self.bytes = 0

    def add(self, key, branch: int, row: Row) -> None:
        key_repr = repr(key)
        partition = stable_hash(key, key_repr) % self.n_partitions
        self._partitions[partition].append((sort_key(key), key, branch, row))
        self.records += 1
        # Approximate the wire size the way Hadoop accounts map output
        # bytes: serialized key + value.
        self.bytes += serialized_row_size(row) + len(key_repr) + 2

    def used_partitions(self) -> List[int]:
        return sorted(p for p, records in self._partitions.items() if records)

    def grouped(self, partition: int) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """Yield (key, branch -> rows) groups in key-sorted order."""
        records = self._partitions.get(partition, [])
        records.sort(key=_by_sort_key)
        index = 0
        n_records = len(records)
        while index < n_records:
            group_sort_key, key = records[index][0], records[index][1]
            bags: Dict[int, List[Row]] = defaultdict(list)
            while index < n_records and records[index][0] == group_sort_key:
                _, _, branch, row = records[index]
                bags[branch].append(row)
                index += 1
            yield key, bags

    def all_groups(self) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """All groups across partitions, partition-major order."""
        for partition in range(self.n_partitions):
            yield from self.grouped(partition)
