"""Sort/shuffle between map and reduce: partition, sort, group.

Keys can be heterogeneous (ints, floats, strings, tuples, None), so
ordering uses a type-ranked canonical form, and partitioning uses a
content-stable hash (Python's ``hash`` of strings is process-seeded
and would make runs non-deterministic).
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Dict, Iterator, List, Tuple

from repro.relational.tuples import Row, serialize_row

#: one shuffle record: (key, branch tag, row)
ShuffleRecord = Tuple[object, int, Row]


def stable_hash(key) -> int:
    """Deterministic non-negative hash of an arbitrary key value."""
    return zlib.crc32(repr(key).encode())


_TYPE_RANK = {type(None): 0, bool: 1, int: 2, float: 2, str: 3, tuple: 4}


def sort_key(key):
    """Total order over heterogeneous key values.

    Numbers sort together (int/float), then strings, then tuples
    (element-wise recursively); None sorts first — matching Hadoop's
    null-first writable comparators closely enough for our purposes.
    """
    if isinstance(key, tuple):
        return (4, tuple(sort_key(k) for k in key))
    rank = _TYPE_RANK.get(type(key), 5)
    if key is None:
        return (0, 0)
    if rank == 5:
        return (5, repr(key))
    return (rank, key)


class ShuffleBuffer:
    """Collects map output and serves sorted, grouped reduce input."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self._partitions: Dict[int, List[ShuffleRecord]] = defaultdict(list)
        self.records = 0
        self.bytes = 0

    def add(self, key, branch: int, row: Row) -> None:
        partition = stable_hash(key) % self.n_partitions
        self._partitions[partition].append((key, branch, row))
        self.records += 1
        # Approximate the wire size the way Hadoop accounts map output
        # bytes: serialized key + value.
        self.bytes += len(serialize_row(row)) + len(repr(key)) + 2

    def used_partitions(self) -> List[int]:
        return sorted(p for p, records in self._partitions.items() if records)

    def grouped(self, partition: int) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """Yield (key, branch -> rows) groups in key-sorted order."""
        records = self._partitions.get(partition, [])
        records.sort(key=lambda rec: sort_key(rec[0]))
        index = 0
        while index < len(records):
            key = records[index][0]
            bags: Dict[int, List[Row]] = defaultdict(list)
            while index < len(records) and sort_key(records[index][0]) == sort_key(key):
                _, branch, row = records[index]
                bags[branch].append(row)
                index += 1
            yield key, bags

    def all_groups(self) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """All groups across partitions, partition-major order."""
        for partition in range(self.n_partitions):
            yield from self.grouped(partition)
