"""Sort/shuffle between map and reduce: partition, sort, group.

Keys can be heterogeneous (ints, floats, strings, tuples, None), so
ordering uses a type-ranked canonical form, and partitioning uses a
content-stable hash (Python's ``hash`` of strings is process-seeded
and would make runs non-deterministic).

Records are **decorated at add time**: the canonical sort key and the
partition hash are computed once per record when it enters the buffer,
so sorting compares precomputed keys and the group scan never
re-derives them (decorate-sort-undecorate).  Wire-byte accounting uses
:func:`repro.relational.tuples.serialized_row_size` — the serialized
length without building the line — and reuses the key's ``repr`` for
both the partition hash and the key-length term.  Both changes are
value-identical to the historical per-record recomputation;
``tests/test_shuffle.py`` pins that down.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from itertools import groupby, repeat
from operator import itemgetter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.relational.tuples import Row, serialized_row_size, serialized_rows_size

#: one decorated shuffle record: (sort key, key, branch tag, row)
ShuffleRecord = Tuple[tuple, object, int, Row]

_by_sort_key = itemgetter(0)

#: exact scalar type -> sort rank, for whole-chunk decoration; types
#: outside this map (None, tuples, unranked) decorate per record
_SCALAR_RANKS = {bool: 1, int: 2, float: 2, str: 3}


def stable_hash(key, key_repr: Optional[str] = None) -> int:
    """Deterministic non-negative hash of an arbitrary key value.

    ``key_repr`` lets hot callers that already rendered ``repr(key)``
    (the shuffle reuses it for wire-byte accounting) skip a second
    rendering; it must equal ``repr(key)``.
    """
    if key_repr is None:
        key_repr = repr(key)
    return zlib.crc32(key_repr.encode())


_TYPE_RANK = {type(None): 0, bool: 1, int: 2, float: 2, str: 3, tuple: 4}


def sort_key(key):
    """Total order over heterogeneous key values.

    Numbers sort together (int/float), then strings, then tuples
    (element-wise recursively); None sorts first — matching Hadoop's
    null-first writable comparators closely enough for our purposes.
    """
    if isinstance(key, tuple):
        return (4, tuple(sort_key(k) for k in key))
    rank = _TYPE_RANK.get(type(key), 5)
    if key is None:
        return (0, 0)
    if rank == 5:
        return (5, repr(key))
    return (rank, key)


class ShuffleBuffer:
    """Collects map output and serves sorted, grouped reduce input."""

    def __init__(self, n_partitions: int):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions
        self._partitions: Dict[int, List[ShuffleRecord]] = defaultdict(list)
        self._branches_seen: set = set()
        self.records = 0
        self.bytes = 0

    @property
    def _single_branch(self) -> Optional[int]:
        """The one branch every record carries, or None if mixed."""
        if len(self._branches_seen) == 1:
            return next(iter(self._branches_seen))
        return None

    def add(self, key, branch: int, row: Row) -> None:
        key_repr = repr(key)
        partition = stable_hash(key, key_repr) % self.n_partitions
        self._partitions[partition].append((sort_key(key), key, branch, row))
        self._branches_seen.add(branch)
        self.records += 1
        # Approximate the wire size the way Hadoop accounts map output
        # bytes: serialized key + value.
        self.bytes += serialized_row_size(row) + len(key_repr) + 2

    def add_batch(
        self,
        branch: int,
        keys: List,
        rows: List[Row],
        row_bytes: Optional[int] = None,
    ) -> None:
        """Add a chunk's records of one branch in columnar passes.

        The batched data plane's POLocalRearrange handler decorates a
        whole chunk here: key reprs render through one C-level ``map``,
        wire bytes sum column-wise (:func:`serialized_rows_size`) —
        or arrive precomputed as ``row_bytes`` when the caller already
        knows every row's memoized width — and the remaining
        per-record loop (partition hash, sort-key decoration, append)
        runs with every hot name pre-bound and the scalar
        :func:`sort_key` cases inlined (reusing the already-rendered
        repr for unranked types).  The resulting buffer state
        (records, bytes, per-partition contents and order) is
        value-identical to repeated :meth:`add` calls —
        ``tests/test_shuffle.py`` pins the equivalence down.
        """
        if not rows:
            return
        self._branches_seen.add(branch)
        partitions = self._partitions
        n_partitions = self.n_partitions
        reprs = list(map(repr, keys))
        ranks = {_SCALAR_RANKS.get(kind) for kind in set(map(type, keys))}
        if len(ranks) == 1 and None not in ranks:
            # uniform scalar keys (the common chunk): decorate by one
            # shared rank and assemble the records through C-level zip
            rank = ranks.pop()
            records = list(
                zip(zip(repeat(rank), keys), keys, repeat(branch), rows)
            )
        else:
            type_rank = _TYPE_RANK
            make_sort_key = sort_key
            records = []
            append = records.append
            for key, key_repr in zip(keys, reprs):
                kind = type(key)
                if kind is tuple:
                    decorated = make_sort_key(key)
                elif key is None:
                    decorated = (0, 0)
                else:
                    unranked = type_rank.get(kind, 5)
                    # rank 5 uses repr(key) — the rendered key_repr
                    decorated = (
                        (unranked, key) if unranked != 5 else (5, key_repr)
                    )
                append(decorated)
            records = list(zip(records, keys, repeat(branch), rows))
        crcs = map(zlib.crc32, map(str.encode, reprs))
        if n_partitions == 1:
            partitions[0].extend(records)
        else:
            for crc, record in zip(crcs, records):
                partitions[crc % n_partitions].append(record)
        if row_bytes is None:
            row_bytes = serialized_rows_size(rows)
        self.records += len(rows)
        self.bytes += row_bytes + sum(map(len, reprs)) + 2 * len(reprs)

    def used_partitions(self) -> List[int]:
        return sorted(p for p, records in self._partitions.items() if records)

    def grouped(self, partition: int) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """Yield (key, branch -> rows) groups in key-sorted order.

        Group boundaries come from :func:`itertools.groupby` over the
        precomputed sort keys (C-level comparisons); the single-branch
        case — GROUP, DISTINCT, ORDER — extracts each group's rows in
        one comprehension instead of a per-record branch dispatch.
        """
        records = self._partitions.get(partition, [])
        records.sort(key=_by_sort_key)
        if self._single_branch is not None:
            branch = self._single_branch
            for _, group in groupby(records, key=_by_sort_key):
                group = list(group)
                yield group[0][1], {branch: [record[3] for record in group]}
            return
        for _, group in groupby(records, key=_by_sort_key):
            group = list(group)
            bags: Dict[int, List[Row]] = defaultdict(list)
            for _, _, branch, row in group:
                bags[branch].append(row)
            yield group[0][1], bags

    def all_groups(self) -> Iterator[Tuple[object, Dict[int, List[Row]]]]:
        """All groups across partitions, partition-major order."""
        for partition in range(self.n_partitions):
            yield from self.grouped(partition)
