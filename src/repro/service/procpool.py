"""Spawn-based worker-process pool: the GIL-free execution substrate.

The thread-pool service hit a wall the ``service_throughput`` bench
made undeniable: 8 workers delivered the same aggregate jobs/sec as 1,
because every interpreter step serialized on the GIL.  This module
splits the service the way the paper splits responsibilities between
Pig clients and the ReStore server (§1): a **coordinator** process
keeps the DFS, the sharded repository, and the manager — all matching,
rewriting, registration, eviction, and persistence — while **worker**
processes compile and execute plans against private filesystems.

The two halves speak a compact message protocol over a
``multiprocessing`` pipe, one synchronous exchange per
:class:`~repro.mapreduce.runner.JobListener` hook, with plans encoded
as the snapshot codec's plan JSON (fingerprint-preserving, so the
coordinator's matching decisions are exactly the ones a serial run
would make):

======================  =====================================================
worker → coordinator    coordinator reply
======================  =====================================================
``wf_start``            ``proceed`` — mirror workflow built, pins opened
``before_job``          ``directives`` — run flag, every job's current plan
                        + elimination state, input payloads the worker lacks
``after_job``           ``proceed`` — store payloads written to the
                        coordinator DFS, sub-jobs registered
``wf_end``              ``kept`` — pins released, protected paths for the
                        worker's temp cleanup
``result`` / ``error``  *(ends the conversation)*
======================  =====================================================

File shipping is versioned by the coordinator DFS's logical mtime: a
per-worker ``synced`` map records which version of each path a worker
already holds, so repeated probes against the same datasets ship bytes
once, not per job.

Determinism: every decision-producing step runs coordinator-side in
submission order (per-session FIFO tickets, script ids allocated from
the coordinator DFS at execution turn), so a 1-worker-process service
produces a decision log byte-identical to a serial run — the same gate
the thread pool has always been held to.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.dfs.filesystem import DistributedFileSystem
from repro.faults import injector as faults
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.runner import JobListener
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema
from repro.relational.tuples import deserialize_rows


class WorkerCrashed(RuntimeError):
    """The worker process died (or desynced) mid-conversation.

    The coordinator discards the worker and — within the configured
    retry budget — replays the whole request on a fresh one; repository
    registration is idempotent (``add_if_absent``), so a crash after a
    partial run cannot duplicate entries.
    """


class WorkerTimeout(WorkerCrashed):
    """The worker exceeded the per-exchange timeout: it is hung (or
    dead without closing the pipe).  Handled exactly like a crash —
    the worker is killed and the request re-dispatched — but kept as
    its own type so the service can count timeouts separately."""


class WorkerJobError(RuntimeError):
    """The job raised inside the worker; the worker itself is healthy
    (it completed the error protocol) and stays in the pool."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.job_message = message


# -- worker side --------------------------------------------------------------------


class _CoordinatorProxy(JobListener):
    """Worker-side listener forwarding every hook to the coordinator.

    The worker never matches, registers, or evicts: each hook is one
    synchronous request/reply exchange on the pipe, and the reply
    carries the coordinator's decisions — rewritten plans, elimination
    flags, input payloads, kept paths — for the worker to apply to its
    local workflow and filesystem.
    """

    def __init__(self, conn, dfs: DistributedFileSystem):
        self._conn = conn
        self._dfs = dfs
        self._kept: Set[str] = set()

    def _exchange(self, message: dict) -> dict:
        # injection site "worker.hook": crash/hang before the request
        # reaches the coordinator, garble the frame, or (when="after")
        # crash once the reply arrived but before it was applied
        out = faults.fire("worker.hook", data=message)
        if out is faults.GARBLED:
            # a corrupted frame: raw junk the coordinator cannot
            # unpickle — it must treat this worker as crashed
            self._conn.send_bytes(b"\xde\xad\xbe\xef not a pickle")
        else:
            self._conn.send(message)
        reply = self._conn.recv()
        faults.fire("worker.hook", when="after", data=reply)
        return reply

    def on_workflow_start(self, workflow: Workflow) -> None:
        self._kept = set()
        self._exchange({"op": "wf_start", "workflow": workflow.to_dict()})

    def before_job(self, job: MapReduceJob, workflow: Workflow) -> bool:
        reply = self._exchange({"op": "before_job", "job_id": job.job_id})
        # The coordinator's matcher may have rewritten ANY job of the
        # workflow (a whole-job elimination redirects every consumer's
        # loads), so the directives carry each job's current plan.
        for job_id, plan_data, eliminated_by in reply["jobs"]:
            target = workflow.job_by_id(job_id)
            target.plan = PhysicalPlan.from_dict(plan_data)
            target.eliminated_by = eliminated_by
        for path, payload in reply["files"]:
            self._dfs.write_file(path, payload, overwrite=True)
        return reply["run"]

    def after_job(self, job, stats, workflow) -> None:
        stores = [
            (path, self._dfs.read_file(path))
            for path in job.store_paths
            if self._dfs.exists(path)
        ]
        self._exchange(
            {
                "op": "after_job",
                "job_id": job.job_id,
                "stats": stats,
                "stores": stores,
            }
        )

    def on_workflow_end(self, workflow) -> None:
        reply = self._exchange({"op": "wf_end"})
        self._kept = set(reply["kept"])

    def protected_paths(self) -> Set[str]:
        return set(self._kept)

    def drain(self) -> list:
        # Events are coordinator-side state: the manager emitted them
        # while this conversation drove its hooks, and the coordinator
        # drains them into the result envelope.
        return []


def worker_main(conn, context: dict, ordinal: int = 0) -> None:
    """Entry point of one worker process (the spawn target).

    Builds a private DFS + ``PigServer`` once, then serves run
    requests until a ``stop`` message or pipe loss.  Input files
    arrive through ``before_job`` directives; store payloads flow back
    through ``after_job`` — the worker's filesystem is a cache of the
    coordinator's, never the source of truth.

    ``ordinal`` is this worker's pool spawn-sequence number; a fault
    plan shipped in the context is installed keyed by it, so chaos
    rules address individual workers deterministically across spawns
    (a crashed worker's replacement has a fresh ordinal and can never
    re-trip a one-shot rule).
    """
    from repro.pig.engine import PigServer
    from repro.service.api import JobRequest

    plan = context.get("faults")
    if plan is not None:
        faults.install(faults.FaultInjector(plan, worker_ordinal=ordinal))
    dfs = DistributedFileSystem(n_datanodes=context["datanodes"])
    proxy = _CoordinatorProxy(conn, dfs)
    server = PigServer(
        dfs,
        cluster=context["cluster"],
        cost_model=context["cost_model"],
        restore=proxy,
        optimize=context["optimize"],
        default_parallel=context["default_parallel"],
        fast_data_plane=context["fast_data_plane"],
        batch_size=context["batch_size"],
        payload_reuse=context["payload_reuse"],
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message.get("op") == "stop":
            break
        request = JobRequest.from_wire(message["request"])
        try:
            if request.source is not None:
                workflow = server.compile(
                    request.source,
                    name=request.name,
                    script_id=message["script_id"],
                )
            else:
                workflow = request.workflow
            result = server.run_workflow(workflow)
        except BaseException as exc:
            try:
                conn.send(
                    {
                        "op": "error",
                        "kind": type(exc).__name__,
                        "message": str(exc),
                    }
                )
            except (BrokenPipeError, OSError):
                break
            continue
        try:
            # injection site "worker.result": crash/hang after the job
            # ran but before its result reached the coordinator — the
            # retry must stay idempotent despite completed side effects
            faults.fire("worker.result")
            conn.send(
                {"op": "result", "stats": result.stats, "outputs": result.outputs}
            )
            faults.fire("worker.result", when="after")
        except (BrokenPipeError, OSError):
            break
    conn.close()


# -- coordinator side ---------------------------------------------------------------


class WorkerHandle:
    """Coordinator-side state of one live worker process."""

    def __init__(self, process, conn, name: str, ordinal: int = 0):
        self.process = process
        self.conn = conn
        self.name = name
        #: pool spawn-sequence number (fault plans target it)
        self.ordinal = ordinal
        #: coordinator-DFS logical mtime of every path this worker
        #: already holds (shipped to it, or received back from it) —
        #: the file-sync version map
        self.synced: Dict[str, int] = {}

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def __repr__(self) -> str:
        state = "alive" if self.process.is_alive() else "dead"
        return f"WorkerHandle({self.name}, pid={self.pid}, {state})"


class ProcessWorkerPool:
    """A fixed-size pool of spawned worker processes.

    All workers are spawned up front (spawn cost stays out of the
    serving window); a worker discarded after a crash is replaced
    lazily by the next ``acquire`` that needs it.  Workers are daemons:
    an abandoned pool can never outlive the coordinator.
    """

    def __init__(self, n_workers: int, context: dict):
        self._mp = multiprocessing.get_context("spawn")
        self._context = context
        self._n = n_workers
        self._lock = threading.Condition()
        self._idle: List[WorkerHandle] = []
        #: handles currently out on a conversation (kill_all must be
        #: able to reach hung workers, not just idle ones)
        self._busy: List[WorkerHandle] = []
        self._live = 0
        self._seq = 0
        self._closed = False
        for _ in range(n_workers):
            self._idle.append(self._spawn())
            self._live += 1

    def _spawn(self) -> WorkerHandle:
        with self._lock:
            self._seq += 1
            ordinal = self._seq
            name = f"restore-proc-{ordinal}"
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, self._context, ordinal),
            name=name,
            daemon=True,
        )
        process.start()
        # close our copy of the child end so a dead worker surfaces as
        # EOFError on the next recv instead of a hang
        child_conn.close()
        return WorkerHandle(process, parent_conn, name, ordinal=ordinal)

    def acquire(self) -> WorkerHandle:
        """Take an idle worker, spawning a replacement for a discarded
        one if the pool is below size; blocks when all are busy."""
        with self._lock:
            while True:
                if self._closed:
                    raise RuntimeError("worker pool is stopped")
                if self._idle:
                    handle = self._idle.pop()
                    self._busy.append(handle)
                    return handle
                if self._live < self._n:
                    self._live += 1
                    break
                self._lock.wait()
        try:
            handle = self._spawn()
        except BaseException:
            with self._lock:
                self._live -= 1
                self._lock.notify()
            raise
        with self._lock:
            self._busy.append(handle)
        return handle

    def release(self, handle: WorkerHandle) -> None:
        """Return a healthy worker to the pool."""
        with self._lock:
            if handle in self._busy:
                self._busy.remove(handle)
            if not self._closed:
                self._idle.append(handle)
                self._lock.notify()
                return
        self._stop_handle(handle, graceful=True)

    def discard(self, handle: WorkerHandle) -> None:
        """Drop a crashed, hung, or desynced worker (terminated
        immediately — it may be unresponsive); its replacement is
        spawned by the next acquire that needs one."""
        self._stop_handle(handle, graceful=False)
        with self._lock:
            if handle in self._busy:
                self._busy.remove(handle)
            self._live = max(0, self._live - 1)
            self._lock.notify()

    def stop(self) -> None:
        """Stop every idle worker and refuse further acquires; busy
        workers are stopped as their conversations release them."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            idle = list(self._idle)
            self._idle.clear()
            self._lock.notify_all()
        for handle in idle:
            self._stop_handle(handle, graceful=True)

    def kill_all(
        self, join_timeout: float = 1.0
    ) -> List[Tuple[str, Optional[int], str]]:
        """Terminate every live worker — idle *and* busy — with a
        bounded join, and refuse further acquires.

        The non-waiting shutdown path uses this: a hung worker would
        otherwise survive ``stop()`` (which only reaps idle handles)
        and wedge interpreter exit on its pipe.  Returns
        ``(name, pid, state)`` for each worker that had to be killed
        while alive, so the service can surface ``WorkerKilled``
        events.
        """
        with self._lock:
            self._closed = True
            victims = self._idle + self._busy
            self._idle.clear()
            self._busy.clear()
            self._live = 0
            self._lock.notify_all()
        killed: List[Tuple[str, Optional[int], str]] = []
        for handle in victims:
            alive = handle.process.is_alive()
            try:
                handle.conn.close()
            except OSError:
                pass
            if alive:
                handle.process.terminate()
                handle.process.join(timeout=join_timeout)
                killed.append((handle.name, handle.pid, "terminated"))
            else:
                handle.process.join(timeout=join_timeout)
        return killed

    def _stop_handle(self, handle: WorkerHandle, graceful: bool) -> None:
        if graceful and handle.process.is_alive():
            try:
                handle.conn.send({"op": "stop"})
            except (BrokenPipeError, OSError):
                pass
        try:
            handle.conn.close()
        except OSError:
            pass
        if graceful:
            handle.process.join(timeout=5.0)
        # non-graceful: terminate immediately — the worker may be hung
        # mid-exchange, and a courtesy join would stall every retry by
        # its full timeout
        if handle.process.is_alive():
            handle.process.terminate()
            handle.process.join(timeout=5.0)

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ProcessWorkerPool(size={self._n}, live={self._live}, "
                f"idle={len(self._idle)}, closed={self._closed})"
            )


class _Conversation:
    """Per-conversation coordinator state."""

    __slots__ = ("mirror", "started")

    def __init__(self):
        self.mirror: Optional[Workflow] = None
        self.started = False


class ProcessJobRunner:
    """Coordinator-side half of the wire protocol.

    One instance per service; each :meth:`run_conversation` drives one
    submission on one worker, applying every manager hook to a
    coordinator-side *mirror* workflow so matching, registration,
    pinning, and eviction see exactly the state a serial run would.
    """

    def __init__(self, manager, dfs, reserved_paths=(), exchange_timeout=None):
        self.manager = manager
        self.dfs = dfs
        #: coordinator-owned DFS paths a worker must never store to
        #: (the persistence snapshot/journal, and the block-store base
        #: whose generation files hang off it as "<base>.g<N>")
        self.reserved_paths: Set[str] = set(reserved_paths)
        #: seconds to wait for any single worker reply (None/0 = block
        #: forever, the historical behaviour)
        self.exchange_timeout: Optional[float] = exchange_timeout

    def _recv(self, handle: WorkerHandle):
        """One reply off the worker pipe, bounded by the exchange
        timeout.

        Any receive failure — EOF, pipe loss, or an undecodable
        (garbled) frame — maps to :class:`WorkerCrashed`: the sender
        is the only plausible culprit once bytes went bad, and the
        worker must leave the pool either way.
        """
        timeout = self.exchange_timeout
        if timeout:
            if not handle.conn.poll(timeout):
                raise WorkerTimeout(
                    f"worker {handle.name} (pid {handle.pid}) sent nothing "
                    f"for {timeout:g}s: hung mid-exchange"
                )
        try:
            return handle.conn.recv()
        except Exception as exc:
            raise WorkerCrashed(
                f"worker {handle.name} (pid {handle.pid}) pipe "
                f"unreadable: {exc!r}"
            ) from exc

    def run_conversation(
        self, handle: WorkerHandle, request, script_id: Optional[int]
    ) -> Tuple[Workflow, object, Dict[str, list]]:
        """Run *request* on *handle*; returns (workflow, stats, outputs).

        Raises :class:`WorkerJobError` when the job failed worker-side
        (worker healthy) and :class:`WorkerCrashed` when the pipe died.
        """
        conn = handle.conn
        state = _Conversation()
        try:
            try:
                conn.send(
                    {
                        "op": "run",
                        "request": request.to_wire(),
                        "script_id": script_id,
                    }
                )
                while True:
                    message = self._recv(handle)
                    op = message.get("op")
                    if op == "wf_start":
                        self._on_wf_start(state, message)
                        conn.send({"op": "proceed"})
                    elif op == "before_job":
                        conn.send(self._on_before_job(state, handle, message))
                    elif op == "after_job":
                        self._on_after_job(state, handle, message)
                        conn.send({"op": "proceed"})
                    elif op == "wf_end":
                        conn.send(self._on_wf_end(state))
                    elif op == "result":
                        outputs = message["outputs"]
                        self._fill_missing_outputs(state.mirror, outputs)
                        return state.mirror, message["stats"], outputs
                    elif op == "error":
                        raise WorkerJobError(message["kind"], message["message"])
                    else:
                        raise WorkerCrashed(
                            f"worker {handle.name} sent unexpected {op!r}"
                        )
            except (EOFError, BrokenPipeError, OSError) as exc:
                raise WorkerCrashed(
                    f"worker {handle.name} (pid {handle.pid}) died "
                    f"mid-conversation: {exc!r}"
                ) from exc
        finally:
            if state.started and state.mirror is not None:
                # the worker-side runner's finally never reached us:
                # release pins/pending exactly as on_workflow_end would
                self.manager.on_workflow_end(state.mirror)

    # -- hook handlers (monkeypatch points for fault-injection tests) ------------

    def _on_wf_start(self, state: _Conversation, message: dict) -> None:
        state.mirror = Workflow.from_dict(message["workflow"])
        self.manager.on_workflow_start(state.mirror)
        state.started = True

    def _on_before_job(
        self, state: _Conversation, handle: WorkerHandle, message: dict
    ) -> dict:
        job = state.mirror.job_by_id(message["job_id"])
        run_it = self.manager.before_job(job, state.mirror)
        files: List[Tuple[str, bytes]] = []
        if run_it:
            # ship the (post-rewrite) inputs this worker lacks; a path
            # missing coordinator-side fails worker-side exactly as it
            # would in a serial run
            for path in job.load_paths:
                if not self.dfs.exists(path):
                    continue
                version = self.dfs.mtime(path)
                if handle.synced.get(path) != version:
                    files.append((path, self.dfs.read_file(path)))
                    handle.synced[path] = version
        return {
            "op": "directives",
            "run": run_it,
            "jobs": [
                (j.job_id, j.plan.to_dict(), j.eliminated_by)
                for j in state.mirror.jobs
            ],
            "files": files,
        }

    def _on_after_job(
        self, state: _Conversation, handle: WorkerHandle, message: dict
    ) -> None:
        job = state.mirror.job_by_id(message["job_id"])
        for path, payload in message["stores"]:
            if self._reserved(path):
                raise RuntimeError(
                    f"worker stored to reserved persistence path {path!r}; "
                    "the snapshot/journal/block store are "
                    "coordinator-owned files"
                )
            self.dfs.write_file(path, payload, overwrite=True)
            handle.synced[path] = self.dfs.mtime(path)
        self.manager.after_job(job, message["stats"], state.mirror)

    def _reserved(self, path: str) -> bool:
        """Exact reserved paths, plus their dot-suffixed derivatives
        (block-store generations "<base>.gN", temp files)."""
        if path in self.reserved_paths:
            return True
        return any(
            path.startswith(base + ".") for base in self.reserved_paths
        )

    def _on_wf_end(self, state: _Conversation) -> dict:
        self.manager.on_workflow_end(state.mirror)
        state.started = False
        kept = self.manager.protected_paths()
        # replicate the engine's temp cleanup on the coordinator's
        # authoritative filesystem (the worker cleans its own copy)
        for job in state.mirror.jobs:
            if job.temporary and job.output_path not in kept:
                self.dfs.delete_if_exists(job.output_path)
        return {"op": "kept", "kept": sorted(kept)}

    def _fill_missing_outputs(
        self, mirror: Optional[Workflow], outputs: Dict[str, list]
    ) -> None:
        """Outputs an eliminated job never produced worker-side (e.g.
        an ``already-stored`` resubmission) exist only on the
        coordinator's filesystem — parse them here so the result
        envelope matches a serial run's."""
        if mirror is None:
            return
        for job in mirror.jobs:
            if job.temporary:
                continue
            store = job.plan.primary_store()
            if store is None or store.path in outputs:
                continue
            if self.dfs.exists(store.path):
                schema = store.schema or Schema()
                outputs[store.path] = deserialize_rows(
                    self.dfs.read_text(store.path), schema
                )


__all__ = [
    "ProcessJobRunner",
    "ProcessWorkerPool",
    "WorkerCrashed",
    "WorkerHandle",
    "WorkerJobError",
    "WorkerTimeout",
    "worker_main",
]
