"""JobService: the concurrent multi-tenant front door to ReStore.

The paper positions ReStore as a *shared service* between many Pig
clients and one MapReduce cluster (§1, Figure 1): every client's jobs
flow through the same repository so that one tenant's stored results
answer another tenant's queries.  This module is that deployment
shape: a :class:`JobService` owns one DFS, one thread-safe
:class:`~repro.core.manager.ReStoreManager`, and one sharded
:class:`~repro.core.repository.Repository`, and executes job
submissions from many :class:`~repro.session.ReStoreSession` tenants.

Every submission path — ``submit``/``submit_workflow``/``run`` here,
``run``/``run_workflow`` on a session — converges on the typed
:class:`~repro.service.api.JobRequest` /
:class:`~repro.service.api.JobOutcome` pair, and
:class:`~repro.service.api.ServiceConfig` selects the execution
substrate: ``executor="threads"`` (shared address space) or
``executor="processes"`` (a spawn-based worker-process pool —
coordinator keeps the repository/manager/DFS, workers execute plans;
see :mod:`repro.service.procpool` for the wire protocol).

Guarantees (both executors):

* **per-session FIFO** — each tenant's submissions execute in exact
  submission order (a ticket taken at enqueue time gates execution),
  while different tenants' jobs run concurrently;
* **event isolation** — every tenant's work runs inside its own
  ``manager.session_scope``, so its typed events are stamped with its
  session id and drained without cross-talk;
* **1-worker determinism** — with ``max_workers=1`` all submissions
  execute in global FIFO order, producing byte-identical rewrite
  decisions and an identical final repository to a serial run of the
  same stream, for one worker *thread* and one worker *process* alike
  (the differential tests and the ``service_throughput`` benchmark
  gates assert exactly this).

Quick start::

    from repro.service import JobService

    with JobService(max_workers=4) as service:
        service.dfs.write_file("data/users", "alice\\t1\\nbob\\t2\\n")
        alice = service.open_session("alice")
        bob = service.open_session("bob")
        f1 = alice.submit(
            "A = load 'data/users' as (name, uid:int);"
            "B = filter A by uid > 0; store B into 'out/a';"
        )
        f1.result()
        f2 = bob.submit(           # submitted after alice's job
            "A = load 'data/users' as (name, uid:int);"
            "B = filter A by uid > 0; C = foreach B generate name;"
            "store C into 'out/b';"
        )
        f2.result()                # reused alice's stored result
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import (
    CoordinatorHeartbeat,
    EntryQuarantined,
    PersistenceDegraded,
    ReStoreEvent,
    StandbyPromoted,
    WorkerKilled,
)
from repro.faults import injector as faults
from repro.mapreduce.cluster import ClusterConfig
from repro.mapreduce.job import Workflow
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    announce_scrub_condemnations,
    recover,
)
from repro.persistence.standby import StandbyReplica
from repro.pig.engine import PigRunResult
from repro.service.api import JobOutcome, JobRequest, ServiceConfig
from repro.service.procpool import (
    ProcessJobRunner,
    ProcessWorkerPool,
    WorkerCrashed,
    WorkerJobError,
    WorkerTimeout,
)
from repro.session import ReStoreSession


@dataclass
class ServiceStats:
    """Aggregate counters for one :class:`JobService` lifetime."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: process mode: extra attempts spent replaying crashed workers
    retried: int = 0
    #: process mode: worker exchanges that exceeded exchange_timeout
    #: (the hung worker was killed; counted within ``retried`` too
    #: when the re-dispatch stayed inside the retry budget)
    timeouts: int = 0
    #: repository entries evicted for failing to materialize
    quarantined_entries: int = 0
    #: standby replicas promoted into a fresh coordinator manager
    promotions: int = 0
    #: persistence circuit-breaker trips (journal/snapshot write
    #: failures that degraded to buffered-in-memory mode)
    breaker_trips: int = 0
    #: session id -> jobs completed for that tenant
    per_session: Dict[str, int] = field(default_factory=dict)

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed - self.failed - self.cancelled


class ServiceSession:
    """One tenant's handle on the service.

    Wraps a real :class:`ReStoreSession` (sharing the service's DFS,
    manager, and repository) and turns its synchronous execution into
    pool-scheduled ``submit`` calls.  Submissions from one session are
    serialized FIFO by *ticket*: each submission takes the session's
    next ticket number at enqueue time, and a worker only runs it when
    the session is serving that ticket — so even if two workers
    dequeue one tenant's jobs back to back, they execute in exact
    submission order.  Different sessions interleave on the pool.

    Trade-off: a worker that dequeues a not-yet-eligible ticket parks
    in ``_await_turn``, so one tenant's burst of k submissions can
    idle up to k-1 pool slots until its head job finishes.  Progress
    is still guaranteed (the lowest outstanding ticket is always the
    first dequeued), but pools should be sized above the expected
    per-tenant burst; a per-session holdback queue that only hands
    the executor eligible jobs is the known next refinement.
    """

    def __init__(self, service: "JobService", session: ReStoreSession):
        self._service = service
        self.session = session
        #: per-session FIFO: tickets are taken in submission order and
        #: served strictly in sequence
        self._order = threading.Condition()
        self._next_ticket = 0
        self._now_serving = 0
        #: tickets released out of turn (cancelled before execution);
        #: _now_serving skips over them once their turn comes up
        self._released: set = set()

    def _take_ticket(self) -> int:
        with self._order:
            ticket = self._next_ticket
            self._next_ticket += 1
            return ticket

    def _await_turn(self, ticket: int) -> None:
        with self._order:
            while self._now_serving != ticket:
                self._order.wait()

    def _finish_turn(self, ticket: int) -> None:
        """Release *ticket*.  Only advances ``_now_serving`` when the
        released ticket's turn arrives — a ticket cancelled while an
        earlier one is still running must not unblock later tickets
        early (that would let two of a tenant's jobs run at once)."""
        with self._order:
            self._released.add(ticket)
            while self._now_serving in self._released:
                self._released.discard(self._now_serving)
                self._now_serving += 1
            self._order.notify_all()

    @property
    def session_id(self) -> str:
        return self.session.session_id

    def submit(self, source: str, name: str = "") -> "Future[JobOutcome]":
        """Queue a Pig Latin script; returns a future of its outcome."""
        return self._service._submit(
            self,
            JobRequest.from_source(
                source, session_id=self.session_id, name=name
            ),
        )

    def submit_workflow(self, workflow: Workflow) -> "Future[JobOutcome]":
        """Queue a pre-compiled workflow (benchmark/driver path)."""
        return self._service._submit(
            self,
            JobRequest.from_workflow(workflow, session_id=self.session_id),
        )

    def run(self, source: str, name: str = "") -> JobOutcome:
        """Submit and wait (convenience for interactive tenants)."""
        return self.submit(source, name=name).result()

    def drain_events(self) -> List[ReStoreEvent]:
        """Typed events from this tenant's completed jobs that were
        not already attached to a returned result."""
        return self._service.manager.drain_session(self.session_id)

    def close(self) -> None:
        self.session.close()

    def __repr__(self) -> str:
        return f"ServiceSession({self.session_id!r})"


class JobService:
    """Shared ReStore deployment: one repository, many tenants, a pool.

    Infrastructure parameters mirror :class:`ReStoreSession`; the
    service builds the shared state once and every
    :meth:`open_session` tenant is wired onto it.  Execution knobs
    live in a :class:`~repro.service.api.ServiceConfig` passed as
    ``service=`` — or via the ``max_workers``/``executor``/
    ``optimize``/``default_parallel`` shorthands, which are mutually
    exclusive with it.  With 1 worker (thread or process) the service
    degenerates to a deterministic serial executor.
    """

    def __init__(
        self,
        dfs: Optional[DistributedFileSystem] = None,
        *,
        datanodes: Optional[int] = None,
        cluster: Optional[ClusterConfig] = None,
        cost_model: Optional[CostModel] = None,
        repository: Optional[Repository] = None,
        config: Optional[ReStoreConfig] = None,
        persistence: Optional[PersistenceConfig] = None,
        service: Optional[ServiceConfig] = None,
        max_workers: Optional[int] = None,
        executor: Optional[str] = None,
        optimize: Optional[bool] = None,
        default_parallel: Optional[int] = None,
    ):
        if service is not None:
            shorthands = {
                "max_workers": max_workers,
                "executor": executor,
                "optimize": optimize,
                "default_parallel": default_parallel,
            }
            clashing = sorted(k for k, v in shorthands.items() if v is not None)
            if clashing:
                raise ValueError(
                    "service= already fixes the execution knobs; don't "
                    f"also pass {', '.join(clashing)} (set them on the "
                    "ServiceConfig instead)"
                )
        else:
            service = ServiceConfig(
                executor=executor if executor is not None else "threads",
                max_workers=max_workers if max_workers is not None else 4,
                optimize=optimize if optimize is not None else True,
                default_parallel=(
                    default_parallel if default_parallel is not None else 28
                ),
            )
        service.validate()
        if service.standby and persistence is None:
            raise ValueError(
                "standby=True needs persistence= (the warm replica "
                "tails the persister's journal)"
            )
        self.service_config = service
        self.cluster = cluster or ClusterConfig()
        self.dfs = dfs or DistributedFileSystem(
            n_datanodes=datanodes or self.cluster.n_worker_nodes
        )
        self.cost_model = cost_model or CostModel(cluster=self.cluster)
        self.config = config or ReStoreConfig()
        #: the attached RepositoryPersister when persistence= is given
        self.persister: Optional[RepositoryPersister] = None
        recovered = None
        if persistence is not None:
            if repository is not None:
                raise ValueError(
                    "persistence= recovers its own repository from the "
                    "snapshot/journal; don't also pass repository="
                )
            # recover before the manager exists: the restored
            # repository becomes the shared repository, and the id
            # floors land in the DFS before any tenant's job allocates
            recovered = recover(persistence, self.dfs)
            repository = recovered.repository
        self.manager = ReStoreManager(
            self.dfs,
            cost_model=self.cost_model,
            repository=repository,
            config=self.config,
        )
        if recovered is not None:
            self.manager.kept_paths.update(recovered.kept_paths)
            self.manager.clock = max(self.manager.clock, recovered.clock)
            self.persister = RepositoryPersister(
                self.manager, persistence, recovered=recovered
            )
            announce_scrub_condemnations(self.manager, recovered)
        self._optimize = service.optimize
        self._default_parallel = service.default_parallel
        self._pool: Optional[ProcessWorkerPool] = None
        reserved_paths: tuple = ()
        if service.executor == "processes":
            # persistence= + processes: the persister and any standby
            # stay coordinator-side by construction (recovery happened
            # above, before a single worker spawned) — and when the
            # journal lives on the shared DFS, its paths are reserved
            # so no worker store can ever clobber them
            if persistence is not None and persistence.backend == "dfs":
                reserved_paths = (
                    persistence.snapshot_path,
                    persistence.journal_path,
                    # covers every generation file (prefix-matched:
                    # "<base>.g0", "<base>.g1", ...)
                    persistence.blockstore_base,
                )
            # ship the active fault plan (if a harness installed one)
            # to every worker: workers re-install it keyed by their
            # own ordinal, so worker-targeted rules replay exactly
            active_injector = faults.active()
            self._pool = ProcessWorkerPool(
                service.max_workers,
                {
                    "cluster": self.cluster,
                    "cost_model": self.cost_model,
                    "datanodes": len(self.dfs.datanodes),
                    "optimize": service.optimize,
                    "default_parallel": service.default_parallel,
                    "fast_data_plane": self.config.fast_data_plane,
                    "batch_size": self.config.batch_size,
                    "payload_reuse": self.config.payload_reuse,
                    "faults": (
                        active_injector.plan
                        if active_injector is not None
                        else None
                    ),
                },
            )
        self._runner = ProcessJobRunner(
            self.manager,
            self.dfs,
            reserved_paths=reserved_paths,
            exchange_timeout=service.exchange_timeout,
        )
        self._executor = ThreadPoolExecutor(
            max_workers=service.max_workers,
            thread_name_prefix="restore-worker",
        )
        self._lock = threading.RLock()
        self._sessions: Dict[str, ServiceSession] = {}
        self._session_counter = 0
        self._closed = False
        self.stats = ServiceStats()
        self._persistence_config = persistence
        #: the warm replica (standby=True), swapped on promotion
        self.standby: Optional[StandbyReplica] = None
        self._heartbeat_tick = 0
        self._missed_beats = 0
        self._wire_resilience()
        if service.standby:
            self.standby = StandbyReplica(self.persister)

    def _wire_resilience(self) -> None:
        """Fold resilience events into the service counters (the
        manager bus for quarantines, the persister bus for breaker
        trips); re-run against the fresh manager after a promotion."""

        def _count_quarantine(event) -> None:
            with self._lock:
                self.stats.quarantined_entries += 1

        self.manager.events.subscribe(
            _count_quarantine, event_types=(EntryQuarantined,)
        )
        if self.persister is not None:

            def _count_trip(event) -> None:
                with self._lock:
                    self.stats.breaker_trips += 1

            self.persister.events.subscribe(
                _count_trip, event_types=(PersistenceDegraded,)
            )

    # -- tenants -----------------------------------------------------------------

    @property
    def max_workers(self) -> int:
        return self.service_config.max_workers

    @property
    def executor(self) -> str:
        return self.service_config.executor

    @property
    def repository(self) -> Repository:
        return self.manager.repository

    @property
    def events(self):
        """The shared bus (all tenants' events, in global seq order)."""
        return self.manager.events

    def open_session(self, session_id: Optional[str] = None) -> ServiceSession:
        """Register a tenant; ids default to ``tenant_001``, ...

        The returned handle owns a real :class:`ReStoreSession` that
        shares the service's DFS, manager, and repository.
        """
        with self._lock:
            self._check_open()
            if session_id is None:
                # skip ids already taken by explicit registrations
                # (e.g. a WorkloadDriver's tenant_### names)
                while True:
                    self._session_counter += 1
                    session_id = f"tenant_{self._session_counter:03d}"
                    if session_id not in self._sessions:
                        break
            if session_id in self._sessions:
                raise ValueError(f"session id already open: {session_id}")
            session = ReStoreSession(
                manager=self.manager,
                cluster=self.cluster,
                optimize=self._optimize,
                default_parallel=self._default_parallel,
                session_id=session_id,
            )
            handle = ServiceSession(self, session)
            self._sessions[session_id] = handle
            return handle

    def session(self, session_id: str) -> ServiceSession:
        with self._lock:
            return self._sessions[session_id]

    def sessions(self) -> List[ServiceSession]:
        with self._lock:
            return list(self._sessions.values())

    # -- submission --------------------------------------------------------------

    def submit(
        self, session_id: str, source: str, name: str = ""
    ) -> "Future[JobOutcome]":
        """Queue a script for the named tenant (opened on demand).

        The get-or-open is atomic (the service lock is reentrant), so
        concurrent first submissions for one tenant race safely.
        """
        with self._lock:
            handle = self._sessions.get(session_id)
            if handle is None:
                handle = self.open_session(session_id)
        return handle.submit(source, name=name)

    def execute(self, request: JobRequest) -> "Future[JobOutcome]":
        """The single submission surface: queue a typed request for its
        ``session_id`` tenant (opened on demand)."""
        with self._lock:
            handle = self._sessions.get(request.session_id)
            if handle is None:
                handle = self.open_session(request.session_id or None)
        return self._submit(handle, request)

    def _submit(
        self, handle: ServiceSession, request: JobRequest
    ) -> "Future[JobOutcome]":
        # Ticket-take and enqueue happen under one lock, so the pool's
        # FIFO queue order always agrees with ticket order — the
        # worker holding a session's lowest outstanding ticket was
        # dequeued first and can always make progress (no deadlock).
        with self._lock:
            self._check_open()
            self.stats.submitted += 1
            ticket = handle._take_ticket()
            future = self._executor.submit(
                self._execute, handle, request, ticket
            )

        # A cancelled future never reaches _execute, so its turn must
        # still be released (or the tenant's ticket chain wedges and
        # every later submission blocks a pool worker forever) and its
        # submission accounted, or in_flight overcounts permanently.
        def _on_done(f) -> None:
            if f.cancelled():
                handle._finish_turn(ticket)
                with self._lock:
                    self.stats.cancelled += 1

        future.add_done_callback(_on_done)
        return future

    def _execute(
        self, handle: ServiceSession, request: JobRequest, ticket: int
    ) -> JobOutcome:
        # Per-session FIFO: wait for this submission's turn, so a
        # tenant's own submissions never interleave or reorder (and
        # the event drain attributes decisions unambiguously).
        handle._await_turn(ticket)
        try:
            if self.service_config.executor == "threads":
                outcome = handle.session.execute(request)
            else:
                outcome = self._run_on_workers(handle, request)
        except BaseException:
            with self._lock:
                self.stats.failed += 1
            raise
        finally:
            handle._finish_turn(ticket)
        with self._lock:
            self.stats.completed += 1
            sid = handle.session_id
            self.stats.per_session[sid] = self.stats.per_session.get(sid, 0) + 1
        self._heartbeat()
        return outcome

    def _run_on_workers(
        self, handle: ServiceSession, request: JobRequest
    ) -> JobOutcome:
        """Process mode: drive *request* through the worker pool.

        Script ids are allocated coordinator-side at execution turn —
        the same DFS counter a serial run would consume, in the same
        order — and the whole conversation runs inside the tenant's
        session scope so decisions land in its event bucket.  A
        crashed worker is discarded (its partial decision events with
        it) and the request replays on a fresh worker within the
        configured retry budget.
        """
        sid = handle.session_id
        script_id = (
            self.dfs.next_script_id() if request.source is not None else None
        )
        attempts = 0
        with self.manager.session_scope(sid):
            while True:
                attempts += 1
                worker = self._pool.acquire()
                try:
                    workflow, stats, outputs = self._runner.run_conversation(
                        worker, request, script_id
                    )
                except WorkerCrashed as exc:
                    # WorkerTimeout subclasses WorkerCrashed: a hung
                    # worker is killed and replayed exactly like a
                    # crashed one, it just moves the timeout counter too
                    self._pool.discard(worker)
                    # the crashed attempt's partial decisions must not
                    # leak into the retry's (or a later drain's) log
                    self.manager.drain_session(sid)
                    with self._lock:
                        if isinstance(exc, WorkerTimeout):
                            self.stats.timeouts += 1
                    if attempts > self.service_config.retries:
                        raise
                    with self._lock:
                        self.stats.retried += 1
                    self._backoff(sid, attempts)
                    continue
                except WorkerJobError:
                    # the job failed but the worker completed the error
                    # protocol cleanly — it is healthy and stays pooled
                    self._pool.release(worker)
                    raise
                except BaseException:
                    # coordinator-side failure mid-conversation: the
                    # pipe is desynced and must never re-enter the pool
                    self._pool.discard(worker)
                    raise
                self._pool.release(worker)
                break
            events = self.manager.drain()
        result = PigRunResult(
            workflow=workflow, stats=stats, outputs=outputs, events=events
        )
        handle.session.results.append(result)
        return JobOutcome.from_result(
            result, session_id=sid, executor="processes", attempts=attempts
        )

    # -- self-healing ------------------------------------------------------------

    def _backoff(self, session_id: str, attempt: int) -> None:
        """Sleep before replaying a crashed/hung attempt: exponential
        backoff capped at ``backoff_cap_s``, plus a jitter drawn from a
        generator seeded by (session, attempt) — retries de-synchronize
        across tenants yet replay to identical delays run over run."""
        cfg = self.service_config
        if cfg.backoff_base_s <= 0:
            return
        delay = min(cfg.backoff_base_s * 2 ** (attempt - 1), cfg.backoff_cap_s)
        jitter = random.Random(f"{session_id}:{attempt}").uniform(
            0.0, cfg.backoff_base_s
        )
        time.sleep(min(delay + jitter, cfg.backoff_cap_s))

    def _heartbeat(self) -> None:
        """One coordinator liveness tick, taken after every completed
        job.  The tick routes through the "coordinator.heartbeat"
        injection site; a suppressed beat (the harness's stand-in for a
        dead coordinator) advances the missed-beat counter, and
        ``heartbeat_misses`` consecutive misses trigger the standby
        promotion.  A no-op unless standby mode is on.
        """
        if self.standby is None:
            return
        with self._lock:
            self._heartbeat_tick += 1
            tick = self._heartbeat_tick
        beat = faults.fire("coordinator.heartbeat", data=tick)
        if beat is None:
            with self._lock:
                self._missed_beats += 1
                missed = self._missed_beats
            if missed >= self.service_config.heartbeat_misses:
                self.promote_standby(missed_beats=missed)
            return
        with self._lock:
            self._missed_beats = 0
        if self.persister is not None:
            self.persister.events.emit(CoordinatorHeartbeat(tick=tick))

    def promote_standby(self, *, missed_beats: int = 0):
        """Fail over to the warm replica: the standby's caught-up state
        becomes a fresh manager + persister, and every open tenant
        session is re-wired onto it.

        The promoted state contains every mutation the old coordinator
        ever journaled (``StandbyReplica.promote`` flushes the primary
        and catches up through the final record), so no entry is lost
        and none duplicates — recovery and the replica replay the same
        idempotent log.  Returns the :class:`StandbyPromoted` event, or
        ``None`` when no standby is armed.
        """
        with self._lock:
            standby = self.standby
            if standby is None:
                return None
            self.standby = None  # single promotion in flight
        state = standby.promote()
        standby.close()
        if self.persister is not None:
            self.persister.close()
        manager = ReStoreManager(
            self.dfs,
            cost_model=self.cost_model,
            repository=state.repository,
            config=self.config,
        )
        manager.kept_paths.update(state.kept_paths)
        manager.clock = max(manager.clock, state.clock)
        self.dfs.ensure_id_floor(**state.id_floors)
        persister = None
        if self._persistence_config is not None:
            # the promoted state carries the replica's payload-ref
            # table, so the new persister resumes block-store dedup
            # where the old coordinator left off
            persister = RepositoryPersister(
                manager, self._persistence_config, recovered=state
            )
        with self._lock:
            self.manager = manager
            self.persister = persister
            self._runner.manager = manager
            for handle in self._sessions.values():
                session = handle.session
                session.manager = manager
                session.server.restore = manager
                session._events = manager.events
            self.stats.promotions += 1
            self._missed_beats = 0
        self._wire_resilience()
        # re-arm: the new coordinator gets its own warm replica, and
        # the harness's suppressed heartbeat site comes back to life
        # (the old coordinator entity is gone)
        injector = faults.active()
        if injector is not None:
            injector.revive("coordinator.heartbeat")
        if persister is not None:
            self.standby = StandbyReplica(persister)
        event = StandbyPromoted(
            entries=len(state.repository),
            records_applied=state.journal_records,
            missed_beats=missed_beats,
        )
        if persister is not None:
            persister.events.emit(event)
        return event

    # -- lifecycle ---------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is shut down")

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting submissions.

        With ``wait=True`` (default) every queued and running job
        finishes, then the tenant sessions close and the worker pool
        stops.  With ``wait=False`` queued jobs are cancelled (their
        futures report cancelled — they must not run against closed
        sessions) and every worker process — idle *or* hung mid-job —
        is terminated with a bounded join, each kill surfaced as a
        typed :class:`~repro.events.WorkerKilled` event on the shared
        bus (an in-flight submission then fails with
        :class:`WorkerCrashed` instead of blocking forever behind a
        hung worker).  The DFS, repository, and manager stay readable
        so state can be inspected or persisted afterwards.  A durable
        service flushes its journal and detaches the persister once the
        last job has drained.
        """
        with self._lock:
            self._closed = True
            handles = list(self._sessions.values())
        if not wait and self._pool is not None:
            # kill before joining the executor: a hung worker would
            # otherwise park its submission thread forever
            for name, pid, reason in self._pool.kill_all():
                self.manager.events.emit(
                    WorkerKilled(worker=name, pid=pid, reason=reason)
                )
        self._executor.shutdown(wait=wait, cancel_futures=not wait)
        if wait:
            for handle in handles:
                handle.session.close()
            if self._pool is not None:
                self._pool.stop()
            if self.standby is not None:
                self.standby.close()
            if self.persister is not None:
                self.persister.close()

    def __enter__(self) -> "JobService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=True)

    def __repr__(self) -> str:
        return (
            f"JobService({self.executor}, workers={self.max_workers}, "
            f"sessions={len(self._sessions)}, "
            f"entries={len(self.repository)}, "
            f"completed={self.stats.completed})"
        )
