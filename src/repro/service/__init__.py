"""The shared-service deployment of ReStore (§1, Figure 1).

``JobService`` runs many tenants' jobs against one sharded repository
on either a thread pool or a spawn-based worker-process pool; every
submission travels as a typed, serializable ``JobRequest`` and comes
back as a ``JobOutcome`` (see :mod:`repro.service.api`).
``WorkloadDriver`` is the load/differential harness that drives job
streams through it.
"""

from repro.service.api import JobOutcome, JobRequest, ServiceConfig
from repro.service.driver import (
    DriverResult,
    WorkloadDriver,
    WorkloadItem,
    decision_log,
)
from repro.service.jobservice import JobService, ServiceSession, ServiceStats
from repro.service.procpool import (
    ProcessWorkerPool,
    WorkerCrashed,
    WorkerJobError,
)

__all__ = [
    "DriverResult",
    "JobOutcome",
    "JobRequest",
    "JobService",
    "ProcessWorkerPool",
    "ServiceConfig",
    "ServiceSession",
    "ServiceStats",
    "WorkloadDriver",
    "WorkloadItem",
    "WorkerCrashed",
    "WorkerJobError",
    "decision_log",
]
