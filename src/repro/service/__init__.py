"""The shared-service deployment of ReStore (§1, Figure 1).

``JobService`` runs many tenants' jobs on a worker pool against one
sharded repository; ``WorkloadDriver`` is the load/differential
harness that drives job streams through it.
"""

from repro.service.driver import (
    DriverResult,
    WorkloadDriver,
    WorkloadItem,
    decision_log,
)
from repro.service.jobservice import JobService, ServiceSession, ServiceStats

__all__ = [
    "DriverResult",
    "JobService",
    "ServiceSession",
    "ServiceStats",
    "WorkloadDriver",
    "WorkloadItem",
    "decision_log",
]
