"""WorkloadDriver: push a job stream through a JobService and measure.

The driver is the load harness for the shared-service deployment: it
opens ``n_sessions`` tenant sessions, deals a workload across them
round-robin (tenant i gets jobs i, i+n, i+2n, ...), submits everything
up front, and waits for the futures in submission order.  Besides
throughput (jobs/sec wall-clock over the whole stream) it records a
**decision log** — the legacy-rendered ``RewriteApplied`` /
``JobEliminated`` lines of every job, in submission order — which is
the byte-comparable artifact the differential tests and the
``service_throughput`` benchmark gate use: a 1-worker service run must
produce exactly the serial log.

``run_serial`` provides that baseline: the same round-robin stream
executed synchronously on one :class:`~repro.session.ReStoreSession`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.events import JobEliminated, RewriteApplied
from repro.mapreduce.job import Workflow
from repro.pig.engine import PigRunResult
from repro.service.jobservice import JobService
from repro.session import ReStoreSession

#: a workload item: a Pig Latin source string, or a zero-arg builder
#: returning a fresh Workflow (plans mutate on rewrite, so repeated
#: runs need repeated builds)
WorkloadItem = Union[str, Callable[[], Workflow]]


@dataclass
class DriverResult:
    """What one driven run of a workload stream produced."""

    jobs: int = 0
    elapsed_s: float = 0.0
    workers: int = 1
    #: session id -> jobs completed for that tenant
    per_session: Dict[str, int] = field(default_factory=dict)
    #: per job (submission order): rendered rewrite/elimination lines
    decisions: List[Tuple[str, ...]] = field(default_factory=list)
    #: JobOutcome per driven job (PigRunResult from ``run_serial``)
    results: List = field(default_factory=list)

    @property
    def jobs_per_sec(self) -> float:
        if self.elapsed_s <= 0.0:
            return 0.0
        return self.jobs / self.elapsed_s

    @property
    def jobs_per_sec_per_worker(self) -> float:
        return self.jobs_per_sec / max(1, self.workers)

    def to_dict(self) -> dict:
        return {
            "jobs": self.jobs,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 4),
            "jobs_per_sec": round(self.jobs_per_sec, 2),
            "jobs_per_sec_per_worker": round(self.jobs_per_sec_per_worker, 2),
            "sessions": len(self.per_session),
        }


def decision_log(result) -> Tuple[str, ...]:
    """The byte-comparable reuse decisions of one job's run (accepts
    anything with typed ``events`` — JobOutcome or PigRunResult)."""
    return tuple(
        event.render()
        for event in result.events
        if isinstance(event, (RewriteApplied, JobEliminated))
    )


class WorkloadDriver:
    """Deals a workload across tenant sessions and collects results."""

    def __init__(
        self,
        service: JobService,
        n_sessions: int = 4,
        session_prefix: str = "tenant",
    ):
        if n_sessions < 1:
            raise ValueError("need at least one tenant session")
        self.service = service
        self.sessions = [
            service.open_session(f"{session_prefix}_{i:03d}")
            for i in range(n_sessions)
        ]

    def run(self, items: Sequence[WorkloadItem]) -> DriverResult:
        """Submit every item round-robin, wait in submission order."""
        started = time.perf_counter()
        futures = []
        for index, item in enumerate(items):
            handle = self.sessions[index % len(self.sessions)]
            if callable(item):
                futures.append(handle.submit_workflow(item()))
            else:
                futures.append(handle.submit(item, name=f"job_{index:05d}"))
        results = [future.result() for future in futures]
        elapsed = time.perf_counter() - started
        driven = DriverResult(
            jobs=len(results),
            elapsed_s=elapsed,
            workers=self.service.max_workers,
            per_session=dict(self.service.stats.per_session),
            decisions=[decision_log(result) for result in results],
            results=results,
        )
        return driven

    @staticmethod
    def run_serial(
        session: ReStoreSession,
        items: Sequence[WorkloadItem],
        workers_label: int = 0,
    ) -> DriverResult:
        """The serial oracle: the same stream, one synchronous session.

        ``workers_label`` is recorded as the result's worker count
        (0 = no pool) so reports can tell the baseline apart.
        """
        started = time.perf_counter()
        results: List[PigRunResult] = []
        for index, item in enumerate(items):
            if callable(item):
                results.append(session.run_workflow(item()))
            else:
                results.append(session.run(item, name=f"job_{index:05d}"))
        elapsed = time.perf_counter() - started
        return DriverResult(
            jobs=len(results),
            elapsed_s=elapsed,
            workers=workers_label,
            per_session={session.session_id: len(results)},
            decisions=[decision_log(result) for result in results],
            results=results,
        )

    def close(self) -> None:
        for handle in self.sessions:
            handle.close()


__all__ = [
    "DriverResult",
    "WorkloadDriver",
    "WorkloadItem",
    "decision_log",
]
