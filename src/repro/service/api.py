"""The typed, serializable job-submission API.

Every way of running work through the service layer converges on one
pair of types: a :class:`JobRequest` (what to run — a Pig Latin source
or a pre-compiled workflow, for which tenant, under what name) and a
:class:`JobOutcome` (what happened — the executed workflow, statistics,
parsed outputs, and the typed ReStore events whose rendered
rewrite/elimination lines form the byte-comparable decision log).
``JobService.submit`` / ``submit_workflow`` / ``run`` and
``ReStoreSession.run`` / ``run_workflow`` are all thin wrappers that
build a request and execute it through this surface.

The pair is *serializable*: ``JobRequest.to_wire()`` /
``JobRequest.from_wire()`` round-trip through plain dicts (plans via
the snapshot codec's plan-JSON encoding, which preserves fingerprints),
which is what lets the ``executor="processes"`` worker pool ship a
submission across a ``multiprocessing`` pipe and execute it in another
process while matching, registration, and eviction stay with the
coordinator.

:class:`ServiceConfig` selects the execution substrate: ``"threads"``
(the default — one shared address space, best for matching-heavy
streams where the repository scan dominates) or ``"processes"``
(spawned worker processes that bypass the GIL, best for
execution-heavy streams; see the README architecture section for the
wire contract).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.events import JobEliminated, ReStoreEvent, RewriteApplied
from repro.mapreduce.job import Workflow
from repro.mapreduce.stats import WorkflowStats
from repro.pig.engine import PigRunResult
from repro.relational.tuples import Row

#: valid ``ServiceConfig.executor`` values
EXECUTORS = ("threads", "processes")


@dataclass(frozen=True)
class ServiceConfig:
    """Execution knobs of a :class:`~repro.service.JobService` pool.

    ``executor`` picks the substrate: ``"threads"`` shares one address
    space (no serialization, but the GIL caps aggregate throughput);
    ``"processes"`` spawns worker processes that compile and execute
    plans while the coordinator keeps the DFS, repository, and manager
    — near-linear jobs/sec scaling for execution-heavy streams.
    """

    executor: str = "threads"
    max_workers: int = 4
    #: process mode: how many times a submission is retried on a fresh
    #: worker after its worker process dies mid-job (0 = fail fast)
    retries: int = 1
    optimize: bool = True
    default_parallel: int = 28
    #: process mode: seconds the coordinator waits for any single
    #: worker reply before declaring the worker hung, killing it, and
    #: re-dispatching within the retry budget (None = block forever)
    exchange_timeout: Optional[float] = 30.0
    #: crash/timeout retry backoff: attempt k sleeps
    #: ``min(backoff_base_s * 2**(k-1), backoff_cap_s)`` plus a
    #: deterministic jitter seeded from (session, attempt) — retries
    #: de-synchronize across tenants yet replay identically
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 1.0
    #: standby watchdog: consecutive missed coordinator heartbeats
    #: before the warm replica is promoted into a fresh manager
    heartbeat_misses: int = 3
    #: keep a journal-tailing StandbyReplica warm and promote it
    #: automatically when the heartbeat channel goes silent
    #: (requires persistence=)
    standby: bool = False

    def validate(self) -> "ServiceConfig":
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; "
                f"pick one of {', '.join(EXECUTORS)}"
            )
        if self.max_workers < 1:
            raise ValueError("need at least one worker")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.exchange_timeout is not None and self.exchange_timeout <= 0:
            raise ValueError(
                "exchange_timeout must be positive seconds (or None to "
                "block forever)"
            )
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff seconds must be >= 0")
        if self.heartbeat_misses < 1:
            raise ValueError("heartbeat_misses must be >= 1")
        return self


@dataclass(frozen=True)
class JobRequest:
    """One unit of submittable work, carrying exactly one of
    ``source`` (a Pig Latin script, compiled where it executes) or
    ``workflow`` (a pre-compiled job DAG, the benchmark/driver path).

    Requests are immutable and wire-serializable; the same request
    object is safe to retry on a fresh worker after a crash.
    """

    session_id: str = ""
    name: str = ""
    source: Optional[str] = None
    workflow: Optional[Workflow] = None

    def __post_init__(self):
        if (self.source is None) == (self.workflow is None):
            raise ValueError(
                "a JobRequest carries exactly one of source= or workflow="
            )

    @classmethod
    def from_source(
        cls, source: str, *, session_id: str = "", name: str = ""
    ) -> "JobRequest":
        return cls(session_id=session_id, name=name, source=source)

    @classmethod
    def from_workflow(
        cls, workflow: Workflow, *, session_id: str = "", name: str = ""
    ) -> "JobRequest":
        return cls(
            session_id=session_id,
            name=name or workflow.name,
            workflow=workflow,
        )

    def to_wire(self) -> dict:
        """Plain-dict form for the coordinator→worker pipe (plans via
        the snapshot codec's plan-JSON encoding)."""
        data: dict = {"session_id": self.session_id, "name": self.name}
        if self.source is not None:
            data["source"] = self.source
        else:
            data["workflow"] = self.workflow.to_dict()
        return data

    @classmethod
    def from_wire(cls, data: dict) -> "JobRequest":
        workflow = data.get("workflow")
        return cls(
            session_id=data.get("session_id", ""),
            name=data.get("name", ""),
            source=data.get("source"),
            workflow=Workflow.from_dict(workflow) if workflow is not None else None,
        )


@dataclass
class JobOutcome:
    """Everything one executed submission produced.

    The result surface mirrors :class:`~repro.pig.engine.PigRunResult`
    (``workflow`` / ``stats`` / ``outputs`` / ``events``) plus
    service-level provenance: which executor ran it, how many attempts
    it took (worker-crash retries), and the rendered decision log the
    differential gates compare byte for byte.
    """

    workflow: Workflow
    stats: WorkflowStats
    #: final output path -> parsed rows
    outputs: Dict[str, List[Row]] = field(default_factory=dict)
    #: typed ReStore events drained from the manager for this run
    events: List[ReStoreEvent] = field(default_factory=list)
    session_id: str = ""
    executor: str = "threads"
    #: 1 + worker-crash retries this submission needed (process mode)
    attempts: int = 1
    #: the engine-level result this outcome wraps, when it was produced
    #: in-process (``to_result`` then returns the original object)
    _result: Optional[PigRunResult] = field(
        default=None, repr=False, compare=False
    )

    @property
    def decisions(self) -> Tuple[str, ...]:
        """The byte-comparable reuse decisions of this run."""
        return tuple(
            event.render()
            for event in self.events
            if isinstance(event, (RewriteApplied, JobEliminated))
        )

    @property
    def sim_seconds(self) -> float:
        return self.stats.sim_seconds

    @property
    def sim_minutes(self) -> float:
        return self.stats.sim_seconds / 60.0

    def single_output(self) -> List[Row]:
        if len(self.outputs) != 1:
            raise ValueError(
                f"expected one output, job stored {len(self.outputs)}"
            )
        return next(iter(self.outputs.values()))

    def to_result(self) -> PigRunResult:
        """The engine-level view of this outcome (the original
        :class:`PigRunResult` when the run happened in-process)."""
        if self._result is not None:
            return self._result
        return PigRunResult(
            workflow=self.workflow,
            stats=self.stats,
            outputs=dict(self.outputs),
            events=list(self.events),
        )

    @classmethod
    def from_result(
        cls,
        result: PigRunResult,
        *,
        session_id: str = "",
        executor: str = "threads",
        attempts: int = 1,
    ) -> "JobOutcome":
        return cls(
            workflow=result.workflow,
            stats=result.stats,
            outputs=result.outputs,
            events=result.events,
            session_id=session_id,
            executor=executor,
            attempts=attempts,
            _result=result,
        )


__all__ = [
    "EXECUTORS",
    "JobOutcome",
    "JobRequest",
    "ServiceConfig",
]
