"""NameNode: the DFS namespace (paths -> block lists + metadata).

Modification times use a logical clock (monotone counter) rather than
wall time so tests and experiments are deterministic; ReStore's
eviction Rule 4 ("evict if an input was modified") compares these
logical mtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.dfs.blocks import BlockId, LazyPayload
from repro.dfs.dataset import TypedDataset
from repro.exceptions import FileAlreadyExists, FileNotFoundInDFS


@dataclass
class INode:
    """Metadata for one file."""

    path: str
    block_ids: List[BlockId] = field(default_factory=list)
    size: int = 0
    mtime: int = 0
    #: logical-clock tick at which this inode was created.  The clock
    #: only moves forward and every create draws a fresh tick, so a
    #: deleted-and-recreated path can never alias its predecessor:
    #: identical (path, size, generation) still differ in ``birth``.
    birth: int = 0
    replication: int = 3
    #: bumped on every mutation (append/delete/rename); pinned typed
    #: datasets record the generation they were built at and become
    #: invisible the moment it moves
    generation: int = 0
    #: schema fingerprint -> typed rows parsed from / written as this
    #: file's bytes (the zero-copy data plane's cache)
    datasets: Dict[tuple, TypedDataset] = field(default_factory=dict)
    #: the whole-file payload when the file was written in one shot
    #: (None after appends); copy-style stores whose input rows are
    #: provably this file's unchanged pinned dataset clone it instead
    #: of re-serializing — blocks of both files then share one
    #: (possibly still lazy) byte buffer
    payload: Optional[Union[bytes, LazyPayload]] = None

    def invalidate_datasets(self) -> None:
        self.generation += 1
        self.datasets.clear()


@dataclass(frozen=True)
class FileStatus:
    """Immutable snapshot of file metadata returned by ``stat``."""

    path: str
    size: int
    mtime: int
    block_count: int
    replication: int


@dataclass(frozen=True)
class InputExtent:
    """The identity-and-length fingerprint of one input file.

    Recorded per source dataset when a repository entry registers and
    compared against the live inode at match time (see
    :mod:`repro.core.freshness`): ``birth`` pins the inode identity
    (delete-and-recreate always changes it, because creates draw fresh
    logical-clock ticks), ``size`` detects growth, and the pair
    classifies an input as fresh / appended / rewritten exactly —
    appends are the only in-place mutation the DFS offers, so same
    birth plus same size means byte-identical content.

    ``crc`` is the crc32 of the first ``size`` bytes, recorded when
    available.  Logical clocks are process-local, so ``birth`` cannot
    identify an inode across a persistence restart — a recovered entry
    always sees a foreign birth for a re-materialized input.  The
    checksum is the portable half of the identity: a birth mismatch
    with a matching prefix crc proves the recorded bytes are still an
    exact prefix (fresh or appended); None means "cannot verify" and
    classifies the mismatch as rewritten.
    """

    mtime: int
    generation: int
    birth: int
    size: int
    crc: Optional[int] = None

    def to_list(self) -> list:
        """Compact JSON form (column order is part of the codec)."""
        return [self.mtime, self.generation, self.birth, self.size, self.crc]

    @classmethod
    def from_list(cls, data) -> "InputExtent":
        mtime, generation, birth, size = data[:4]
        crc = data[4] if len(data) > 4 else None
        return cls(
            mtime=int(mtime),
            generation=int(generation),
            birth=int(birth),
            size=int(size),
            crc=None if crc is None else int(crc),
        )


class NameNode:
    """Flat-namespace metadata server (paths are plain strings)."""

    def __init__(self):
        self._inodes: Dict[str, INode] = {}
        self._clock = 0
        self._next_block = 0

    # -- clock / ids -----------------------------------------------------------

    def tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        return self._clock

    def new_block_id(self) -> BlockId:
        self._next_block += 1
        return BlockId(self._next_block)

    # -- namespace operations ----------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def create(self, path: str, replication: int) -> INode:
        if path in self._inodes:
            raise FileAlreadyExists(f"path already exists: {path}")
        tick = self.tick()
        inode = INode(path=path, mtime=tick, birth=tick, replication=replication)
        self._inodes[path] = inode
        return inode

    def lookup(self, path: str) -> INode:
        try:
            return self._inodes[path]
        except KeyError:
            raise FileNotFoundInDFS(f"no such file: {path}") from None

    def remove(self, path: str) -> INode:
        inode = self.lookup(path)
        del self._inodes[path]
        inode.invalidate_datasets()
        self.tick()
        return inode

    def rename(self, src: str, dst: str) -> None:
        if dst in self._inodes:
            raise FileAlreadyExists(f"rename target exists: {dst}")
        inode = self.lookup(src)
        del self._inodes[src]
        inode.path = dst
        inode.mtime = self.tick()
        inode.invalidate_datasets()
        self._inodes[dst] = inode

    def touch(self, path: str) -> None:
        self.lookup(path).mtime = self.tick()

    def stat(self, path: str) -> FileStatus:
        inode = self.lookup(path)
        return FileStatus(
            path=inode.path,
            size=inode.size,
            mtime=inode.mtime,
            block_count=len(inode.block_ids),
            replication=inode.replication,
        )

    def list_paths(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._inodes if p.startswith(prefix))

    @property
    def file_count(self) -> int:
        return len(self._inodes)
