"""NameNode: the DFS namespace (paths -> block lists + metadata).

Modification times use a logical clock (monotone counter) rather than
wall time so tests and experiments are deterministic; ReStore's
eviction Rule 4 ("evict if an input was modified") compares these
logical mtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.dfs.blocks import BlockId, LazyPayload
from repro.dfs.dataset import TypedDataset
from repro.exceptions import FileAlreadyExists, FileNotFoundInDFS


@dataclass
class INode:
    """Metadata for one file."""

    path: str
    block_ids: List[BlockId] = field(default_factory=list)
    size: int = 0
    mtime: int = 0
    replication: int = 3
    #: bumped on every mutation (append/delete/rename); pinned typed
    #: datasets record the generation they were built at and become
    #: invisible the moment it moves
    generation: int = 0
    #: schema fingerprint -> typed rows parsed from / written as this
    #: file's bytes (the zero-copy data plane's cache)
    datasets: Dict[tuple, TypedDataset] = field(default_factory=dict)
    #: the whole-file payload when the file was written in one shot
    #: (None after appends); copy-style stores whose input rows are
    #: provably this file's unchanged pinned dataset clone it instead
    #: of re-serializing — blocks of both files then share one
    #: (possibly still lazy) byte buffer
    payload: Optional[Union[bytes, LazyPayload]] = None

    def invalidate_datasets(self) -> None:
        self.generation += 1
        self.datasets.clear()


@dataclass(frozen=True)
class FileStatus:
    """Immutable snapshot of file metadata returned by ``stat``."""

    path: str
    size: int
    mtime: int
    block_count: int
    replication: int


class NameNode:
    """Flat-namespace metadata server (paths are plain strings)."""

    def __init__(self):
        self._inodes: Dict[str, INode] = {}
        self._clock = 0
        self._next_block = 0

    # -- clock / ids -----------------------------------------------------------

    def tick(self) -> int:
        self._clock += 1
        return self._clock

    @property
    def clock(self) -> int:
        return self._clock

    def new_block_id(self) -> BlockId:
        self._next_block += 1
        return BlockId(self._next_block)

    # -- namespace operations ----------------------------------------------------

    def exists(self, path: str) -> bool:
        return path in self._inodes

    def create(self, path: str, replication: int) -> INode:
        if path in self._inodes:
            raise FileAlreadyExists(f"path already exists: {path}")
        inode = INode(path=path, mtime=self.tick(), replication=replication)
        self._inodes[path] = inode
        return inode

    def lookup(self, path: str) -> INode:
        try:
            return self._inodes[path]
        except KeyError:
            raise FileNotFoundInDFS(f"no such file: {path}") from None

    def remove(self, path: str) -> INode:
        inode = self.lookup(path)
        del self._inodes[path]
        inode.invalidate_datasets()
        self.tick()
        return inode

    def rename(self, src: str, dst: str) -> None:
        if dst in self._inodes:
            raise FileAlreadyExists(f"rename target exists: {dst}")
        inode = self.lookup(src)
        del self._inodes[src]
        inode.path = dst
        inode.mtime = self.tick()
        inode.invalidate_datasets()
        self._inodes[dst] = inode

    def touch(self, path: str) -> None:
        self.lookup(path).mtime = self.tick()

    def stat(self, path: str) -> FileStatus:
        inode = self.lookup(path)
        return FileStatus(
            path=inode.path,
            size=inode.size,
            mtime=inode.mtime,
            block_count=len(inode.block_ids),
            replication=inode.replication,
        )

    def list_paths(self, prefix: str = "") -> List[str]:
        return sorted(p for p in self._inodes if p.startswith(prefix))

    @property
    def file_count(self) -> int:
        return len(self._inodes)
