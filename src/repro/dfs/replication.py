"""Replica placement policies.

HDFS places one replica locally, one on a remote rack, one on another
node of that rack.  We have no racks, so the shipped policies spread
replicas across distinct nodes: round-robin (deterministic, the
default for reproducible experiments) and seeded-random.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.dfs.datanode import DataNode


class PlacementPolicy:
    """Chooses which datanodes receive the replicas of one block."""

    def choose(self, nodes: Sequence[DataNode], replication: int) -> List[DataNode]:
        raise NotImplementedError


class RoundRobinPlacement(PlacementPolicy):
    """Deterministic placement: consecutive nodes, rotating start."""

    def __init__(self):
        self._next = 0

    def choose(self, nodes: Sequence[DataNode], replication: int) -> List[DataNode]:
        count = min(replication, len(nodes))
        chosen = [nodes[(self._next + i) % len(nodes)] for i in range(count)]
        self._next = (self._next + 1) % len(nodes)
        return chosen


class RandomPlacement(PlacementPolicy):
    """Seeded random placement across distinct nodes."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def choose(self, nodes: Sequence[DataNode], replication: int) -> List[DataNode]:
        count = min(replication, len(nodes))
        return self._rng.sample(list(nodes), count)
