"""Block abstraction for the simulated distributed file system.

Files are split into fixed-size blocks exactly like HDFS; the block
size drives how many map tasks a job gets (one per block, as in
Hadoop's default ``FileInputFormat`` behaviour).

Blocks are immutable and **shared**: every replica of a block on every
datanode is the same :class:`Block` instance, so replication never
copies chunk bytes.  A block can also be a lazy *view* into a larger
file payload (:meth:`Block.view`) — the chunk bytes are sliced out
only if something genuinely reads them, which lets the typed-dataset
cache serve reads without ever materializing per-block byte strings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Union


@dataclass(frozen=True)
class BlockId:
    """Globally unique block identifier."""

    value: int

    def __str__(self) -> str:
        return f"blk_{self.value:012d}"


class LazyPayload:
    """A file payload that is built on first byte access.

    The zero-copy write path knows a file's exact byte size without
    serializing it (``canonical_ascii_size``); the text itself is
    only ever needed if something genuinely reads bytes.  All blocks
    of one file share a single LazyPayload, so the payload is built at
    most once no matter which block is touched first.
    """

    __slots__ = ("_build", "_data")

    def __init__(self, build: Callable[[], bytes]):
        self._build: Optional[Callable[[], bytes]] = build
        self._data: Optional[bytes] = None

    def get(self) -> bytes:
        if self._data is None:
            self._data = self._build()
            self._build = None
        return self._data

    @property
    def materialized(self) -> bool:
        return self._data is not None


class Block:
    """One block of file bytes (immutable, replica-shared)."""

    __slots__ = ("block_id", "_size", "_data", "_payload", "_offset")

    def __init__(self, block_id: BlockId, data: bytes):
        self.block_id = block_id
        self._data = data
        self._size = len(data)
        self._payload: Optional[bytes] = None
        self._offset = 0

    @classmethod
    def view(
        cls,
        block_id: BlockId,
        payload: Union[bytes, LazyPayload],
        offset: int,
        size: int,
    ) -> "Block":
        """A block covering ``payload[offset:offset + size]``.

        The slice is deferred until :attr:`data` is touched; a view
        spanning a whole ``bytes`` payload shares it outright and
        never copies.  A :class:`LazyPayload` view additionally defers
        building the payload itself.
        """
        if isinstance(payload, bytes) and offset == 0 and size == len(payload):
            return cls(block_id, payload)
        block = cls.__new__(cls)
        block.block_id = block_id
        block._size = size
        block._data = None
        block._payload = payload
        block._offset = offset
        return block

    @property
    def size(self) -> int:
        return self._size

    @property
    def data(self) -> bytes:
        if self._data is None:
            payload = self._payload
            if isinstance(payload, LazyPayload):
                payload = payload.get()
            if self._offset == 0 and self._size == len(payload):
                self._data = payload
            else:
                self._data = payload[self._offset : self._offset + self._size]
            self._payload = None
        return self._data

    @property
    def materialized(self) -> bool:
        """Whether the chunk bytes have been sliced out of the payload."""
        return self._data is not None

    @property
    def bytes_available(self) -> bool:
        """Whether :attr:`data` can be served without building a still
        deferred :class:`LazyPayload` (metadata-grade probes refuse to
        force a serialization their caller never asked for)."""
        if self._data is not None:
            return True
        payload = self._payload
        return not (isinstance(payload, LazyPayload) and not payload.materialized)

    def __repr__(self) -> str:
        return f"Block({self.block_id}, size={self._size})"


def split_into_blocks(data: bytes, block_size: int) -> Iterator[bytes]:
    """Yield consecutive *block_size* chunks of *data* (last may be short)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if not data:
        return
    for offset in range(0, len(data), block_size):
        yield data[offset : offset + block_size]
