"""Block abstraction for the simulated distributed file system.

Files are split into fixed-size blocks exactly like HDFS; the block
size drives how many map tasks a job gets (one per block, as in
Hadoop's default ``FileInputFormat`` behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BlockId:
    """Globally unique block identifier."""

    value: int

    def __str__(self) -> str:
        return f"blk_{self.value:012d}"


@dataclass
class Block:
    """One block of file bytes."""

    block_id: BlockId
    data: bytes

    @property
    def size(self) -> int:
        return len(self.data)


def split_into_blocks(data: bytes, block_size: int) -> Iterator[bytes]:
    """Yield consecutive *block_size* chunks of *data* (last may be short)."""
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    if not data:
        return
    for offset in range(0, len(data), block_size):
        yield data[offset : offset + block_size]
