"""Simulated distributed file system (HDFS-like)."""

from repro.dfs.blocks import Block, BlockId, split_into_blocks
from repro.dfs.datanode import DataNode
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import FileStatus, INode, NameNode
from repro.dfs.replication import (
    PlacementPolicy,
    RandomPlacement,
    RoundRobinPlacement,
)

__all__ = [
    "Block",
    "BlockId",
    "DataNode",
    "DistributedFileSystem",
    "FileStatus",
    "INode",
    "NameNode",
    "PlacementPolicy",
    "RandomPlacement",
    "RoundRobinPlacement",
    "split_into_blocks",
]
