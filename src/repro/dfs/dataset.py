"""Typed datasets pinned to DFS inodes: the zero-copy data plane.

Every edge of a simulated workflow used to serialize rows to
PigStorage text and re-parse the same text in the next job.  A
:class:`TypedDataset` keeps the parsed ``List[Row]`` attached to the
inode the text was written to, so a downstream job whose load schema
matches skips parsing entirely.  The serialized bytes remain the
source of truth: they are what byte counters account and what genuine
text reads return.

Correctness hinges on one invariant: the cached rows must be exactly
what ``deserialize_rows(serialize_rows(rows), schema)`` would produce,
otherwise the cached and text paths could diverge downstream (an int
stored in a double column re-parses as a float; an empty string
re-parses as null; a string containing a tab changes field splitting).
:func:`rows_are_canonical` checks that invariant; rows that fail are
simply not pinned at write time, and readers fall back to parsing
(whose result is then itself pinned, because a parse is always
canonical with respect to its own text).

The check runs once per stored row on the write hot path, so it is
*compiled*: each schema gets a tuple of per-field closures (cached by
schema identity) doing bare ``type(...) is`` tests — no enum
dispatch, no attribute chasing, roughly the cost of a tuple scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Optional, Tuple

from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import Bag, Row, format_value_size
from repro.relational.types import DataType


@dataclass(eq=False)
class TypedDataset:
    """Parsed rows pinned to one inode, valid for one schema + generation."""

    rows: Tuple[Row, ...]
    schema_fp: tuple
    #: the inode generation this dataset was built at; a bump on
    #: write/append/delete/rename invalidates every pinned dataset
    generation: int

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"TypedDataset(rows={len(self.rows)}, generation={self.generation})"


def rows_are_canonical(rows, schema: Schema) -> bool:
    """True when *rows* survive a PigStorage round trip unchanged.

    ``deserialize_rows(serialize_rows(rows), schema) == rows`` — the
    Hypothesis property in ``tests/test_properties.py`` holds this
    function to that contract.
    """
    return _row_checker(schema)(rows)


def canonical_ascii_size(rows, schema: Schema) -> Optional[int]:
    """One-pass canonicality check + exact byte sizing.

    Returns the exact byte length of ``serialize_rows(rows).encode()``
    when the rows are canonical under *schema* **and** all-ASCII (so
    character counts are byte counts), else None.  This is the write
    hot path: one walk over the data decides pinning eligibility and
    does the byte-size accounting that lets text serialization be
    deferred.
    """
    return _row_sizer(schema)(rows)


@lru_cache(maxsize=512)
def _row_sizer(schema: Schema) -> Callable[[object], Optional[int]]:
    sizers = tuple(_field_sizer(fs) for fs in schema.fields)
    n_fields = len(sizers)
    base = max(0, n_fields - 1) + 1  # tab separators + the newline

    def size_rows(rows) -> Optional[int]:
        total = 0
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return None
            total += base
            for value, sizer in zip(row, sizers):
                if value is None:
                    continue
                field_size = sizer(value)
                if field_size is None:
                    return None
                total += field_size
        return total

    return size_rows


_FieldSizer = Callable[[object], Optional[int]]


def _field_sizer(fs: FieldSchema) -> _FieldSizer:
    if fs.dtype is DataType.BAG:
        return _bag_sizer(fs.inner)
    return _scalar_sizer(fs.dtype, nested=False) or _no_size


def _scalar_sizer(dtype: DataType, nested: bool) -> Optional[_FieldSizer]:
    """A closure sizing one non-null scalar (None = not canonical)."""
    if dtype is DataType.INT or dtype is DataType.LONG:
        return _size_int
    if dtype is DataType.FLOAT or dtype is DataType.DOUBLE:
        return _size_float
    if dtype is DataType.CHARARRAY or dtype is DataType.BYTEARRAY:
        return _size_nested_str if nested else _size_str
    if dtype is DataType.BOOLEAN:
        return _size_bool
    return None


# the canonicality (type) checks live here; the size math itself is
# delegated to tuples.format_value_size, the single mirror of the real
# serialization, so sizing can never drift from what serialize writes


def _size_int(value) -> Optional[int]:
    if type(value) is int:
        return format_value_size(value)
    return None


def _size_float(value) -> Optional[int]:
    if type(value) is float and value == value:
        return format_value_size(value)
    return None


def _size_str(value) -> Optional[int]:
    if type(value) is str and value != "" and value.isascii():
        if "\t" not in value and "\n" not in value:
            return len(value)
    return None


def _size_nested_str(value) -> Optional[int]:
    if type(value) is str and value != "" and value.isascii():
        if not _has_nested_unsafe(value) and value == value.strip():
            return len(value)
    return None


def _size_bool(value) -> Optional[int]:
    if type(value) is bool:
        return format_value_size(value)
    return None


def _no_size(value) -> Optional[int]:
    return None


def _bag_sizer(inner: Optional[Schema]) -> _FieldSizer:
    if inner is None:
        return _no_size
    inner_sizers = []
    for fs in inner.fields:
        sizer = None if fs.dtype.is_nested else _scalar_sizer(fs.dtype, nested=True)
        if sizer is None:
            return _no_size
        inner_sizers.append(sizer)
    inner_sizers = tuple(inner_sizers)
    n_fields = len(inner_sizers)
    tuple_base = 2 + max(0, n_fields - 1)  # parens + commas

    def size_bag(value) -> Optional[int]:
        if not isinstance(value, Bag):
            return None
        rows = value.rows
        total = 2 + max(0, len(rows) - 1)  # braces + commas
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return None
            total += tuple_base
            for v, sizer in zip(row, inner_sizers):
                if v is None:
                    continue
                field_size = sizer(v)
                if field_size is None:
                    return None
                total += field_size
        return total

    return size_bag


_FieldCheck = Callable[[object], bool]


@lru_cache(maxsize=512)
def _row_checker(schema: Schema) -> Callable[[object], bool]:
    checks = tuple(_field_checker(fs) for fs in schema.fields)
    n_fields = len(checks)

    def check_rows(rows) -> bool:
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return False
            for value, check in zip(row, checks):
                if value is not None and not check(value):
                    return False
        return True

    return check_rows


def _field_checker(fs: FieldSchema) -> _FieldCheck:
    if fs.dtype is DataType.BAG:
        return _bag_checker(fs.inner)
    return _scalar_checker(fs.dtype, nested=False) or _never


def _scalar_checker(dtype: DataType, nested: bool) -> Optional[_FieldCheck]:
    """A closure validating one non-null scalar, or None if *dtype*
    can never round-trip (nested types inside nested text)."""
    if dtype is DataType.INT or dtype is DataType.LONG:
        return _check_int
    if dtype is DataType.FLOAT or dtype is DataType.DOUBLE:
        return _check_float
    if dtype is DataType.CHARARRAY or dtype is DataType.BYTEARRAY:
        return _check_nested_str if nested else _check_str
    if dtype is DataType.BOOLEAN:
        return _check_bool
    return None


def _check_int(value) -> bool:
    return type(value) is int


def _check_float(value) -> bool:
    # NaN re-parses to a value that is not == to itself
    return type(value) is float and value == value


def _check_str(value) -> bool:
    # "" re-parses as null; tab/newline change field splitting
    if type(value) is not str or value == "":
        return False
    return "\t" not in value and "\n" not in value


def _check_nested_str(value) -> bool:
    # bag text is split on commas/parens/braces and
    # whitespace-stripped by the nested parser
    return (
        type(value) is str
        and value != ""
        and not _has_nested_unsafe(value)
        and value == value.strip()
    )


def _check_bool(value) -> bool:
    return type(value) is bool


_NESTED_UNSAFE = ("\t", "\n", ",", "(", ")", "{", "}")


def _has_nested_unsafe(value: str) -> bool:
    for ch in _NESTED_UNSAFE:
        if ch in value:
            return True
    return False


def _never(value) -> bool:
    return False


def _bag_checker(inner: Optional[Schema]) -> _FieldCheck:
    if inner is None:
        return _never  # untyped bags re-parse as raw string tuples
    inner_checks = []
    for fs in inner.fields:
        check = None if fs.dtype.is_nested else _scalar_checker(fs.dtype, nested=True)
        if check is None:
            return _never  # doubly nested text does not round-trip
        inner_checks.append(check)
    inner_checks = tuple(inner_checks)
    n_fields = len(inner_checks)

    def check_bag(value) -> bool:
        if not isinstance(value, Bag):
            return False
        for row in value.rows:
            if type(row) is not tuple or len(row) != n_fields:
                return False
            for v, check in zip(row, inner_checks):
                if v is not None and not check(v):
                    return False
        return True

    return check_bag
