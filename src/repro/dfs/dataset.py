"""Typed datasets pinned to DFS inodes: the zero-copy data plane.

Every edge of a simulated workflow used to serialize rows to
PigStorage text and re-parse the same text in the next job.  A
:class:`TypedDataset` keeps the parsed ``List[Row]`` attached to the
inode the text was written to, so a downstream job whose load schema
matches skips parsing entirely.  The serialized bytes remain the
source of truth: they are what byte counters account and what genuine
text reads return.

Correctness hinges on one invariant: the cached rows must be exactly
what ``deserialize_rows(serialize_rows(rows), schema)`` would produce,
otherwise the cached and text paths could diverge downstream (an int
stored in a double column re-parses as a float; an empty string
re-parses as null; a string containing a tab changes field splitting).
:func:`rows_are_canonical` checks that invariant; rows that fail are
simply not pinned at write time, and readers fall back to parsing
(whose result is then itself pinned, because a parse is always
canonical with respect to its own text).

The check runs once per stored row on the write hot path, so it is
*compiled*: each schema gets a tuple of per-field closures (cached by
schema identity) doing bare ``type(...) is`` tests — no enum
dispatch, no attribute chasing, roughly the cost of a tuple scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import chain
from math import isnan
from operator import itemgetter
from typing import Callable, Optional, Tuple

from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import Bag, Row, serialized_row_size
from repro.relational.types import DataType


@dataclass(eq=False)
class TypedDataset:
    """Parsed rows pinned to one inode, valid for one schema + generation."""

    rows: Tuple[Row, ...]
    schema_fp: tuple
    #: the inode generation this dataset was built at; a bump on
    #: write/append/delete/rename invalidates every pinned dataset
    generation: int
    #: True when the file's payload bytes are exactly
    #: ``serialize_rows(rows)`` (writer-pinned datasets, and clones of
    #: them).  Parse-filled datasets are *canonical* — they round-trip
    #: — but their serialization may still differ from the original
    #: text (``"03"`` parses to ``3``, which renders as ``"3"``), so
    #: only exact datasets are eligible for serialized-payload reuse.
    exact: bool = False
    #: True when every row was proven canonical **and all-ASCII** at
    #: pin time, i.e. each row's serialized byte length equals its
    #: :func:`~repro.relational.tuples.serialized_row_size`.  A store
    #: whose input rows are an identity-subset of such a dataset (the
    #: shape of filtered side stores) can be sized without re-checking
    #: canonicality — see ``write_rows``'s subset fast path.
    ascii_sized: bool = False
    #: lazily built ``frozenset(map(id, rows))`` for subset proofs;
    #: valid for the dataset's lifetime because ``rows`` keeps every
    #: member alive (a live id can only name the original object)
    _row_ids: Optional[frozenset] = None
    #: lazily built ``id(row) -> serialized_row_size(row)``; rows flow
    #: through many consumers by identity (filters, tees, shuffles),
    #: so each row's serialized width is computed once per dataset
    #: lifetime instead of once per chunk per job
    _size_memo: Optional[dict] = None

    def row_ids(self) -> frozenset:
        if self._row_ids is None:
            self._row_ids = frozenset(map(id, self.rows))
        return self._row_ids

    def size_memo(self) -> dict:
        if self._size_memo is None:
            rows = self.rows
            self._size_memo = dict(
                zip(map(id, rows), map(serialized_row_size, rows))
            )
        return self._size_memo

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"TypedDataset(rows={len(self.rows)}, generation={self.generation})"


def rows_are_canonical(rows, schema: Schema) -> bool:
    """True when *rows* survive a PigStorage round trip unchanged.

    ``deserialize_rows(serialize_rows(rows), schema) == rows`` — the
    Hypothesis property in ``tests/test_properties.py`` holds this
    function to that contract.
    """
    return _row_checker(schema)(rows)


#: row count from which the columnar sizer amortizes its C-pass setup
_COLUMNAR_MIN_ROWS = 64


def canonical_ascii_size(
    rows, schema: Schema, columnar: bool = True
) -> Optional[int]:
    """One-pass canonicality check + exact byte sizing.

    Returns the exact byte length of ``serialize_rows(rows).encode()``
    when the rows are canonical under *schema* **and** all-ASCII (so
    character counts are byte counts), else None.  This is the write
    hot path: one walk over the data decides pinning eligibility and
    does the byte-size accounting that lets text serialization be
    deferred.

    With ``columnar`` (the default; the batched data plane's write
    path) large writes check and size each field as a *column* through
    C-level passes (``map``/``set``/``sum`` plus substring scans over
    one joined text per string column), with bag fields flattened
    across all rows so even short bags amortize — the remaining
    per-value Python work is ``str``/``repr`` on numeric columns,
    which serialization would pay anyway.  Small writes, shapes the
    columnar pass cannot prove (exotic types, Bag subclasses), and
    ``columnar=False`` callers (the per-row fast plane, which keeps
    PR-4 behaviour as the batching ablation baseline) use the compiled
    per-row closures; the two paths are value-identical.
    """
    if (
        columnar
        and isinstance(rows, (list, tuple))
        and len(rows) >= _COLUMNAR_MIN_ROWS
    ):
        sizer = _columnar_sizer(schema)
        if sizer is not None:
            total = sizer(rows)
            if total is not _FALLBACK:
                return total
    return _row_sizer(schema)(rows)


@lru_cache(maxsize=512)
def _row_sizer(schema: Schema) -> Callable[[object], Optional[int]]:
    sizers = tuple(_field_sizer(fs) for fs in schema.fields)
    n_fields = len(sizers)
    base = max(0, n_fields - 1) + 1  # tab separators + the newline

    def size_rows(rows) -> Optional[int]:
        total = 0
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return None
            total += base
            for value, sizer in zip(row, sizers):
                if value is None:
                    continue
                field_size = sizer(value)
                if field_size is None:
                    return None
                total += field_size
        return total

    return size_rows


_FieldSizer = Callable[[object], Optional[int]]


def _field_sizer(fs: FieldSchema) -> _FieldSizer:
    if fs.dtype is DataType.BAG:
        return _bag_sizer(fs.inner)
    return _scalar_sizer(fs.dtype, nested=False) or _no_size


def _scalar_sizer(dtype: DataType, nested: bool) -> Optional[_FieldSizer]:
    """A closure sizing one non-null scalar (None = not canonical)."""
    if dtype is DataType.INT or dtype is DataType.LONG:
        return _size_int
    if dtype is DataType.FLOAT or dtype is DataType.DOUBLE:
        return _size_float
    if dtype is DataType.CHARARRAY or dtype is DataType.BYTEARRAY:
        return _size_nested_str if nested else _size_str
    if dtype is DataType.BOOLEAN:
        return _size_bool
    return None


# the scalar size math is inlined (len(str(v)) / len(repr(v)) / 4|5)
# rather than delegated to tuples.format_value_size: these closures
# run once per stored field and the extra dispatch hop showed up as
# ~15% of write time in the exec_sim profile.  Each sizer must stay
# value-identical to format_value_size for its type — the Hypothesis
# round-trip property and the counter-parity tests pin that down.


def _size_int(value) -> Optional[int]:
    if type(value) is int:
        return len(str(value))
    return None


def _size_float(value) -> Optional[int]:
    if type(value) is float and value == value:
        return len(repr(value))
    return None


def _size_str(value) -> Optional[int]:
    if type(value) is str and value != "" and value.isascii():
        if "\t" not in value and "\n" not in value:
            return len(value)
    return None


def _size_nested_str(value) -> Optional[int]:
    if (
        type(value) is str
        and value != ""
        and value.isascii()
        and not _has_nested_unsafe(value)
        # strip-stability without allocating the stripped copy: the
        # value is non-empty ASCII, so whitespace at either end is
        # exactly what .strip() would remove
        and not value[0].isspace()
        and not value[-1].isspace()
    ):
        return len(value)
    return None


def _size_bool(value) -> Optional[int]:
    if type(value) is bool:
        return 4 if value else 5
    return None


def _no_size(value) -> Optional[int]:
    return None


def _bag_sizer(inner: Optional[Schema]) -> _FieldSizer:
    if inner is None:
        return _no_size
    inner_sizers = []
    for fs in inner.fields:
        sizer = None if fs.dtype.is_nested else _scalar_sizer(fs.dtype, nested=True)
        if sizer is None:
            return _no_size
        inner_sizers.append(sizer)
    inner_sizers = tuple(inner_sizers)
    n_fields = len(inner_sizers)
    tuple_base = 2 + max(0, n_fields - 1)  # parens + commas

    def size_bag(value) -> Optional[int]:
        if not isinstance(value, Bag):
            return None
        rows = value.rows
        total = 2 + max(0, len(rows) - 1)  # braces + commas
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return None
            total += tuple_base
            for v, sizer in zip(row, inner_sizers):
                if v is None:
                    continue
                field_size = sizer(v)
                if field_size is None:
                    return None
                total += field_size
        return total

    return size_bag


# -- columnar sizing ------------------------------------------------------------
#
# Large writes check and size each field as a *column*: C-level
# map/set/sum passes plus substring scans over one joined text per
# string column, with bag fields flattened across every row of the
# write so even short bags amortize the setup.  Results are
# value-identical to the per-row closures; the one shape the column
# passes cannot decide exactly — Bag *subclasses*, which the closures
# accept via isinstance but type-multiset tests cannot prove — returns
# the _FALLBACK sentinel and the caller reruns the closure path.

#: columnar pass cannot decide; rerun the compiled per-row closures
_FALLBACK = object()

_NoneType = type(None)
#: ASCII whitespace that str.strip() removes, minus the tab/newline
#: characters the unsafe-character scan has already rejected — note
#: the file/group/record/unit separators \x1c-\x1f are whitespace to
#: str.strip()/isspace() too
_ASCII_WS = " \r\x0b\x0c\x1c\x1d\x1e\x1f"


@lru_cache(maxsize=512)
def _columnar_sizer(schema: Schema) -> Optional[Callable]:
    """A whole-write columnar sizer, or None if *schema* has a shape
    (nested-in-nested, untyped bags, exotic scalar types) that only
    the closure path handles."""
    handlers = []
    for fs in schema.fields:
        if fs.dtype is DataType.BAG:
            handler = _columnar_bag_handler(fs.inner)
        else:
            handler = _columnar_scalar_handler(fs.dtype, nested=False)
        if handler is None:
            return None
        handlers.append(handler)
    handlers = tuple(handlers)
    n_fields = len(handlers)
    base = max(0, n_fields - 1) + 1  # tab separators + the newline

    def size_columns(rows):
        if set(map(type, rows)) != {tuple} or set(map(len, rows)) != {n_fields}:
            return None  # exact: the closures demand n-field tuples
        total = len(rows) * base
        for index, handler in enumerate(handlers):
            part = handler(list(map(itemgetter(index), rows)))
            if part is None or part is _FALLBACK:
                return part
            total += part
        return total

    return size_columns


def _split_nulls(col):
    """(non-null values, their exact-type set); nulls contribute 0."""
    types = set(map(type, col))
    if _NoneType in types:
        types.discard(_NoneType)
        col = [value for value in col if value is not None]
    return col, types


def _col_int(col):
    col, types = _split_nulls(col)
    if not types:
        return 0
    if types != {int}:
        return None
    return sum(map(len, map(str, col)))


def _col_float(col):
    col, types = _split_nulls(col)
    if not types:
        return 0
    if types != {float}:
        return None
    if any(map(isnan, col)):
        return None  # NaN re-parses to a value that is not == itself
    return sum(map(len, map(repr, col)))


def _col_bool(col):
    col, types = _split_nulls(col)
    if not types:
        return 0
    if types != {bool}:
        return None
    return 5 * len(col) - sum(col)  # true -> 4 bytes, false -> 5


def _col_str(col):
    col, types = _split_nulls(col)
    if not types:
        return 0
    if types != {str}:
        return None
    if "" in col:
        return None  # "" re-parses as null
    joined = "".join(col)
    if not joined.isascii():
        return None
    if "\t" in joined or "\n" in joined:
        return None  # would change field splitting
    return len(joined)


def _col_nested_str(col):
    col, types = _split_nulls(col)
    if not types:
        return 0
    if types != {str}:
        return None
    if "" in col:
        return None
    joined = "".join(col)
    if not joined.isascii():
        return None
    for ch in _NESTED_UNSAFE:
        if ch in joined:
            return None
    # strip-stability is a per-value *boundary* property; after the
    # comma ban above a ","-joined text has unambiguous boundaries,
    # so whitespace adjacent to an edge or a separator is exactly a
    # value that str.strip() would change
    bounded = ",".join(col)
    if bounded[0] in _ASCII_WS or bounded[-1] in _ASCII_WS:
        return None
    for ch in _ASCII_WS:
        if ch + "," in bounded or "," + ch in bounded:
            return None
    return len(joined)


def _columnar_scalar_handler(dtype: DataType, nested: bool) -> Optional[Callable]:
    if dtype is DataType.INT or dtype is DataType.LONG:
        return _col_int
    if dtype is DataType.FLOAT or dtype is DataType.DOUBLE:
        return _col_float
    if dtype is DataType.CHARARRAY or dtype is DataType.BYTEARRAY:
        return _col_nested_str if nested else _col_str
    if dtype is DataType.BOOLEAN:
        return _col_bool
    return None


def _columnar_bag_handler(inner: Optional[Schema]) -> Optional[Callable]:
    if inner is None:
        return None  # untyped bags never round-trip: closure path
    field_handlers = []
    for fs in inner.fields:
        if fs.dtype.is_nested:
            return None  # doubly nested text does not round-trip
        handler = _columnar_scalar_handler(fs.dtype, nested=True)
        if handler is None:
            return None
        field_handlers.append(handler)
    field_handlers = tuple(field_handlers)
    n_fields = len(field_handlers)
    tuple_base = 2 + max(0, n_fields - 1)  # parens + commas

    def size_bag_column(col):
        col, types = _split_nulls(col)
        if not types:
            return 0
        if types != {Bag}:
            if all(issubclass(t, Bag) for t in types):
                return _FALLBACK  # the closures accept Bag subclasses
            return None
        row_lists = [bag.rows for bag in col]
        lens = list(map(len, row_lists))
        n_tuples = sum(lens)
        # per bag: braces + (len - 1) commas when non-empty
        total = 2 * len(lens) + n_tuples - sum(map(bool, lens))
        all_rows = list(chain.from_iterable(row_lists))
        if not all_rows:
            return total
        if (
            set(map(type, all_rows)) != {tuple}
            or set(map(len, all_rows)) != {n_fields}
        ):
            return None
        total += n_tuples * tuple_base
        for index, handler in enumerate(field_handlers):
            part = handler(list(map(itemgetter(index), all_rows)))
            if part is None:
                return None
            total += part
        return total

    return size_bag_column


_FieldCheck = Callable[[object], bool]


@lru_cache(maxsize=512)
def _row_checker(schema: Schema) -> Callable[[object], bool]:
    checks = tuple(_field_checker(fs) for fs in schema.fields)
    n_fields = len(checks)

    def check_rows(rows) -> bool:
        for row in rows:
            if type(row) is not tuple or len(row) != n_fields:
                return False
            for value, check in zip(row, checks):
                if value is not None and not check(value):
                    return False
        return True

    return check_rows


def _field_checker(fs: FieldSchema) -> _FieldCheck:
    if fs.dtype is DataType.BAG:
        return _bag_checker(fs.inner)
    return _scalar_checker(fs.dtype, nested=False) or _never


def _scalar_checker(dtype: DataType, nested: bool) -> Optional[_FieldCheck]:
    """A closure validating one non-null scalar, or None if *dtype*
    can never round-trip (nested types inside nested text)."""
    if dtype is DataType.INT or dtype is DataType.LONG:
        return _check_int
    if dtype is DataType.FLOAT or dtype is DataType.DOUBLE:
        return _check_float
    if dtype is DataType.CHARARRAY or dtype is DataType.BYTEARRAY:
        return _check_nested_str if nested else _check_str
    if dtype is DataType.BOOLEAN:
        return _check_bool
    return None


def _check_int(value) -> bool:
    return type(value) is int


def _check_float(value) -> bool:
    # NaN re-parses to a value that is not == to itself
    return type(value) is float and value == value


def _check_str(value) -> bool:
    # "" re-parses as null; tab/newline change field splitting
    if type(value) is not str or value == "":
        return False
    return "\t" not in value and "\n" not in value


def _check_nested_str(value) -> bool:
    # bag text is split on commas/parens/braces and
    # whitespace-stripped by the nested parser
    return (
        type(value) is str
        and value != ""
        and not _has_nested_unsafe(value)
        and value == value.strip()
    )


def _check_bool(value) -> bool:
    return type(value) is bool


_NESTED_UNSAFE = ("\t", "\n", ",", "(", ")", "{", "}")


def _has_nested_unsafe(value: str) -> bool:
    for ch in _NESTED_UNSAFE:
        if ch in value:
            return True
    return False


def _never(value) -> bool:
    return False


def _bag_checker(inner: Optional[Schema]) -> _FieldCheck:
    if inner is None:
        return _never  # untyped bags re-parse as raw string tuples
    inner_checks = []
    for fs in inner.fields:
        check = None if fs.dtype.is_nested else _scalar_checker(fs.dtype, nested=True)
        if check is None:
            return _never  # doubly nested text does not round-trip
        inner_checks.append(check)
    inner_checks = tuple(inner_checks)
    n_fields = len(inner_checks)

    def check_bag(value) -> bool:
        if not isinstance(value, Bag):
            return False
        for row in value.rows:
            if type(row) is not tuple or len(row) != n_fields:
                return False
            for v, check in zip(row, inner_checks):
                if v is not None and not check(v):
                    return False
        return True

    return check_bag
