"""DataNode: stores block replicas and tracks per-node usage."""

from __future__ import annotations

from typing import Dict

from repro.dfs.blocks import Block, BlockId
from repro.exceptions import DFSError


class DataNode:
    """One storage node holding block replicas.

    A capacity can be configured (the paper's nodes had 65 GB disks);
    exceeding it raises, which the experiments use to show repository
    eviction pressure.
    """

    def __init__(self, node_id: int, capacity_bytes: int | None = None):
        self.node_id = node_id
        self.capacity_bytes = capacity_bytes
        self._blocks: Dict[BlockId, Block] = {}
        self.bytes_written = 0
        self.bytes_read = 0

    @property
    def used_bytes(self) -> int:
        return sum(b.size for b in self._blocks.values())

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    def has_block(self, block_id: BlockId) -> bool:
        return block_id in self._blocks

    def store_block(self, block: Block) -> None:
        if self.capacity_bytes is not None:
            if self.used_bytes + block.size > self.capacity_bytes:
                raise DFSError(
                    f"datanode {self.node_id} out of space "
                    f"({self.used_bytes + block.size} > {self.capacity_bytes})"
                )
        self._blocks[block.block_id] = block
        self.bytes_written += block.size

    def read_block(self, block_id: BlockId) -> bytes:
        block = self.get_block(block_id)
        self.bytes_read += block.size
        return block.data

    def get_block(self, block_id: BlockId) -> Block:
        """The replica-shared :class:`Block` object itself (no counters)."""
        try:
            return self._blocks[block_id]
        except KeyError:
            raise DFSError(
                f"datanode {self.node_id} does not hold {block_id}"
            ) from None

    def charge_read(self, block_id: BlockId) -> int:
        """Account a read served from the typed-dataset cache.

        Counters move exactly as :meth:`read_block` would move them,
        but the block bytes stay unmaterialized — the zero-copy path
        must stay value-identical to the text path in every counter.
        """
        block = self.get_block(block_id)
        self.bytes_read += block.size
        return block.size

    def delete_block(self, block_id: BlockId) -> None:
        self._blocks.pop(block_id, None)

    def __repr__(self) -> str:
        return (
            f"DataNode(id={self.node_id}, blocks={self.block_count}, "
            f"used={self.used_bytes})"
        )
