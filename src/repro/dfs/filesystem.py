"""The DFS facade used by every other subsystem.

``DistributedFileSystem`` glues together the NameNode, a set of
DataNodes and a replica placement policy, and exposes the small API
surface the MapReduce engine needs: whole-file reads/writes, appends,
deletes, renames, listing and stat.  It also accumulates the global
I/O counters (bytes logically read/written, replica bytes) consumed by
the cost model.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, List, Optional, Tuple

from repro.dfs.blocks import Block, LazyPayload
from repro.dfs.datanode import DataNode
from repro.dfs.dataset import TypedDataset, canonical_ascii_size, rows_are_canonical
from repro.dfs.namenode import FileStatus, INode, NameNode
from repro.dfs.replication import PlacementPolicy, RoundRobinPlacement
from repro.exceptions import DFSError, FileNotFoundInDFS
from repro.relational.schema import Schema
from repro.relational.tuples import (
    Row,
    deserialize_rows,
    serialize_rows,
    snapshot_rows,
)


class DistributedFileSystem:
    """An in-memory HDFS: replicated blocks over simulated datanodes.

    Parameters mirror the paper's cluster: 14 datanodes, 3-way
    replication.  ``block_size`` defaults to 128 KiB so that the small
    generated data sets still span multiple blocks (and therefore
    multiple simulated map tasks).
    """

    def __init__(
        self,
        n_datanodes: int = 14,
        replication: int = 3,
        block_size: int = 128 * 1024,
        node_capacity_bytes: Optional[int] = None,
        placement: Optional[PlacementPolicy] = None,
    ):
        if n_datanodes < 1:
            raise ValueError("need at least one datanode")
        self.namenode = NameNode()
        self.datanodes: List[DataNode] = [
            DataNode(i, node_capacity_bytes) for i in range(n_datanodes)
        ]
        self.replication = replication
        self.block_size = block_size
        self.placement = placement or RoundRobinPlacement()
        # Logical (single-copy) counters, used by the cost model.
        self.bytes_read = 0
        self.bytes_written = 0
        # Physical counter including replication fan-out.
        self.replica_bytes_written = 0
        self._script_ids = itertools.count(1)
        self._subjob_ids = itertools.count(1)
        #: one filesystem is shared by every concurrent service worker;
        #: this lock makes namespace mutations (block allocation, the
        #: mtime clock, delete-if-exists) atomic — without it two
        #: writers can be handed the same block id and silently read
        #: each other's bytes back
        self._lock = threading.RLock()

    def next_subjob_id(self) -> int:
        """Allocate a ReStore sub-job output number.

        Scoped like :meth:`next_script_id`: deterministic per fresh
        filesystem (a serial rerun of the same stream reproduces the
        same ``restore/subjob/sj...`` paths byte for byte), and unique
        across managers sharing one DFS so kept sub-job outputs can
        never overwrite each other.
        """
        return next(self._subjob_ids)

    def next_script_id(self) -> int:
        """Allocate a script id unique within this filesystem.

        Temp-output prefixes (``tmp/s<id>``) must never collide between
        engines sharing one DFS — a second engine overwriting another's
        kept temp file silently corrupts the ReStore repository — so
        the filesystem, the shared resource, hands out the numbering.
        A fresh DFS restarts at 1, keeping paths deterministic per
        test/session.
        """
        return next(self._script_ids)

    # -- writes -------------------------------------------------------------------

    def write_file(
        self, path: str, data: bytes | str, overwrite: bool = False
    ) -> FileStatus:
        """Create *path* with *data*; replicates each block."""
        payload = data.encode() if isinstance(data, str) else data
        with self._lock:
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            self._append_blocks(inode, payload)
            return self.namenode.stat(path)

    def append(self, path: str, data: bytes | str) -> FileStatus:
        """Append to an existing file (creates it if missing)."""
        payload = data.encode() if isinstance(data, str) else data
        with self._lock:
            if not self.namenode.exists(path):
                return self.write_file(path, payload)
            inode = self.namenode.lookup(path)
            self._append_blocks(inode, payload)
            inode.invalidate_datasets()
            self.namenode.touch(path)
            return self.namenode.stat(path)

    def write_lines(
        self, path: str, lines: Iterable[str], overwrite: bool = False
    ) -> FileStatus:
        text = "".join(line if line.endswith("\n") else line + "\n" for line in lines)
        return self.write_file(path, text, overwrite=overwrite)

    def write_rows(
        self,
        path: str,
        rows: Iterable[Row],
        schema: Optional[Schema] = None,
        overwrite: bool = False,
    ) -> FileStatus:
        """Create *path* from typed rows (the zero-copy write path).

        The PigStorage serialization stays the source of truth — it is
        what the byte counters account and what :meth:`read_file`
        returns — but when the rows round-trip exactly under *schema*
        they are additionally pinned to the inode, so a
        :meth:`read_rows` with a matching schema skips parsing and the
        block bytes are never even sliced out of the payload.
        """
        # snapshot at call time, like write_file snapshots bytes: a
        # caller mutating a Bag after this returns must not corrupt
        # the deferred serialization or the pinned dataset
        rows = snapshot_rows(rows)
        payload: bytes | LazyPayload
        # one pass decides pinning eligibility and sizes the bytes
        total_bytes = (
            canonical_ascii_size(rows, schema) if schema is not None else None
        )
        if total_bytes is None:
            # non-canonical or non-ASCII rows: readers will genuinely
            # parse the text, so build it up front (rare path: the
            # canonical check runs again, off the hot path)
            canonical = schema is not None and rows_are_canonical(rows, schema)
            data = serialize_rows(rows).encode()
            payload, total_bytes = data, len(data)
        else:
            # byte-size accounting is exact without serializing; the
            # text is built only if something reads actual bytes
            canonical = True
            payload = LazyPayload(lambda: serialize_rows(rows).encode())
        with self._lock:
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            self._append_blocks(inode, payload, total_bytes)
            if canonical:
                fingerprint = schema.fingerprint()
                inode.datasets[fingerprint] = TypedDataset(
                    rows, fingerprint, inode.generation
                )
            return self.namenode.stat(path)

    def _append_blocks(
        self,
        inode,
        payload: bytes | LazyPayload,
        total_bytes: Optional[int] = None,
    ) -> None:
        if total_bytes is None:
            total_bytes = len(payload)
        block_size = self.block_size
        for offset in range(0, total_bytes, block_size):
            chunk_len = min(block_size, total_bytes - offset)
            block_id = self.namenode.new_block_id()
            # one immutable block shared by every replica; the chunk
            # bytes are a lazy view, materialized only if actually read
            block = Block.view(block_id, payload, offset, chunk_len)
            for node in self.placement.choose(self.datanodes, inode.replication):
                node.store_block(block)
                self.replica_bytes_written += block.size
            inode.block_ids.append(block_id)
            inode.size += block.size
        self.bytes_written += total_bytes

    # -- reads ----------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        with self._lock:
            inode = self.namenode.lookup(path)
            chunks = []
            for block_id in inode.block_ids:
                node = self._locate(block_id)
                chunks.append(node.read_block(block_id))
            data = b"".join(chunks)
            self.bytes_read += len(data)
            return data

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode()

    def read_rows(self, path: str, schema: Schema) -> Tuple[Row, ...]:
        """Read *path* as typed rows (the zero-copy read path).

        A pinned dataset with a matching schema fingerprint and a
        current generation is returned as-is — no bytes are
        materialized, no text is parsed, yet every read counter
        (logical and per-datanode) moves exactly as a text read would
        move it.  On a miss the text is parsed once and the result is
        pinned, so the next matching reader hits.  The returned tuple
        is shared: treat it as immutable.
        """
        fingerprint = schema.fingerprint()
        with self._lock:
            inode = self.namenode.lookup(path)
            dataset = inode.datasets.get(fingerprint)
            if dataset is not None and dataset.generation == inode.generation:
                self._charge_cached_read(inode)
                return dataset.rows
            chunks = []
            for block_id in inode.block_ids:
                node = self._locate(block_id)
                chunks.append(node.read_block(block_id))
            data = b"".join(chunks)
            self.bytes_read += len(data)
            generation = inode.generation
        # parse outside the lock: a cold read of a large file must not
        # stall every other worker sharing this filesystem
        rows = tuple(deserialize_rows(data.decode(), schema))
        with self._lock:
            # a parse is canonical with respect to its own text, so the
            # fill needs no round-trip check — but pin only if the file
            # is still the same inode at the same generation
            if self.namenode.exists(path):
                current = self.namenode.lookup(path)
                if current is inode and current.generation == generation:
                    inode.datasets[fingerprint] = TypedDataset(
                        rows, fingerprint, generation
                    )
        return rows

    def _charge_cached_read(self, inode: INode) -> None:
        """Move read counters for a cache hit exactly like a text read."""
        for block_id in inode.block_ids:
            self._locate(block_id).charge_read(block_id)
        self.bytes_read += inode.size

    def read_lines(self, path: str) -> List[str]:
        text = self.read_text(path)
        return [line for line in text.splitlines() if line != ""]

    def _locate(self, block_id) -> DataNode:
        for node in self.datanodes:
            if node.has_block(block_id):
                return node
        raise FileNotFoundInDFS(f"no replica found for {block_id}")

    # -- namespace ---------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        with self._lock:
            inode = self.namenode.remove(path)
            for block_id in inode.block_ids:
                for node in self.datanodes:
                    node.delete_block(block_id)

    def delete_if_exists(self, path: str) -> bool:
        with self._lock:
            if self.exists(path):
                self.delete(path)
                return True
            return False

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self.namenode.rename(src, dst)

    def stat(self, path: str) -> FileStatus:
        return self.namenode.stat(path)

    def file_size(self, path: str) -> int:
        return self.namenode.stat(path).size

    def mtime(self, path: str) -> int:
        return self.namenode.stat(path).mtime

    def list_paths(self, prefix: str = "") -> List[str]:
        return self.namenode.list_paths(prefix)

    # -- failure handling -------------------------------------------------------------------

    def kill_datanode(self, node_id: int) -> "DataNode":
        """Simulate a datanode crash: its replicas vanish.

        Files stay readable as long as any replica of every block
        survives elsewhere (the point of 3-way replication).  Call
        :meth:`rereplicate` afterwards to restore the replication
        factor, as HDFS's NameNode would.
        """
        for index, node in enumerate(self.datanodes):
            if node.node_id == node_id:
                if len(self.datanodes) == 1:
                    raise DFSError("cannot kill the last datanode")
                return self.datanodes.pop(index)
        raise DFSError(f"no such datanode: {node_id}")

    def under_replicated_blocks(self) -> List[tuple]:
        """(path, block_id, live_replicas) for blocks below target."""
        out = []
        for path in self.namenode.list_paths():
            inode = self.namenode.lookup(path)
            for block_id in inode.block_ids:
                live = sum(1 for node in self.datanodes if node.has_block(block_id))
                if live < min(inode.replication, len(self.datanodes)):
                    out.append((path, block_id, live))
        return out

    def rereplicate(self) -> int:
        """Restore the replication factor of under-replicated blocks.

        Copies each surviving replica onto nodes that lack it; returns
        the number of new replicas created.  Raises if a block lost
        every replica (data loss — exactly what replication bounds).
        """
        created = 0
        for path, block_id, live in self.under_replicated_blocks():
            holders = [n for n in self.datanodes if n.has_block(block_id)]
            if not holders:
                raise DFSError(f"data loss: no replica left for {block_id} of {path}")
            # the copy reads one surviving replica (counted) and then
            # shares the same immutable Block object — no byte copies
            block = holders[0].get_block(block_id)
            holders[0].charge_read(block_id)
            inode = self.namenode.lookup(path)
            target_count = min(inode.replication, len(self.datanodes))
            for node in self.datanodes:
                if live >= target_count:
                    break
                if not node.has_block(block_id):
                    node.store_block(block)
                    self.replica_bytes_written += block.size
                    live += 1
                    created += 1
        return created

    # -- capacity --------------------------------------------------------------------------

    @property
    def total_used_bytes(self) -> int:
        """Physical bytes used across all datanodes (incl. replicas)."""
        return sum(node.used_bytes for node in self.datanodes)

    def n_blocks(self, path: str) -> int:
        return self.namenode.stat(path).block_count

    def __repr__(self) -> str:
        return (
            f"DistributedFileSystem(files={self.namenode.file_count}, "
            f"nodes={len(self.datanodes)}, used={self.total_used_bytes})"
        )
