"""The DFS facade used by every other subsystem.

``DistributedFileSystem`` glues together the NameNode, a set of
DataNodes and a replica placement policy, and exposes the small API
surface the MapReduce engine needs: whole-file reads/writes, appends,
deletes, renames, listing and stat.  It also accumulates the global
I/O counters (bytes logically read/written, replica bytes) consumed by
the cost model.
"""

from __future__ import annotations

import threading
import zlib
from typing import Iterable, List, Optional, Tuple

from repro.dfs.blocks import Block, LazyPayload
from repro.dfs.datanode import DataNode
from repro.dfs.dataset import TypedDataset, canonical_ascii_size, rows_are_canonical
from repro.dfs.namenode import FileStatus, INode, InputExtent, NameNode
from repro.dfs.replication import PlacementPolicy, RoundRobinPlacement
from repro.exceptions import DFSError, FileNotFoundInDFS
from repro.faults import injector as faults
from repro.relational.schema import Schema
from repro.relational.tuples import (
    Row,
    deserialize_rows,
    serialize_rows,
    serialized_rows_size,
    snapshot_rows,
)


class DistributedFileSystem:
    """An in-memory HDFS: replicated blocks over simulated datanodes.

    Parameters mirror the paper's cluster: 14 datanodes, 3-way
    replication.  ``block_size`` defaults to 128 KiB so that the small
    generated data sets still span multiple blocks (and therefore
    multiple simulated map tasks).
    """

    def __init__(
        self,
        n_datanodes: int = 14,
        replication: int = 3,
        block_size: int = 128 * 1024,
        node_capacity_bytes: Optional[int] = None,
        placement: Optional[PlacementPolicy] = None,
    ):
        if n_datanodes < 1:
            raise ValueError("need at least one datanode")
        self.namenode = NameNode()
        self.datanodes: List[DataNode] = [
            DataNode(i, node_capacity_bytes) for i in range(n_datanodes)
        ]
        self.replication = replication
        self.block_size = block_size
        self.placement = placement or RoundRobinPlacement()
        # Logical (single-copy) counters, used by the cost model.
        self.bytes_read = 0
        self.bytes_written = 0
        # Physical counter including replication fan-out.
        self.replica_bytes_written = 0
        #: stores that cloned an existing file's serialized payload
        #: instead of re-serializing (see :meth:`write_rows` ``source``)
        self.payload_reuses = 0
        #: PigStorage renders actually performed for row writes (eager
        #: builds plus lazy payloads something genuinely byte-read)
        self.serializations = 0
        self._script_id_next = 1
        self._subjob_id_next = 1
        self._delta_id_next = 1
        #: one filesystem is shared by every concurrent service worker;
        #: this lock makes namespace mutations (block allocation, the
        #: mtime clock, delete-if-exists) atomic — without it two
        #: writers can be handed the same block id and silently read
        #: each other's bytes back
        self._lock = threading.RLock()

    def next_subjob_id(self) -> int:
        """Allocate a ReStore sub-job output number.

        Scoped like :meth:`next_script_id`: deterministic per fresh
        filesystem (a serial rerun of the same stream reproduces the
        same ``restore/subjob/sj...`` paths byte for byte), and unique
        across managers sharing one DFS so kept sub-job outputs can
        never overwrite each other.
        """
        with self._lock:
            value = self._subjob_id_next
            self._subjob_id_next += 1
            return value

    def next_delta_id(self) -> int:
        """Allocate a delta-refresh scratch number.

        Scoped like :meth:`next_subjob_id`: ``restore/delta/...``
        scratch paths (appended-tail inputs, side-stored delta rows)
        are short-lived but must still never collide between managers
        sharing one DFS — the loser of a collision would merge another
        manager's delta bytes into its own stored output.
        """
        with self._lock:
            value = self._delta_id_next
            self._delta_id_next += 1
            return value

    def next_script_id(self) -> int:
        """Allocate a script id unique within this filesystem.

        Temp-output prefixes (``tmp/s<id>``) must never collide between
        engines sharing one DFS — a second engine overwriting another's
        kept temp file silently corrupts the ReStore repository — so
        the filesystem, the shared resource, hands out the numbering.
        A fresh DFS restarts at 1, keeping paths deterministic per
        test/session.
        """
        with self._lock:
            value = self._script_id_next
            self._script_id_next += 1
            return value

    def ensure_id_floor(
        self,
        next_script_id: Optional[int] = None,
        next_subjob_id: Optional[int] = None,
    ) -> None:
        """Advance the id counters so future allocations start at or
        past the given values.

        Crash recovery calls this: a restored repository references
        ``tmp/s<id>`` and ``restore/subjob/sj<id>`` paths that new
        allocations must never collide with, so the counters resume
        past the highest persisted id instead of restarting at 1.
        Floors only move forward — a stale floor can never rewind a
        live counter.
        """
        with self._lock:
            if next_script_id is not None:
                self._script_id_next = max(self._script_id_next, next_script_id)
            if next_subjob_id is not None:
                self._subjob_id_next = max(self._subjob_id_next, next_subjob_id)

    def id_state(self) -> dict:
        """The next script/sub-job ids this filesystem would allocate
        (snapshotted into repository checkpoints for id hygiene)."""
        with self._lock:
            return {
                "next_script_id": self._script_id_next,
                "next_subjob_id": self._subjob_id_next,
            }

    # -- writes -------------------------------------------------------------------

    def write_file(
        self, path: str, data: bytes | str, overwrite: bool = False
    ) -> FileStatus:
        """Create *path* with *data*; replicates each block."""
        payload = data.encode() if isinstance(data, str) else data
        with self._lock:
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            self._append_blocks(inode, payload)
            return self.namenode.stat(path)

    def append(self, path: str, data: bytes | str) -> FileStatus:
        """Append to an existing file (creates it if missing)."""
        payload = data.encode() if isinstance(data, str) else data
        with self._lock:
            if not self.namenode.exists(path):
                return self.write_file(path, payload)
            inode = self.namenode.lookup(path)
            self._append_blocks(inode, payload)
            inode.invalidate_datasets()
            self.namenode.touch(path)
            return self.namenode.stat(path)

    def write_lines(
        self, path: str, lines: Iterable[str], overwrite: bool = False
    ) -> FileStatus:
        text = "".join(line if line.endswith("\n") else line + "\n" for line in lines)
        return self.write_file(path, text, overwrite=overwrite)

    def write_rows(
        self,
        path: str,
        rows: Iterable[Row],
        schema: Optional[Schema] = None,
        overwrite: bool = False,
        source: Optional[str] = None,
        reuse_payload: bool = True,
        columnar: bool = True,
        snapshot: bool = True,
    ) -> FileStatus:
        """Create *path* from typed rows (the zero-copy write path).

        The PigStorage serialization stays the source of truth — it is
        what the byte counters account and what :meth:`read_file`
        returns — but when the rows round-trip exactly under *schema*
        they are additionally pinned to the inode, so a
        :meth:`read_rows` with a matching schema skips parsing and the
        block bytes are never even sliced out of the payload.

        ``source`` names a file the caller believes produced *rows*
        (a copy-style or filtered store's load).  Two fast paths hang
        off it, both fully verified here (a wrong or stale hint just
        falls back to serializing):

        * **payload clone** (``reuse_payload``) — when the source's
          pinned dataset is provably these very rows (element
          identity, current generation, *exact* serialization), the
          new file shares the producer's payload: the text of a copied
          result is rendered at most once no matter how many copies
          exist;
        * **subset sizing** (``columnar``) — when the rows are an
          identity-subset of an ASCII-sized pinned dataset (a filter
          passes row references through untouched), canonicality is
          already proven, so the write sizes the rows in one columnar
          pass and skips both the canonical re-check and the snapshot.

        Byte counters move exactly as a fresh write would move them on
        every path.  ``columnar=False`` and ``snapshot=False`` are for
        the execution planes: the per-row fast plane keeps PR-4's
        closure sizing, and the interpreter owns its flush rows (no
        caller can mutate them later), so the batched plane skips the
        defensive copy.
        """
        if not isinstance(rows, (list, tuple)):
            rows = list(rows)
        fast = None
        if source is not None and schema is not None:
            fast = self._try_source_fast_path(
                path, rows, schema, source, overwrite, reuse_payload, columnar
            )
        if fast is not None:
            return fast
        if snapshot:
            # snapshot at call time, like write_file snapshots bytes: a
            # caller mutating a Bag after this returns must not corrupt
            # the deferred serialization or the pinned dataset
            rows = snapshot_rows(rows)
        elif not isinstance(rows, tuple):
            rows = tuple(rows)
        payload: bytes | LazyPayload
        # one pass decides pinning eligibility and sizes the bytes
        total_bytes = (
            canonical_ascii_size(rows, schema, columnar=columnar)
            if schema is not None
            else None
        )
        if total_bytes is None:
            # non-canonical or non-ASCII rows: readers will genuinely
            # parse the text, so build it up front (rare path: the
            # canonical check runs again, off the hot path)
            canonical = schema is not None and rows_are_canonical(rows, schema)
            self.serializations += 1
            data = serialize_rows(rows).encode()
            payload, total_bytes = data, len(data)
            ascii_sized = False
        else:
            # byte-size accounting is exact without serializing; the
            # text is built only if something reads actual bytes
            canonical = True
            ascii_sized = True
            payload = LazyPayload(lambda: self._render_rows(rows))
        with self._lock:
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            self._append_blocks(inode, payload, total_bytes)
            if canonical:
                # exact: the payload *is* serialize_rows(rows), so the
                # dataset qualifies as a payload-reuse source itself
                fingerprint = schema.fingerprint()
                inode.datasets[fingerprint] = TypedDataset(
                    rows,
                    fingerprint,
                    inode.generation,
                    exact=True,
                    ascii_sized=ascii_sized,
                )
            return self.namenode.stat(path)

    def _try_source_fast_path(
        self,
        path: str,
        rows,
        schema: Schema,
        source: str,
        overwrite: bool,
        reuse_payload: bool,
        columnar: bool,
    ) -> Optional[FileStatus]:
        if reuse_payload:
            status = self._clone_payload(path, rows, schema, source, overwrite)
            if status is not None:
                return status
        if columnar:
            return self._write_subset(path, rows, schema, source, overwrite)
        return None

    def _write_subset(
        self,
        path: str,
        rows,
        schema: Schema,
        source: str,
        overwrite: bool,
    ) -> Optional[FileStatus]:
        """Write rows proven to be an identity-subset of *source*'s
        ASCII-sized pinned dataset: size them in one columnar pass,
        skip the canonical re-check and the defensive snapshot.

        Soundness of the id-subset proof: the source dataset's
        ``rows`` tuple keeps every member alive, so a live object
        whose id is in the set *is* the original (ids cannot recycle
        while the referent exists); rows stay alive through the local
        references below.
        """
        fingerprint = schema.fingerprint()

        def subset_of_current_dataset():
            """The source's live pinned dataset when it covers *rows*."""
            if not self.namenode.exists(source):
                return None
            src = self.namenode.lookup(source)
            dataset = src.datasets.get(fingerprint)
            if (
                dataset is None
                or not dataset.ascii_sized
                or dataset.generation != src.generation
            ):
                return None
            if not set(map(id, rows)) <= dataset.row_ids():
                return None
            return dataset

        with self._lock:
            dataset = subset_of_current_dataset()
            if dataset is None:
                return None
        # per-row widths + one newline per row == the serialized byte
        # count (rows are proven canonical ASCII).  Sizing runs
        # *outside* the DFS-wide lock — an O(subset) pass must not
        # stall concurrent service workers — against state that cannot
        # rot: we hold the dataset (ids stay unambiguous), and the
        # preconditions are re-checked before anything is created.
        memo = dataset._size_memo
        if memo is not None:
            total_bytes = sum(map(memo.__getitem__, map(id, rows)))
        else:
            total_bytes = serialized_rows_size(rows)
        total_bytes += len(rows)
        rows = tuple(rows)
        with self._lock:
            if subset_of_current_dataset() is not dataset:
                return None  # source changed meanwhile: serialize path
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            payload = LazyPayload(lambda: self._render_rows(rows))
            self._append_blocks(inode, payload, total_bytes)
            inode.datasets[fingerprint] = TypedDataset(
                rows,
                fingerprint,
                inode.generation,
                exact=True,
                ascii_sized=True,
            )
            return self.namenode.stat(path)

    def _render_rows(self, rows) -> bytes:
        self.serializations += 1
        return serialize_rows(rows).encode()

    def _clone_payload(
        self,
        path: str,
        rows,
        schema: Schema,
        source: str,
        overwrite: bool,
    ) -> Optional[FileStatus]:
        """Create *path* by sharing *source*'s serialized payload.

        Returns None (caller falls back to serializing) unless every
        reuse precondition holds; see :meth:`write_rows`.
        """
        fingerprint = schema.fingerprint()
        with self._lock:
            if not self.namenode.exists(source):
                return None
            src = self.namenode.lookup(source)
            dataset = src.datasets.get(fingerprint)
            if (
                dataset is None
                or not dataset.exact
                or dataset.generation != src.generation
                or src.payload is None
            ):
                return None
            src_rows = dataset.rows
            if len(rows) != len(src_rows):
                return None
            for mine, theirs in zip(rows, src_rows):
                if mine is not theirs:
                    return None
            # capture before any delete: source may equal path
            # (a store overwriting its own input with itself)
            payload, total_bytes = src.payload, src.size
            if overwrite and self.namenode.exists(path):
                self.delete(path)
            inode = self.namenode.create(path, self.replication)
            self._append_blocks(inode, payload, total_bytes)
            inode.datasets[fingerprint] = TypedDataset(
                src_rows,
                fingerprint,
                inode.generation,
                exact=True,
                ascii_sized=dataset.ascii_sized,
            )
            self.payload_reuses += 1
            return self.namenode.stat(path)

    def _append_blocks(
        self,
        inode,
        payload: bytes | LazyPayload,
        total_bytes: Optional[int] = None,
    ) -> None:
        if total_bytes is None:
            total_bytes = len(payload)
        # a file written in one shot keeps its whole-file payload for
        # serialized-payload cloning; appends invalidate it
        fresh = not inode.block_ids and inode.size == 0
        block_size = self.block_size
        for offset in range(0, total_bytes, block_size):
            chunk_len = min(block_size, total_bytes - offset)
            block_id = self.namenode.new_block_id()
            # one immutable block shared by every replica; the chunk
            # bytes are a lazy view, materialized only if actually read
            block = Block.view(block_id, payload, offset, chunk_len)
            for node in self.placement.choose(self.datanodes, inode.replication):
                node.store_block(block)
                self.replica_bytes_written += block.size
            inode.block_ids.append(block_id)
            inode.size += block.size
        inode.payload = payload if fresh else None
        self.bytes_written += total_bytes

    # -- reads ----------------------------------------------------------------------

    def read_file(self, path: str) -> bytes:
        with self._lock:
            inode = self.namenode.lookup(path)
            chunks = []
            for block_id in inode.block_ids:
                node = self._locate(block_id)
                chunks.append(node.read_block(block_id))
            data = b"".join(chunks)
            # injection site "dfs.read": block-payload bit rot on the
            # read path (persistence reads through here on the "dfs"
            # backend, so this also corrupts snapshot/journal bytes)
            data = faults.fire("dfs.read", data=data)
            self.bytes_read += len(data)
            return data

    def read_range(self, path: str, start: int, end: int) -> bytes:
        """Read the byte range ``[start, end)`` of *path*.

        Only the blocks overlapping the range are touched — the tail
        view the incremental-recomputation layer uses to run a sub-plan
        over just the appended suffix of a grown input, without paying
        a full-file read.  Counters move for the blocks actually read.
        """
        with self._lock:
            inode = self.namenode.lookup(path)
            start = max(0, start)
            end = min(end, inode.size)
            if start >= end:
                return b""
            chunks = []
            offset = 0
            for block_id in inode.block_ids:
                node = self._locate(block_id)
                block = node.get_block(block_id)
                block_end = offset + block.size
                if block_end > start and offset < end:
                    data = node.read_block(block_id)
                    chunks.append(data[max(0, start - offset) : end - offset])
                offset = block_end
                if offset >= end:
                    break
            data = b"".join(chunks)
            self.bytes_read += len(data)
            return data

    def read_text(self, path: str) -> str:
        return self.read_file(path).decode()

    def read_rows(self, path: str, schema: Schema) -> Tuple[Row, ...]:
        """Read *path* as typed rows (the zero-copy read path).

        A pinned dataset with a matching schema fingerprint and a
        current generation is returned as-is — no bytes are
        materialized, no text is parsed, yet every read counter
        (logical and per-datanode) moves exactly as a text read would
        move it.  On a miss the text is parsed once and the result is
        pinned, so the next matching reader hits.  The returned tuple
        is shared: treat it as immutable.
        """
        fingerprint = schema.fingerprint()
        with self._lock:
            inode = self.namenode.lookup(path)
            dataset = inode.datasets.get(fingerprint)
            if dataset is not None and dataset.generation == inode.generation:
                self._charge_cached_read(inode)
                return dataset.rows
            chunks = []
            for block_id in inode.block_ids:
                node = self._locate(block_id)
                chunks.append(node.read_block(block_id))
            data = b"".join(chunks)
            self.bytes_read += len(data)
            generation = inode.generation
        # parse outside the lock: a cold read of a large file must not
        # stall every other worker sharing this filesystem
        rows = tuple(deserialize_rows(data.decode(), schema))
        with self._lock:
            # a parse is canonical with respect to its own text, so the
            # fill needs no round-trip check — but pin only if the file
            # is still the same inode at the same generation
            if self.namenode.exists(path):
                current = self.namenode.lookup(path)
                if current is inode and current.generation == generation:
                    inode.datasets[fingerprint] = TypedDataset(
                        rows, fingerprint, generation
                    )
        return rows

    def row_size_memo(self, path: str, schema: Schema) -> Tuple[dict, tuple]:
        """(id -> serialized width, keepalive rows) for *path*'s pinned
        dataset, or ``({}, ())`` when nothing is pinned.

        The batched plane's shuffle accounting looks rows up here
        instead of re-sizing them chunk by chunk.  The caller must
        hold the returned rows tuple for as long as it uses the memo:
        the ids stay unambiguous exactly because every member object
        is kept alive.
        """
        fingerprint = schema.fingerprint()
        with self._lock:
            if not self.namenode.exists(path):
                return {}, ()
            inode = self.namenode.lookup(path)
            dataset = inode.datasets.get(fingerprint)
            if dataset is None or dataset.generation != inode.generation:
                return {}, ()
        # build outside the DFS-wide lock: sizing a large dataset must
        # not stall concurrent service workers (same discipline as the
        # read_rows cold-parse).  A concurrent duplicate build is
        # benign — the memo is pure per-row data and the dataset
        # object itself keeps the rows (and so the ids) stable.
        return dataset.size_memo(), dataset.rows

    def _charge_cached_read(self, inode: INode) -> None:
        """Move read counters for a cache hit exactly like a text read."""
        for block_id in inode.block_ids:
            self._locate(block_id).charge_read(block_id)
        self.bytes_read += inode.size

    def read_lines(self, path: str) -> List[str]:
        text = self.read_text(path)
        return [line for line in text.splitlines() if line != ""]

    def _locate(self, block_id) -> DataNode:
        for node in self.datanodes:
            if node.has_block(block_id):
                return node
        raise FileNotFoundInDFS(f"no replica found for {block_id}")

    # -- namespace ---------------------------------------------------------------------

    def exists(self, path: str) -> bool:
        return self.namenode.exists(path)

    def delete(self, path: str) -> None:
        with self._lock:
            inode = self.namenode.remove(path)
            for block_id in inode.block_ids:
                for node in self.datanodes:
                    node.delete_block(block_id)

    def delete_if_exists(self, path: str) -> bool:
        with self._lock:
            if self.exists(path):
                self.delete(path)
                return True
            return False

    def rename(self, src: str, dst: str) -> None:
        with self._lock:
            self.namenode.rename(src, dst)

    def stat(self, path: str) -> FileStatus:
        return self.namenode.stat(path)

    def file_size(self, path: str) -> int:
        return self.namenode.stat(path).size

    def mtime(self, path: str) -> int:
        return self.namenode.stat(path).mtime

    def input_extent(
        self, path: str, with_crc: bool = False
    ) -> Optional[InputExtent]:
        """The live :class:`InputExtent` of *path*, or None when the
        file does not exist (freshness classification's "dead").

        ``with_crc`` additionally records the content checksum that
        makes the extent survive a persistence restart (registration
        pays it once; match-time probes stay metadata-only).
        """
        with self._lock:
            if not self.namenode.exists(path):
                return None
            inode = self.namenode.lookup(path)
            return InputExtent(
                mtime=inode.mtime,
                generation=inode.generation,
                birth=inode.birth,
                size=inode.size,
                crc=self.prefix_crc32(path) if with_crc else None,
            )

    def prefix_crc32(self, path: str, size: Optional[int] = None) -> Optional[int]:
        """crc32 of the first *size* bytes of *path* (whole file when
        None), or None when it cannot be computed cheaply.

        A metadata-grade probe for freshness classification: it moves
        no logical read counters and refuses to force a still-deferred
        lazy payload into serializing (callers treat None as "cannot
        verify" and classify conservatively).
        """
        with self._lock:
            if not self.namenode.exists(path):
                return None
            inode = self.namenode.lookup(path)
            end = inode.size if size is None else min(size, inode.size)
            crc = 0
            offset = 0
            for block_id in inode.block_ids:
                if offset >= end:
                    break
                node = self._locate(block_id)
                block = node.get_block(block_id)
                if not block.bytes_available:
                    return None
                crc = zlib.crc32(block.data[: end - offset], crc)
                offset += block.size
            return crc

    def list_paths(self, prefix: str = "") -> List[str]:
        return self.namenode.list_paths(prefix)

    # -- failure handling -------------------------------------------------------------------

    def kill_datanode(self, node_id: int) -> "DataNode":
        """Simulate a datanode crash: its replicas vanish.

        Files stay readable as long as any replica of every block
        survives elsewhere (the point of 3-way replication).  Call
        :meth:`rereplicate` afterwards to restore the replication
        factor, as HDFS's NameNode would.
        """
        for index, node in enumerate(self.datanodes):
            if node.node_id == node_id:
                if len(self.datanodes) == 1:
                    raise DFSError("cannot kill the last datanode")
                return self.datanodes.pop(index)
        raise DFSError(f"no such datanode: {node_id}")

    def under_replicated_blocks(self) -> List[tuple]:
        """(path, block_id, live_replicas) for blocks below target."""
        out = []
        for path in self.namenode.list_paths():
            inode = self.namenode.lookup(path)
            for block_id in inode.block_ids:
                live = sum(1 for node in self.datanodes if node.has_block(block_id))
                if live < min(inode.replication, len(self.datanodes)):
                    out.append((path, block_id, live))
        return out

    def rereplicate(self) -> int:
        """Restore the replication factor of under-replicated blocks.

        Copies each surviving replica onto nodes that lack it; returns
        the number of new replicas created.  Raises if a block lost
        every replica (data loss — exactly what replication bounds).
        """
        created = 0
        for path, block_id, live in self.under_replicated_blocks():
            holders = [n for n in self.datanodes if n.has_block(block_id)]
            if not holders:
                raise DFSError(f"data loss: no replica left for {block_id} of {path}")
            # the copy reads one surviving replica (counted) and then
            # shares the same immutable Block object — no byte copies
            block = holders[0].get_block(block_id)
            holders[0].charge_read(block_id)
            inode = self.namenode.lookup(path)
            target_count = min(inode.replication, len(self.datanodes))
            for node in self.datanodes:
                if live >= target_count:
                    break
                if not node.has_block(block_id):
                    node.store_block(block)
                    self.replica_bytes_written += block.size
                    live += 1
                    created += 1
        return created

    # -- capacity --------------------------------------------------------------------------

    @property
    def total_used_bytes(self) -> int:
        """Physical bytes used across all datanodes (incl. replicas)."""
        return sum(node.used_bytes for node in self.datanodes)

    def n_blocks(self, path: str) -> int:
        return self.namenode.stat(path).block_count

    def __repr__(self) -> str:
        return (
            f"DistributedFileSystem(files={self.namenode.file_count}, "
            f"nodes={len(self.datanodes)}, used={self.total_used_bytes})"
        )
