"""Incremental-recomputation benchmark: delta refresh vs full rerun.

The delta path's claim (see :mod:`repro.core.freshness` and the
manager's ``_try_delta_rewrite``) is that when a registered input
merely *grows*, re-answering the same query costs O(tail) instead of
O(file): the matcher reruns the identity-preserving chain over the
appended bytes only and UNION-merges with the stored output.  This
section measures that claim end to end and gates it in CI:

* ``delta`` — a warm manager re-probes a registered filter chain
  after an append; the rewrite runs over the tail alone and the
  refreshed entry absorbs the delta;
* ``full`` — the no-reuse oracle: a fresh engine over the identically
  grown input recomputes everything.

Gates (see :func:`check_incremental_gates`):

* the delta probe must be **≥3x faster** than the full rerun at the
  measured scale;
* both sides must produce **byte-identical** output files (the
  stored-prefix ++ tail-suffix merge is exact, not approximate);
* the delta probe must actually refresh (one ``EntryRefreshed``, no
  silent fall-through to a full recomputation);
* a shuffle probe (GROUP) over an appended input must **fall back**
  with a typed ``DeltaFallback`` and still recompute correctly —
  the fast path never buys speed with wrong answers.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.core.manager import ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import DeltaFallback, EntryRefreshed
from repro.pig.engine import PigServer

DEFAULT_INCREMENTAL_ROWS = 60_000
#: quick mode keeps enough rows that the O(tail)-vs-O(file) gap
#: dominates fixed per-run costs; the ≥3x gate applies there too
QUICK_INCREMENTAL_ROWS = 20_000
#: appended tail, in rows — small relative to the base on purpose
TAIL_ROWS = 200

_EVENTS_SCHEMA = (
    "user, action:int, timestamp:int, est_revenue:double, page_info, page_links"
)

_FILTER_SCRIPT = f"""
A = load 'data/events' as ({_EVENTS_SCHEMA});
B = filter A by action == 1;
store B into 'bench_out';
"""

_GROUP_SCRIPT = f"""
A = load 'data/events' as ({_EVENTS_SCHEMA});
G = group A by user;
C = foreach G generate group, COUNT(A);
store C into 'bench_group_out';
"""


@contextmanager
def _quiesced_gc():
    """Keep the collector out of the timed region (same reasoning as
    the persistence section: a collection landing inside one side but
    not the other would skew the speedup either way)."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _event_row(i: int) -> str:
    return (
        f"user{i % 97}\t{i % 3}\t{100 + i}\t{(i % 10) / 2}"
        f"\tinfo{i}\tlinks{i}"
    )


def _event_rows(start: int, count: int) -> str:
    return "".join(_event_row(i) + "\n" for i in range(start, start + count))


def _fresh_engine(with_reuse: bool):
    dfs = DistributedFileSystem(n_datanodes=4, block_size=64 * 1024)
    manager = ReStoreManager(dfs) if with_reuse else None
    server = (
        PigServer(dfs, restore=manager) if with_reuse else PigServer(dfs)
    )
    return dfs, manager, server


def run_incremental_scale(n_rows: int, tail_rows: int, seed: int = 13) -> Dict:
    """Measure one input size: delta refresh vs full-rerun oracle,
    byte identity, and shuffle-fallback behaviour."""
    base = _event_rows(0, n_rows)
    tail = _event_rows(n_rows, tail_rows)

    # -- delta side: register, append, timed re-probe --------------------------
    dfs, manager, server = _fresh_engine(with_reuse=True)
    dfs.write_file("data/events", base)
    refreshes: List[EntryRefreshed] = []
    fallbacks: List[DeltaFallback] = []
    manager.events.subscribe(refreshes.append, event_types=(EntryRefreshed,))
    manager.events.subscribe(fallbacks.append, event_types=(DeltaFallback,))
    server.run(_FILTER_SCRIPT)
    dfs.append("data/events", tail)
    with _quiesced_gc():
        tick = time.perf_counter()
        server.run(_FILTER_SCRIPT)
        delta_s = time.perf_counter() - tick
    delta_bytes = dfs.read_file("bench_out")
    delta_refreshes = len(refreshes)

    # -- oracle side: fresh engine over the identically grown input ------------
    oracle_dfs, _, oracle_server = _fresh_engine(with_reuse=False)
    oracle_dfs.write_file("data/events", base + tail)
    with _quiesced_gc():
        tick = time.perf_counter()
        oracle_server.run(_FILTER_SCRIPT)
        full_s = time.perf_counter() - tick
    full_bytes = oracle_dfs.read_file("bench_out")

    # -- fallback headroom: a shuffle probe must decline the delta path --------
    server.run(_GROUP_SCRIPT)
    dfs.append("data/events", _event_rows(n_rows + tail_rows, tail_rows))
    server.run(_GROUP_SCRIPT)
    group_bytes = dfs.read_file("bench_group_out")
    group_oracle_dfs, _, group_oracle_server = _fresh_engine(with_reuse=False)
    group_oracle_dfs.write_file(
        "data/events", base + tail + _event_rows(n_rows + tail_rows, tail_rows)
    )
    group_oracle_server.run(_GROUP_SCRIPT)
    group_oracle_bytes = group_oracle_dfs.read_file("bench_group_out")

    speedup = full_s / delta_s if delta_s > 0 else float("inf")
    return {
        "n_rows": n_rows,
        "tail_rows": tail_rows,
        "input_bytes": len(base) + len(tail),
        "tail_bytes": len(tail),
        "delta_s": round(delta_s, 4),
        "full_s": round(full_s, 4),
        "delta_speedup": round(speedup, 2),
        "delta_refreshes": delta_refreshes,
        "delta_fallbacks": manager.delta_fallback_count,
        "outputs_identical": delta_bytes == full_bytes,
        "group_fallbacks": len(
            [f for f in fallbacks if f.reason == "ineligible-chain"]
        ),
        "group_outputs_identical": group_bytes == group_oracle_bytes,
    }


def run_incremental_benchmark(
    n_rows: Optional[int] = None,
    tail_rows: int = TAIL_ROWS,
    seed: int = 13,
    quick: bool = False,
) -> Dict:
    """The incremental-recomputation section of the benchmark payload."""
    if n_rows is None:
        n_rows = QUICK_INCREMENTAL_ROWS if quick else DEFAULT_INCREMENTAL_ROWS
    return {
        "seed": seed,
        "scales": [run_incremental_scale(n_rows, tail_rows, seed)],
    }


def check_incremental_gates(section: Optional[Dict]) -> List[str]:
    """CI gates over an ``incremental`` payload section."""
    if not section:
        return []
    failures = []
    for scale in section["scales"]:
        n = scale["n_rows"]
        if scale["delta_speedup"] < 3.0:
            failures.append(
                f"incremental N={n}: delta probe is only "
                f"{scale['delta_speedup']}x faster than the full rerun "
                f"({scale['delta_s']}s vs {scale['full_s']}s) — below "
                f"the 3x target"
            )
        if not scale["outputs_identical"]:
            failures.append(
                f"incremental N={n}: delta-merged output diverges from "
                f"the full-rerun oracle"
            )
        if scale["delta_refreshes"] < 1:
            failures.append(
                f"incremental N={n}: the delta probe never refreshed "
                f"(no EntryRefreshed observed); the timing measured a "
                f"silent full recomputation"
            )
        if scale["group_fallbacks"] < 1:
            failures.append(
                f"incremental N={n}: the shuffle probe did not emit a "
                f"typed DeltaFallback; an ineligible chain took the "
                f"delta path"
            )
        if not scale["group_outputs_identical"]:
            failures.append(
                f"incremental N={n}: the shuffle probe's fallback rerun "
                f"diverges from the oracle"
            )
    return failures
