"""End-to-end execution-simulator benchmark: the three data-plane tiers.

This is the perf trajectory for the simulator itself — the substrate
every Figure 9–17 experiment and the ``service_throughput`` bench run
on.  It drives PigMix-style query streams through full
:class:`~repro.session.ReStoreSession` instances at two scales, three
times with byte-identical inputs:

* ``batched`` — the production default: the zero-copy plane plus
  columnar batch evaluation — operators process ``List[Row]`` chunks
  through compiled batch handlers, the shuffle decorates whole chunks
  in one pass, and copy-style stores clone their producer's serialized
  payload (``ReStoreConfig()``);
* ``fast`` — the PR-4 zero-copy plane with per-row compiled dispatch
  (``ReStoreConfig(batch_size=0)``), kept as the batching ablation
  baseline;
* ``legacy`` — the historical path: every workflow edge serializes
  rows to PigStorage text and the next job re-parses it
  (``ReStoreConfig(fast_data_plane=False)``).

The workload mirrors ReStore's target setting: a shared events table
is ingested once through the typed API (as an upstream job would have
produced it), then each of two filter thresholds gets one aggregation
producer and a fan-out of drill-down consumers whose plans share the
``load → filter → group`` prefix, so ReStore's sub-job reuse rewrites
the consumers to read the stored group output (and identical drill
queries degrade to whole-job copy rewrites — the payload-reuse path).
Reuse decisions are identical in every mode — the measured difference
is purely the data plane.

Gates (see :func:`check_exec_sim_gates`, enforced by ``bench-smoke``):

* ``speedup`` — batched must beat legacy by >= 3x end-to-end workflow
  wall time at every scale;
* ``batch_speedup`` — batched must beat the per-row fast plane by
  >= 1.5x at the largest measured scale;
* ``outputs_identical`` — the full DFS namespace (every file's bytes)
  must match across all three modes;
* ``counters_identical`` — every per-job :class:`JobStats` counter and
  simulated time must match;
* ``dfs_counters_identical`` — ``bytes_read`` / ``bytes_written`` /
  ``replica_bytes_written`` must be value-identical;
* ``decisions_identical`` — the typed rewrite/elimination/registration
  event log must match;
* ``payload_reuses`` — on the fast tiers every whole-job copy rewrite
  must have cloned its producer's payload (zero re-serialization for
  copy-style stores).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.manager import ReStoreConfig
from repro.events import RewriteApplied
from repro.relational.schema import Schema
from repro.relational.types import DataType

#: minimum batched-vs-legacy wall-time speedup the gate demands
SPEEDUP_FLOOR = 3.0
#: minimum batched-vs-per-row speedup demanded at the largest scale
BATCH_SPEEDUP_FLOOR = 1.5

EVENTS_PATH = "bench/events"
EVENTS_SCHEMA = Schema.of(
    ("u", DataType.CHARARRAY),
    ("a", DataType.INT),
    ("r", DataType.DOUBLE),
    ("info", DataType.CHARARRAY),
)

#: filter thresholds: each starts one producer + consumer fan-out chain
THRESHOLDS = (10, 35)
#: drill-down consumers per threshold (every third one aggregates)
CONSUMERS_PER_CHAIN = 5

DEFAULT_EXEC_SCALES = (6000, 20000)
#: quick mode keeps the full-size large scale: the batch-speedup gate
#: applies at the largest measured scale, and dispatch-vs-fixed-cost
#: ratios at small N would make that gate meaningless in CI
QUICK_EXEC_SCALES = (2000, 20000)


def generate_event_rows(n_rows: int, seed: int) -> List[tuple]:
    """A deterministic page_views-like table: skewed users, numeric
    measures, and a wide string payload (parsing it is the cost the
    typed-dataset cache removes)."""
    rng = random.Random(seed)
    n_users = max(50, n_rows // 40)
    rows = []
    for _ in range(n_rows):
        user = f"user{int(n_users * rng.random() ** 2):05d}"
        action = rng.randrange(100)
        revenue = round(rng.uniform(0.0, 10.0), 4)
        info = "info_" + "x" * (20 + rng.randrange(40))
        rows.append((user, action, revenue, info))
    return rows


def build_queries() -> List[Tuple[str, str]]:
    """(name, source) pairs: per threshold, one aggregation producer
    then drill-down consumers sharing the load→filter→group prefix."""
    queries = []
    for threshold in THRESHOLDS:
        prefix = (
            f"A = load '{EVENTS_PATH}' as "
            "(u:chararray, a:int, r:double, info:chararray);\n"
            f"B = filter A by a > {threshold};\n"
            "C = group B by u;\n"
        )
        queries.append(
            (
                f"agg_t{threshold}",
                prefix
                + "D = foreach C generate group, COUNT(B), SUM(B.r);\n"
                + f"store D into 'out/agg_t{threshold}';\n",
            )
        )
        for i in range(CONSUMERS_PER_CHAIN):
            tail = "group, MAX(B.r)" if i % 3 == 0 else "group"
            queries.append(
                (
                    f"drill_t{threshold}_{i}",
                    prefix
                    + f"D = foreach C generate {tail};\n"
                    + f"store D into 'out/drill_t{threshold}_{i}';\n",
                )
            )
    return queries


#: mode name -> ReStoreConfig keyword arguments
EXEC_MODES: Dict[str, dict] = {
    "batched": {},
    "fast": {"batch_size": 0},
    "legacy": {"fast_data_plane": False},
}


@dataclass
class ExecModeResult:
    """One data plane's measurements over the query stream."""

    workflow_wall_s: float = 0.0
    session_wall_s: float = 0.0
    input_records: int = 0
    jobs_run: int = 0
    jobs_eliminated: int = 0
    rewrites: int = 0
    #: whole-job matches degraded to copy jobs (the payload-reuse shape)
    copy_rewrites: int = 0
    #: stores that cloned their producer's serialized payload
    payload_reuses: int = 0
    #: per-run per-job counter tuples (equivalence asserted across modes)
    job_counters: List[tuple] = field(default_factory=list)
    #: typed decision log (reprs of RewriteApplied/JobEliminated/...)
    decisions: List[str] = field(default_factory=list)
    #: (bytes_read, bytes_written, replica_bytes_written)
    dfs_counters: Tuple[int, int, int] = (0, 0, 0)
    #: full DFS namespace snapshot, path -> file bytes (not serialized)
    snapshot: Dict[str, bytes] = field(default_factory=dict)

    @property
    def rows_per_sec(self) -> float:
        if self.workflow_wall_s <= 0:
            return 0.0
        return self.input_records / self.workflow_wall_s

    def to_dict(self) -> dict:
        return {
            "workflow_wall_s": round(self.workflow_wall_s, 4),
            "session_wall_s": round(self.session_wall_s, 4),
            "input_records": self.input_records,
            "rows_per_sec": round(self.rows_per_sec, 1),
            "jobs_run": self.jobs_run,
            "jobs_eliminated": self.jobs_eliminated,
            "rewrites": self.rewrites,
            "copy_rewrites": self.copy_rewrites,
            "payload_reuses": self.payload_reuses,
        }


def run_exec_mode(
    rows: List[tuple],
    queries: List[Tuple[str, str]],
    *,
    mode: str,
    reps: int = 1,
) -> ExecModeResult:
    """Run the stream through *reps* fresh sessions; keep the first
    rep's artifacts (runs are deterministic, so counters/outputs are
    rep-invariant) with the minimum measured walls (standard
    best-of-N to shed scheduler noise)."""
    result = _run_exec_mode_once(rows, queries, mode=mode)
    for _ in range(reps - 1):
        again = _run_exec_mode_once(rows, queries, mode=mode)
        result.workflow_wall_s = min(result.workflow_wall_s, again.workflow_wall_s)
        result.session_wall_s = min(result.session_wall_s, again.session_wall_s)
    return result


def _run_modes_interleaved(
    rows: List[tuple],
    queries: List[Tuple[str, str]],
    reps: int,
) -> Dict[str, ExecModeResult]:
    """Best-of-*reps* per mode with the rounds *interleaved*.

    Running each mode's repetitions back to back lets slow machine
    drift (thermal throttling, a noisy CI neighbour) land entirely on
    one mode and bias the reported ratios; cycling batched → fast →
    legacy each round spreads any drift evenly, so the per-mode
    minima stay comparable.
    """
    results: Dict[str, ExecModeResult] = {}
    for _ in range(reps):
        for mode in EXEC_MODES:
            fresh = _run_exec_mode_once(rows, queries, mode=mode)
            held = results.get(mode)
            if held is None:
                results[mode] = fresh
            else:
                held.workflow_wall_s = min(
                    held.workflow_wall_s, fresh.workflow_wall_s
                )
                held.session_wall_s = min(
                    held.session_wall_s, fresh.session_wall_s
                )
    return results


def _run_exec_mode_once(
    rows: List[tuple],
    queries: List[Tuple[str, str]],
    *,
    mode: str,
) -> ExecModeResult:
    """Run the whole stream through one fresh session and measure."""
    from repro.session import ReStoreSession

    result = ExecModeResult()
    config = ReStoreConfig(**EXEC_MODES[mode])
    with ReStoreSession(datanodes=4, config=config) as session:
        # typed ingestion: the table enters through the same API an
        # upstream job's store would have used, so the dataset cache
        # starts warm in fast mode; the bytes written are identical
        session.dfs.write_rows(EVENTS_PATH, rows, EVENTS_SCHEMA)
        # materialize the ingested text before the timer starts:
        # otherwise the legacy plane's first read would be billed for
        # the deferred ingestion serialization, inflating the speedup
        session.dfs.read_file(EVENTS_PATH)
        started = time.perf_counter()
        for name, source in queries:
            run = session.run(source, name=name)
            result.workflow_wall_s += run.stats.wall_seconds
            result.jobs_eliminated += len(run.stats.eliminated_jobs)
            for job_id in sorted(run.stats.job_stats):
                stats = run.stats.job_stats[job_id]
                result.jobs_run += 1
                result.input_records += stats.input_records
                result.job_counters.append(
                    (
                        job_id,
                        stats.input_records,
                        stats.map_output_records,
                        stats.shuffle_records,
                        stats.shuffle_bytes,
                        stats.reduce_groups,
                        stats.op_records,
                        tuple(sorted(stats.load_bytes.items())),
                        tuple(
                            (s.path, s.bytes, s.records, s.phase, s.side)
                            for s in stats.stores
                        ),
                        stats.sim_seconds,
                    )
                )
            result.decisions.extend(repr(event) for event in run.events)
            result.copy_rewrites += sum(
                1
                for event in run.events
                if isinstance(event, RewriteApplied) and event.whole_job
            )
        result.session_wall_s = time.perf_counter() - started
        result.rewrites = sum(
            1 for d in result.decisions if d.startswith("RewriteApplied")
        )
        result.payload_reuses = session.dfs.payload_reuses
        result.dfs_counters = (
            session.dfs.bytes_read,
            session.dfs.bytes_written,
            session.dfs.replica_bytes_written,
        )
        # snapshot after the counters: these reads are not part of the
        # measured run, and materializing lazy payloads here proves the
        # deferred bytes are identical too
        result.snapshot = {
            path: session.dfs.read_file(path) for path in session.dfs.list_paths()
        }
    return result


def run_exec_scale(n_rows: int, seed: int, reps: int = 4) -> Dict:
    """Measure one table size in all three modes and compare everything."""
    rows = generate_event_rows(n_rows, seed)
    queries = build_queries()
    results = _run_modes_interleaved(rows, queries, reps)
    batched, fast, legacy = results["batched"], results["fast"], results["legacy"]
    others = (fast, legacy)
    speedup = legacy.workflow_wall_s / max(batched.workflow_wall_s, 1e-9)
    batch_speedup = fast.workflow_wall_s / max(batched.workflow_wall_s, 1e-9)
    return {
        "n_rows": n_rows,
        "n_queries": len(queries),
        "modes": {mode: result.to_dict() for mode, result in results.items()},
        "speedup": round(speedup, 2),
        "batch_speedup": round(batch_speedup, 2),
        "outputs_identical": all(batched.snapshot == m.snapshot for m in others),
        "counters_identical": all(
            batched.job_counters == m.job_counters for m in others
        ),
        "dfs_counters_identical": all(
            batched.dfs_counters == m.dfs_counters for m in others
        ),
        "decisions_identical": all(batched.decisions == m.decisions for m in others),
    }


def run_exec_sim_benchmark(
    scales: Optional[Tuple[int, ...]] = None,
    seed: int = 13,
    quick: bool = False,
) -> Dict:
    """The full exec_sim section: every scale, both planes."""
    if scales is None:
        scales = QUICK_EXEC_SCALES if quick else DEFAULT_EXEC_SCALES
    return {
        "benchmark": "exec_sim",
        "quick": quick,
        "seed": seed,
        "speedup_floor": SPEEDUP_FLOOR,
        "scales": [run_exec_scale(n, seed) for n in scales],
    }


def check_exec_sim_gates(payload: Optional[Dict]) -> List[str]:
    """CI regression gates over an exec_sim payload (empty = green):

    the batched plane must be >= 3x faster than legacy end to end at
    every scale and >= 1.5x faster than the per-row fast plane at the
    largest scale, with byte-identical DFS contents, value-identical
    job and DFS counters, an identical decision log across all three
    planes, and no copy-style store re-serializing on the fast tiers.
    """
    if not payload:
        return []
    failures = []
    scales = payload["scales"]
    largest = max((scale["n_rows"] for scale in scales), default=0)
    for scale in scales:
        n = scale["n_rows"]
        if not scale["outputs_identical"]:
            failures.append(f"exec_sim N={n}: DFS contents differ between planes")
        if not scale["counters_identical"]:
            failures.append(f"exec_sim N={n}: JobStats counters differ between planes")
        if not scale["dfs_counters_identical"]:
            failures.append(f"exec_sim N={n}: DFS byte counters differ between planes")
        if not scale["decisions_identical"]:
            failures.append(
                f"exec_sim N={n}: rewrite/elimination decisions differ between planes"
            )
        if scale["speedup"] < SPEEDUP_FLOOR:
            batched = scale["modes"]["batched"]
            legacy = scale["modes"]["legacy"]
            failures.append(
                f"exec_sim N={n}: speedup {scale['speedup']}x is below the "
                f"{SPEEDUP_FLOOR}x floor ({legacy['workflow_wall_s']}s legacy "
                f"vs {batched['workflow_wall_s']}s batched)"
            )
        if n == largest and scale["batch_speedup"] < BATCH_SPEEDUP_FLOOR:
            batched = scale["modes"]["batched"]
            fast = scale["modes"]["fast"]
            failures.append(
                f"exec_sim N={n}: batch speedup {scale['batch_speedup']}x is "
                f"below the {BATCH_SPEEDUP_FLOOR}x floor "
                f"({fast['workflow_wall_s']}s per-row vs "
                f"{batched['workflow_wall_s']}s batched)"
            )
        for mode_name in ("batched", "fast"):
            mode = scale["modes"][mode_name]
            if mode["payload_reuses"] < mode["copy_rewrites"]:
                failures.append(
                    f"exec_sim N={n}: {mode_name} plane re-serialized "
                    f"{mode['copy_rewrites'] - mode['payload_reuses']} of "
                    f"{mode['copy_rewrites']} copy-style stores"
                )
            if mode["copy_rewrites"] == 0:
                failures.append(
                    f"exec_sim N={n}: workload produced no whole-job copy "
                    f"rewrites on the {mode_name} plane; the payload-reuse "
                    "path was not exercised"
                )
    return failures
