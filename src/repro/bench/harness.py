"""Benchmark orchestration shared by the CLI and scripts/run_benchmarks.py.

Assembles the full ``BENCH_repo_scale.json`` payload — the indexed vs
full-scan matching trajectory, the ``service_throughput`` section, the
``exec_sim`` data-plane section, the ``subjob_enum`` enumeration
section, the ``repo_persistence`` durability section, and the
``incremental`` delta-recomputation section — runs the
regression gates, writes the file, and prints the summary.  Both
entry points (``python -m repro bench`` and
``python scripts/run_benchmarks.py``) are thin argument parsers over
:func:`run_benchmark_suite`.
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Optional, Tuple

from repro.bench.exec_sim import run_exec_sim_benchmark
from repro.bench.fault_resilience import run_fault_resilience
from repro.bench.incremental import run_incremental_benchmark
from repro.bench.payload_durability import run_payload_durability
from repro.bench.repo_persistence import run_repo_persistence_benchmark
from repro.bench.repo_scale import (
    check_gates,
    run_repo_scale_benchmark,
    run_service_benchmark,
)
from repro.bench.subjob_enum import run_subjob_enum_benchmark


def run_benchmark_suite(
    out: pathlib.Path,
    *,
    quick: bool = False,
    scales: Optional[Tuple[int, ...]] = None,
    n_probes: int = 20,
    seed: int = 13,
    service_scales: Optional[Tuple[int, ...]] = None,
    service_workers: Optional[Tuple[int, ...]] = None,
    service_jobs: Optional[int] = None,
    exec_scales: Optional[Tuple[int, ...]] = None,
    persistence_entries: Optional[int] = None,
    gate: bool = True,
) -> int:
    """Run everything, write *out*, print a summary; returns the
    process exit code (non-zero when a gate trips and *gate* is on)."""
    payload = run_repo_scale_benchmark(
        scales=scales,
        n_probes=n_probes,
        seed=seed,
        quick=quick,
    )
    payload["version"] = 9
    # exec_sim runs before the service benchmark: its wall-time gate is
    # the noise-sensitive one, so it gets the freshest process state
    payload["exec_sim"] = run_exec_sim_benchmark(
        scales=exec_scales,
        seed=seed,
        quick=quick,
    )
    payload["subjob_enum"] = run_subjob_enum_benchmark()
    payload["repo_persistence"] = run_repo_persistence_benchmark(
        n_entries=persistence_entries,
        n_probes=n_probes,
        seed=seed,
        quick=quick,
    )
    payload["payload_durability"] = run_payload_durability(
        seed=seed,
        quick=quick,
    )
    payload["incremental"] = run_incremental_benchmark(
        seed=seed,
        quick=quick,
    )
    payload["service_throughput"] = run_service_benchmark(
        scales=service_scales,
        n_jobs=service_jobs,
        workers=service_workers,
        seed=seed,
        quick=quick,
    )
    # the fault storm runs last: it spawns/kills worker processes and
    # sleeps through backoffs, so its noise must not land inside the
    # wall-time-gated sections above
    payload["fault_resilience"] = run_fault_resilience(seed=seed)
    failures = check_gates(payload)
    payload["gates"] = {
        "passed": not failures,
        "failures": failures,
    }
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    for scale in payload["scales"]:
        indexed = scale["modes"]["indexed"]
        full = scale["modes"]["full_scan"]
        print(
            f"  N={scale['n_entries']:>5}: "
            f"{indexed['traversals']:>6} vs {full['traversals']:>6} "
            f"traversals ({scale['traversal_reduction']}x), "
            f"{indexed['mean_match_ms']:.3f}ms vs "
            f"{full['mean_match_ms']:.3f}ms per match, "
            f"decisions identical={scale['decisions_identical']}"
        )
    for scale in payload["service_throughput"]["scales"]:
        runs = ", ".join(
            f"{run['workers']}w={run['jobs_per_sec']:.0f}/s"
            for run in scale["workers"]
        )
        print(
            f"  service N={scale['n_entries']:>5}: "
            f"serial={scale['serial']['jobs_per_sec']:.0f}/s, {runs}, "
            f"1-worker identical={scale['one_worker_decisions_identical']}"
        )
    process_lane = payload["service_throughput"].get("process_lane") or {}
    for scale in process_lane.get("scales", []):
        runs = ", ".join(
            f"{run['workers']}w={run['jobs_per_sec']:.0f}/s"
            for run in scale["workers"]
        )
        speedup = scale["speedup_4v1"]
        scaling = (
            f"{speedup}x 4v1" if speedup is not None else "4v1 not measured"
        )
        if scale["cpus"] < 4:
            scaling += f" (gate off: {scale['cpus']} cpu)"
        print(
            f"  processes N={scale['n_entries']:>5}: "
            f"serial={scale['serial']['jobs_per_sec']:.0f}/s, {runs}, "
            f"{scaling}, 1-worker-process identical="
            f"{scale['one_worker_decisions_identical']}"
        )
    for scale in payload["exec_sim"]["scales"]:
        batched = scale["modes"]["batched"]
        fast = scale["modes"]["fast"]
        legacy = scale["modes"]["legacy"]
        identical = (
            scale["outputs_identical"]
            and scale["counters_identical"]
            and scale["dfs_counters_identical"]
            and scale["decisions_identical"]
        )
        print(
            f"  exec_sim N={scale['n_rows']:>6}: "
            f"batched={batched['workflow_wall_s']:.3f}s vs "
            f"row={fast['workflow_wall_s']:.3f}s vs "
            f"legacy={legacy['workflow_wall_s']:.3f}s "
            f"({scale['speedup']}x legacy, {scale['batch_speedup']}x row, "
            f"{batched['rows_per_sec']:,.0f} rows/s, "
            f"{batched['payload_reuses']} payload reuses), "
            f"identical={identical}"
        )
    for scale in payload["subjob_enum"]["scales"]:
        print(
            f"  subjob_enum N={scale['n_anchors']:>5} anchors: "
            f"{scale['wall_s']:.3f}s, "
            f"{scale['candidates_per_sec']:,.0f} candidates/s "
            f"({scale['candidates']} injected)"
        )
    for scale in payload["repo_persistence"]["scales"]:
        print(
            f"  persistence N={scale['n_entries']:>5}: "
            f"restore={scale['restore_s']:.3f}s vs "
            f"rebuild={scale['rebuild_s']:.3f}s "
            f"({scale['cold_start_speedup']}x cold start), "
            f"decisions identical={scale['decisions_identical']}, "
            f"torn tail recovered="
            f"{scale['torn_tail']['torn_tail_recovered']}"
        )

    durability = payload["payload_durability"]
    sweep = durability["byte_sweep"]
    warm = durability["warm_restart"]
    print(
        f"  payload_durability: {sweep['boundaries']} crash boundaries "
        f"swept over {sweep['block_bytes']} block-store bytes, "
        f"{sweep['condemned_total']} condemnation(s), "
        f"{len(sweep['violations'])} violation(s); warm restart "
        f"{warm['warm_jobs']} job(s) executed "
        f"(cold {warm['cold_jobs']}), outputs identical="
        f"{warm['outputs_identical'] and warm['served_bytes_identical']}"
    )

    for scale in payload["incremental"]["scales"]:
        print(
            f"  incremental N={scale['n_rows']:>6} rows "
            f"(+{scale['tail_rows']}): "
            f"delta={scale['delta_s']:.3f}s vs "
            f"full={scale['full_s']:.3f}s "
            f"({scale['delta_speedup']}x), "
            f"{scale['delta_refreshes']} refresh(es), "
            f"outputs identical={scale['outputs_identical']}, "
            f"shuffle fallback ok={scale['group_fallbacks'] >= 1}"
        )

    faultline = payload["fault_resilience"]
    storm_stats = faultline["storm"]["stats"]
    print(
        f"  fault_resilience: {faultline['storm_fired']} fault(s) fired, "
        f"{storm_stats['retried']} retried, {storm_stats['timeouts']} "
        f"timeout(s), {storm_stats['quarantined_entries']} quarantined, "
        f"{storm_stats['promotions']} promotion(s), "
        f"{storm_stats['breaker_trips']} breaker trip(s); "
        f"p99 {faultline['storm']['p99_s']:.2f}s vs baseline "
        f"{faultline['baseline']['p99_s']:.2f}s "
        f"(bound {faultline['p99_bound_s']:.2f}s), "
        f"checks passed={all(faultline['checks'].values())}"
    )

    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        if gate:
            return 1
    else:
        print("all gates passed")
    return 0


def add_benchmark_arguments(parser) -> None:
    """Install the shared benchmark flags on an argparse parser."""
    from repro.bench.repo_scale import DEFAULT_SCALES, QUICK_SCALES

    def int_tuple(text: str) -> Tuple[int, ...]:
        return tuple(int(x) for x in text.split(","))

    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"CI smoke mode: scales {QUICK_SCALES}, fewer probes/jobs",
    )
    parser.add_argument(
        "--scales",
        type=int_tuple,
        default=None,
        help=f"comma-separated repository sizes (default {DEFAULT_SCALES})",
    )
    parser.add_argument("--probes", type=int, default=20)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--service-scales",
        type=int_tuple,
        default=None,
        help="repository sizes for the service-throughput benchmark",
    )
    parser.add_argument(
        "--service-workers",
        type=int_tuple,
        default=None,
        help="worker-pool sizes to measure (default 1,4,8)",
    )
    parser.add_argument(
        "--service-jobs",
        type=int,
        default=None,
        help="probe jobs per service-throughput run "
        "(default 60, or 24 with --quick)",
    )
    parser.add_argument(
        "--exec-scales",
        type=int_tuple,
        default=None,
        help="events-table row counts for the exec_sim data-plane "
        "benchmark (default 6000,20000; 2000,20000 with --quick — "
        "quick keeps the large scale because the batch-speedup gate "
        "applies there)",
    )
    parser.add_argument(
        "--persistence-entries",
        type=int,
        default=None,
        help="repository size for the repo_persistence cold-start "
        "benchmark (default 10000; kept at full scale even with "
        "--quick because the ≥10x gate applies there)",
    )
    parser.add_argument(
        "--no-gate",
        action="store_true",
        help="record results without failing on gate regressions",
    )


def run_from_args(args, out: pathlib.Path) -> int:
    """Bridge argparse namespaces onto :func:`run_benchmark_suite`."""
    return run_benchmark_suite(
        out,
        quick=args.quick,
        scales=args.scales,
        n_probes=args.probes,
        seed=args.seed,
        service_scales=args.service_scales,
        service_workers=args.service_workers,
        service_jobs=args.service_jobs,
        exec_scales=args.exec_scales,
        persistence_entries=args.persistence_entries,
        gate=not args.no_gate,
    )
