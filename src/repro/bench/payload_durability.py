"""Payload-durability benchmark: every-byte crash sweep + warm restart.

The block store's claim is absolute: *no* crash point can leave the
repository serving an entry whose output bytes are missing or corrupt,
and a warm restart serves stored results without executing anything.
This section proves both halves and gates them in CI:

* ``byte_sweep`` — persist a populated repository, then truncate the
  block-store segment file at **every byte boundary** (simulating a
  crash mid-append at each offset) and recover into a fresh DFS each
  time.  At every cut, each surviving entry must serve byte-identical
  payloads and each lost payload must be condemned by the scrub —
  survivors ∪ condemned must exactly cover the registered entries;
* ``scrub`` — condemnations must be journaled (``entry_quarantined``)
  so a second recovery replays them instead of re-deriving, and
  recovery must be idempotent;
* ``warm_restart`` — a cold session runs a real Pig script under a
  live persister and rotates a snapshot; a second session over a
  **fresh DFS** recovers from it and re-runs the same script.  The
  warm run must execute **0 jobs** while serving byte-identical
  outputs, restored natively from the block store (no sidecar).

Gates (see :func:`check_payload_durability_gates`): zero sweep
violations, journaled + idempotent condemnations, 0 warm jobs with
identical outputs and served bytes.
"""

from __future__ import annotations

import tempfile
from typing import Dict, List

from repro.bench.repo_scale import build_repository, generate_entry_specs
from repro.core.manager import ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.persistence.blockstore import decode_blockstore
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    recover,
)

PV_SCHEMA = (
    "user, action:int, timestamp:int, est_revenue:double, "
    "page_info, page_links"
)

SCRIPT = f"""
A = load 'data/page_views' as ({PV_SCHEMA});
B = foreach A generate user, est_revenue;
C = group B by user;
D = foreach C generate group, SUM(B.est_revenue);
store D into 'out/daily';
"""

PAGE_VIEWS = "\n".join(
    f"user{i % 7}\t1\t{100 + i}\t{(i % 5) + 0.5}\tinfo\tlinks"
    for i in range(40)
)


def _config(workdir: str) -> PersistenceConfig:
    return PersistenceConfig(
        snapshot_path=f"{workdir}/repo.snap",
        journal_path=f"{workdir}/repo.journal",
        backend="local",
    )


def _payload_for(path: str) -> bytes:
    return f"payload:{path}".encode()


def run_byte_sweep(n_entries: int, seed: int) -> Dict:
    """Crash a block-store append at every byte boundary; recover."""
    with tempfile.TemporaryDirectory(prefix="restore-bench-") as workdir:
        config = _config(workdir)
        dfs = DistributedFileSystem(n_datanodes=2)
        manager = ReStoreManager(dfs)
        RepositoryPersister(manager, config)
        repo = build_repository(generate_entry_specs(n_entries, seed), seed)
        expected = set()
        for entry in repo.entries():
            dfs.write_file(entry.output_path, _payload_for(entry.output_path))
            manager.repository.add(entry)
            expected.add(entry.output_path)

        block_file = config.blockstore_file(0)
        block_bytes = config.blockstore_storage(None, 0).read()
        journal_bytes = config.journal_storage().read()
        assert not decode_blockstore(block_bytes).torn

        violations: List[str] = []
        condemned_total = 0
        boundaries = len(block_bytes) + 1
        for cut in range(boundaries):
            # rewind the lane (recovery repairs + journals in place),
            # then crash the append at byte *cut*
            with open(config.journal_path, "wb") as fh:
                fh.write(journal_bytes)
            with open(block_file, "wb") as fh:
                fh.write(block_bytes[:cut])
            fresh = DistributedFileSystem(n_datanodes=2)
            recovered = recover(config, fresh)
            survivors = {
                e.output_path for e in recovered.repository.entries()
            }
            condemned = {p for _, p, _ in recovered.payloads_condemned}
            condemned_total += len(condemned)
            if survivors | condemned != expected:
                violations.append(
                    f"cut={cut}: entries lost without condemnation "
                    f"({sorted(expected - survivors - condemned)})"
                )
            if survivors & condemned:
                violations.append(
                    f"cut={cut}: entry both served and condemned"
                )
            for path in survivors:
                if fresh.read_file(path) != _payload_for(path):
                    violations.append(
                        f"cut={cut}: corrupt payload served for {path}"
                    )

        # scrub condemnations are journaled: recovering twice after a
        # mid-file cut replays them instead of re-deriving
        with open(config.journal_path, "wb") as fh:
            fh.write(journal_bytes)
        with open(block_file, "wb") as fh:
            fh.write(block_bytes[: len(block_bytes) // 2])
        once = recover(config, DistributedFileSystem(n_datanodes=2))
        twice = recover(config, DistributedFileSystem(n_datanodes=2))
        journaled = len(once.payloads_condemned) > 0
        idempotent = twice.payloads_condemned == [] and sorted(
            e.entry_id for e in twice.repository.entries()
        ) == sorted(e.entry_id for e in once.repository.entries())

        return {
            "n_entries": n_entries,
            "block_bytes": len(block_bytes),
            "boundaries": boundaries,
            "condemned_total": condemned_total,
            "violations": violations,
            "scrub": {
                "condemnations_journaled": journaled,
                "replay_idempotent": idempotent,
            },
        }


def run_warm_restart(seed: int) -> Dict:
    """Cold run + snapshot rotation, then a warm restart on a fresh
    DFS: 0 jobs executed, byte-identical outputs from the block store."""
    from repro.session import ReStoreSession

    with tempfile.TemporaryDirectory(prefix="restore-bench-") as workdir:
        config = _config(workdir)

        cold_dfs = DistributedFileSystem(n_datanodes=2)
        cold_dfs.write_file("data/page_views", PAGE_VIEWS + "\n")
        cold_session = (
            ReStoreSession.builder().dfs(cold_dfs).persistence(config).build()
        )
        cold = cold_session.run(SCRIPT, name="bench_payload")
        cold_session.persister.take_snapshot()
        stored_bytes = cold_dfs.read_file("out/daily")

        warm_dfs = DistributedFileSystem(n_datanodes=2)
        warm_dfs.write_file("data/page_views", PAGE_VIEWS + "\n")
        warm_session = (
            ReStoreSession.builder().dfs(warm_dfs).persistence(config).build()
        )
        warm = warm_session.run(SCRIPT, name="bench_payload")

        return {
            "cold_jobs": cold.stats.n_jobs_executed,
            "warm_jobs": warm.stats.n_jobs_executed,
            "outputs_identical": sorted(warm.outputs["out/daily"])
            == sorted(cold.outputs["out/daily"]),
            "served_bytes_identical": (
                warm_dfs.read_file("out/daily") == stored_bytes
            ),
        }


def run_payload_durability(seed: int = 13, quick: bool = False) -> Dict:
    n_entries = 4 if quick else 8
    return {
        "seed": seed,
        "byte_sweep": run_byte_sweep(n_entries, seed),
        "warm_restart": run_warm_restart(seed),
    }


def check_payload_durability_gates(section) -> List[str]:
    """CI gates over the payload-durability section (empty = green):

    * the every-byte crash sweep must report zero violations — no cut
      leaves an entry referencing a missing or corrupt payload, and
      no payload is lost without a scrub condemnation;
    * condemnations must be journaled and recovery replay-idempotent;
    * the warm restart must execute 0 jobs with byte-identical outputs
      served from the block store.
    """
    if not section:
        return []
    failures = []
    sweep = section["byte_sweep"]
    for violation in sweep["violations"]:
        failures.append(f"payload_durability byte sweep: {violation}")
    if sweep["boundaries"] < sweep["block_bytes"] + 1:
        failures.append(
            "payload_durability: the byte sweep did not cover every "
            f"boundary ({sweep['boundaries']} of "
            f"{sweep['block_bytes'] + 1})"
        )
    if not sweep["scrub"]["condemnations_journaled"]:
        failures.append(
            "payload_durability: scrub condemnations were not journaled"
        )
    if not sweep["scrub"]["replay_idempotent"]:
        failures.append(
            "payload_durability: a second recovery diverged from the "
            "first (condemnation replay is not idempotent)"
        )
    warm = section["warm_restart"]
    if warm["cold_jobs"] < 1:
        failures.append(
            "payload_durability: the cold run executed no jobs — the "
            "warm-restart lane measured nothing"
        )
    if warm["warm_jobs"] != 0:
        failures.append(
            f"payload_durability: warm restart executed "
            f"{warm['warm_jobs']} job(s), expected 0"
        )
    if not warm["outputs_identical"]:
        failures.append(
            "payload_durability: warm-restart outputs differ from the "
            "cold run"
        )
    if not warm["served_bytes_identical"]:
        failures.append(
            "payload_durability: the warm restart served different "
            "bytes than the block store persisted"
        )
    return failures


__all__ = [
    "check_payload_durability_gates",
    "run_payload_durability",
]
