"""Fault-resilience benchmark: a seeded storm against the self-healing
JobService, differentially gated against a fault-free twin.

Two identical single-worker process-mode services — standby armed,
retries budgeted, exchange timeout set — recover the same seeded
repository from the same snapshot and drive the same probe stream.
One runs clean (the baseline); the other runs under
:func:`~repro.faults.plan.storm_plan` plus one entry-corruption rule:
a worker crash, a hung worker, a journal-error window (circuit breaker
trips then recovers on probe), one unreadable stored plan
(quarantined), and a sticky coordinator kill late in the run (the
standby promotes).

Gates (see :func:`check_fault_resilience_gates`):

* **zero lost or duplicated entries** — the storm's final repository
  recovers byte-identically from its own snapshot + journal, replaying
  twice changes nothing, and it equals the baseline's final entry set
  minus exactly the quarantined entries;
* **decision parity modulo quarantine** — every job whose decision log
  diverges from the baseline diverges because the baseline's decision
  used a quarantined entry;
* **the storm actually stormed** — ≥1 timeout kill, ≥2 retries, ≥1
  breaker trip *and* recovery, exactly 1 promotion, exactly 1
  quarantined entry;
* **bounded p99 inflation** — the storm's p99 job latency stays under
  ``baseline_p99 * 5 + 3 * (exchange_timeout + backoff_cap) + slack``;
  a broken exchange timeout (hung worker sleeping its full
  ``hang_seconds``) blows this bound by construction.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.repo_scale import (
    _service_workload,
    build_repository,
    generate_entry_specs,
    generate_probe_specs,
    prepare_service_dfs,
)
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import EntryQuarantined, PersistenceRecovered
from repro.faults import injector as faults
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule, StormSpec, storm_plan
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    recover,
)

DEFAULT_FAULT_ENTRIES = 200
DEFAULT_FAULT_JOBS = 18
#: the hang must dwarf the p99 bound so a broken exchange timeout
#: (worker sleeps the full hang) cannot slip under the latency gate
STORM_HANG_SECONDS = 12.0
EXCHANGE_TIMEOUT_S = 0.75
BACKOFF_CAP_S = 0.2


def _percentile(values: Sequence[float], q: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def _service_config():
    from repro.service import ServiceConfig

    return ServiceConfig(
        executor="processes",
        max_workers=1,
        retries=3,
        exchange_timeout=EXCHANGE_TIMEOUT_S,
        backoff_base_s=0.01,
        backoff_cap_s=BACKOFF_CAP_S,
        standby=True,
        heartbeat_misses=2,
    )


def _seed_state(workdir: str, entry_specs, seed: int) -> str:
    """Build the repository once and persist it as a snapshot, so both
    lanes recover the *same* LazyPlan-backed entries from disk — the
    corruption rule targets the materialization of stored plans, which
    only exists on the recovery path."""
    seed_dir = os.path.join(workdir, "seed")
    os.makedirs(seed_dir, exist_ok=True)
    config = PersistenceConfig(
        backend="local",
        snapshot_path=os.path.join(seed_dir, "repository.snapshot"),
        journal_path=os.path.join(seed_dir, "repository.journal"),
    )
    repository = build_repository(entry_specs, seed)
    repository.ordered_entries()
    dfs = DistributedFileSystem(n_datanodes=2)
    manager = ReStoreManager(
        dfs,
        repository=repository,
        config=ReStoreConfig(inject_enabled=False, register_whole_jobs="none"),
    )
    persister = RepositoryPersister(manager, config)
    persister.take_snapshot()
    persister.close()
    return config.snapshot_path


def _lane_dir(workdir: str, label: str, seed_snapshot: str) -> PersistenceConfig:
    lane = os.path.join(workdir, label)
    os.makedirs(lane, exist_ok=True)
    config = PersistenceConfig(
        backend="local",
        snapshot_path=os.path.join(lane, "repository.snapshot"),
        journal_path=os.path.join(lane, "repository.journal"),
    )
    shutil.copyfile(seed_snapshot, config.snapshot_path)
    return config


def _run_lane(
    label: str,
    persistence: PersistenceConfig,
    entry_specs,
    probe_specs,
    plan: Optional[FaultPlan],
) -> Dict:
    """Drive the probe stream through one self-healing service."""
    from repro.service import JobService

    dfs = DistributedFileSystem(n_datanodes=2)
    prepare_service_dfs(dfs, entry_specs, probe_specs)
    # a prior lane or seed sweep must not bleed its FaultClock hit
    # counters or fired log into this lane: rules scheduled for hit 1
    # would silently never fire again
    leftover = faults.active()
    if leftover is not None:
        leftover.reset()
        faults.uninstall()
    if plan is not None:
        faults.install(FaultInjector(plan))
    try:
        service = JobService(
            dfs=dfs,
            persistence=persistence,
            config=ReStoreConfig(
                inject_enabled=False, register_whole_jobs="none"
            ),
            service=_service_config(),
        )
        recovered_events = []
        service.persister.events.subscribe(
            lambda e: recovered_events.append(e),
            event_types=(PersistenceRecovered,),
        )
        session = service.open_session("bench")
        latencies: List[float] = []
        decisions: List[Tuple[str, ...]] = []
        quarantined: Dict[str, str] = {}
        for builder in _service_workload(probe_specs, f"bench/fault/{label}"):
            workflow = builder()
            started = time.perf_counter()
            outcome = session.submit_workflow(workflow).result()
            latencies.append(time.perf_counter() - started)
            decisions.append(outcome.decisions)
            for event in outcome.events:
                if isinstance(event, EntryQuarantined):
                    quarantined[event.entry_id] = event.output_path
        final_ids = sorted(
            entry.entry_id for entry in service.repository.entries()
        )
        stats = service.stats
        breaker_open = (
            service.persister.breaker_open
            if service.persister is not None
            else False
        )
        fired = list(faults.active().fired) if plan is not None else []
        service.shutdown(wait=True)
    finally:
        if plan is not None:
            faults.uninstall()
    once = recover(persistence)
    twice = recover(persistence)
    return {
        "label": label,
        "latencies_s": [round(v, 5) for v in latencies],
        "p50_s": round(_percentile(latencies, 0.50), 5),
        "p99_s": round(_percentile(latencies, 0.99), 5),
        "decisions": [list(d) for d in decisions],
        "final_entry_ids": final_ids,
        "recovered_entry_ids": sorted(
            entry.entry_id for entry in once.repository.entries()
        ),
        "recovered_twice_entry_ids": sorted(
            entry.entry_id for entry in twice.repository.entries()
        ),
        "quarantined": quarantined,
        "stats": {
            "completed": stats.completed,
            "retried": stats.retried,
            "timeouts": stats.timeouts,
            "quarantined_entries": stats.quarantined_entries,
            "promotions": stats.promotions,
            "breaker_trips": stats.breaker_trips,
        },
        "breaker_open_at_end": breaker_open,
        "persistence_recoveries": len(recovered_events),
        "fired": [list(entry) for entry in fired],
    }


def _divergence_attributable(
    baseline: List[List[str]],
    storm: List[List[str]],
    quarantined: Dict[str, str],
) -> bool:
    """Every job whose storm decisions differ from the baseline's must
    differ *because of* quarantine: the baseline's decision lines for
    that job mention a quarantined entry (by id or stored path)."""
    markers = set(quarantined) | set(quarantined.values())
    for base_lines, storm_lines in zip(baseline, storm):
        if base_lines == storm_lines:
            continue
        if not any(
            marker in line for line in base_lines for marker in markers
        ):
            return False
    return len(baseline) == len(storm)


def run_fault_resilience(
    n_entries: int = DEFAULT_FAULT_ENTRIES,
    n_jobs: int = DEFAULT_FAULT_JOBS,
    seed: int = 13,
) -> Dict:
    """The full differential: fault-free baseline, then the seeded
    storm, over identical recovered repositories and probe streams."""
    entry_specs = generate_entry_specs(n_entries, seed)
    probe_specs = generate_probe_specs(entry_specs, n_jobs, seed)
    storm = storm_plan(
        StormSpec(seed=seed, n_jobs=n_jobs, hang_seconds=STORM_HANG_SECONDS)
    ).with_rules(
        # one stored plan turns unreadable the first time a match needs
        # to materialize it: condemned, journaled, served as a miss
        FaultRule(site="snapshot.materialize", action="raise", hits=(1,))
    )

    workdir = tempfile.mkdtemp(prefix="restore-faults-")
    try:
        seed_snapshot = _seed_state(workdir, entry_specs, seed)
        baseline = _run_lane(
            "baseline",
            _lane_dir(workdir, "baseline", seed_snapshot),
            entry_specs,
            probe_specs,
            plan=None,
        )
        stormy = _run_lane(
            "storm",
            _lane_dir(workdir, "storm", seed_snapshot),
            entry_specs,
            probe_specs,
            plan=storm,
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    quarantined = stormy["quarantined"]
    expected_after_quarantine = sorted(
        entry_id
        for entry_id in baseline["final_entry_ids"]
        if entry_id not in quarantined
    )
    p99_bound = round(
        baseline["p99_s"] * 5.0
        + 3.0 * (EXCHANGE_TIMEOUT_S + BACKOFF_CAP_S)
        + 3.0,
        5,
    )
    stats = stormy["stats"]
    checks = {
        "no_lost_or_dup": (
            stormy["recovered_entry_ids"] == stormy["final_entry_ids"]
            and len(set(stormy["final_entry_ids"]))
            == len(stormy["final_entry_ids"])
        ),
        "replay_idempotent": (
            stormy["recovered_twice_entry_ids"]
            == stormy["recovered_entry_ids"]
        ),
        "entries_match_modulo_quarantine": (
            stormy["final_entry_ids"] == expected_after_quarantine
        ),
        "decision_parity_modulo_quarantine": _divergence_attributable(
            baseline["decisions"], stormy["decisions"], quarantined
        ),
        "promotion": stats["promotions"] == 1,
        "quarantine_count": (
            stats["quarantined_entries"] == 1 and len(quarantined) == 1
        ),
        "timeouts_seen": stats["timeouts"] >= 1,
        "retries_seen": stats["retried"] >= 2,
        "breaker_tripped_and_recovered": (
            stats["breaker_trips"] >= 1
            and stormy["persistence_recoveries"] >= 1
            and not stormy["breaker_open_at_end"]
        ),
        "p99_bounded": stormy["p99_s"] <= p99_bound,
        "baseline_clean": all(
            value == 0
            for key, value in baseline["stats"].items()
            if key != "completed"
        ),
    }
    return {
        "n_entries": n_entries,
        "n_jobs": n_jobs,
        "seed": seed,
        "storm_rules": len(storm),
        "storm_fired": len(stormy["fired"]),
        "baseline": baseline,
        "storm": stormy,
        "quarantined_ids": sorted(quarantined),
        "p99_bound_s": p99_bound,
        "checks": checks,
    }


def check_fault_resilience_gates(section: Dict) -> List[str]:
    """CI gates over one :func:`run_fault_resilience` payload."""
    failures = []
    for name, passed in section.get("checks", {}).items():
        if not passed:
            failures.append(f"fault_resilience: check {name!r} failed")
    # worker-side fires (crash, hang) are logged inside the worker
    # processes; the coordinator's log must still show the corruption,
    # the journal window, and the sticky kill
    if section.get("storm_fired", 0) < 4:
        failures.append(
            "fault_resilience: coordinator logged "
            f"{section.get('storm_fired', 0)} fault firing(s), expected "
            ">= 4 (materialize, journal window, kill)"
        )
    return failures


__all__ = [
    "DEFAULT_FAULT_ENTRIES",
    "DEFAULT_FAULT_JOBS",
    "check_fault_resilience_gates",
    "run_fault_resilience",
]
