"""Durability benchmark: snapshot cold start vs rebuild-by-re-registration.

The persistence subsystem's whole value proposition is that a restarted
service reaches "warm repository, identical decisions" far faster than
replaying registrations.  This section measures exactly that claim at
repository scale and gates it in CI:

* ``rebuild`` — the historical cold-start path: parse the legacy
  entries-only JSON dump, re-register every entry through
  :meth:`~repro.core.repository.Repository.add_batch` (which re-runs
  fingerprinting and the §3 subsumption traversals), then order;
* ``restore`` — :meth:`Repository.restore` over the binary snapshot:
  positional rows rebuild the inverted indexes directly and the
  persisted order is installed verbatim, so zero matcher traversals
  are spent.

Gates (see :func:`check_repo_persistence_gates`):

* restore must be **≥10x faster** than rebuild at the measured scale;
* a manager over the restored repository must produce **byte-identical
  rewrite decisions** (same entries, same order, same rewritten-plan
  fingerprints) to one over the original;
* restoring must spend **zero subsumption traversals** (the persisted
  order is trusted, not recomputed);
* a journal with a **torn tail** (mid-flush crash) must recover every
  intact record and drop only the torn bytes.
"""

from __future__ import annotations

import gc
import json
import time
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.bench.repo_scale import (
    build_repository,
    generate_entry_specs,
    generate_probe_specs,
    _probe_job,
)
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository, RepositoryEntry
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import JobEliminated, RewriteApplied
from repro.persistence.journal import decode_journal, encode_record
from repro.persistence.snapshot import RepositorySnapshot, entry_record

DEFAULT_PERSISTENCE_SCALE = 10_000
#: the cold-start gate is the point of this section, so quick mode
#: keeps the full scale and trims only the probe stream
QUICK_PERSISTENCE_SCALE = 10_000


@contextmanager
def _quiesced_gc():
    """Keep the collector out of the timed region: both sides allocate
    millions of short-lived objects, and a collection landing inside
    one mode but not the other would skew the speedup either way."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _legacy_dump(repository: Repository) -> str:
    """The pre-snapshot persistence format: an entries-only JSON
    document (pretty-printed, as the old helper wrote it)."""
    return json.dumps(
        {"entries": [e.to_dict() for e in repository.entries()]}, indent=2
    )


def _rebuild_from_legacy(text: str) -> Repository:
    data = json.loads(text)
    repository = Repository()
    repository.add_batch(
        RepositoryEntry.from_dict(record) for record in data["entries"]
    )
    repository.ordered_entries()
    return repository


def _restore_from_snapshot(data: bytes) -> Repository:
    repository = RepositorySnapshot.from_bytes(data).restore_repository()
    repository.ordered_entries()
    return repository


def _decision_log(repository: Repository, probe_specs) -> List[Tuple]:
    """Match the probe stream against *repository*; the log is the
    equivalence oracle between the original and the restored state."""
    dfs = DistributedFileSystem(n_datanodes=2)
    manager = ReStoreManager(
        dfs,
        repository=repository,
        config=ReStoreConfig(inject_enabled=False, register_whole_jobs="none"),
    )
    log: List[tuple] = []
    decisions: List[Tuple] = []
    manager.events.subscribe(
        lambda e: log.append((type(e).__name__, e.entry_id, e.output_path)),
        event_types=(RewriteApplied, JobEliminated),
    )
    for spec in probe_specs:
        job, workflow = _probe_job(spec)
        log.clear()
        manager.before_job(job, workflow)
        decisions.append((spec.index, tuple(log), job.plan.fingerprint()))
        manager.drain()
        manager.on_workflow_end(workflow)
    return decisions


def _torn_tail_trial(snapshot_bytes: bytes, specs) -> Dict:
    """Simulate a mid-flush crash: journal three additions, tear the
    last record's frame in half, and recover.  Every intact record
    must survive; the torn bytes must be detected and dropped."""
    extra = build_repository(specs, seed=91)
    records = []
    for i, entry in enumerate(extra.entries()):
        record = entry_record(entry)
        # ids/paths past the snapshot's range: these journal records
        # must land as *new* entries, not same-id replacements
        record["entry_id"] = f"entry_{9_000_000 + i}"
        records.append(
            encode_record({"type": "entry_added", "entry": record})
        )
    intact, torn = records[:-1], records[-1]
    journal_bytes = b"".join(intact) + torn[: len(torn) // 2]
    scan = decode_journal(journal_bytes)
    base = RepositorySnapshot.from_bytes(snapshot_bytes)
    restored = Repository.restore(base, journal=journal_bytes)
    recovered = (
        scan.torn
        and len(scan.records) == len(intact)
        and scan.torn_bytes == len(journal_bytes) - scan.clean_bytes
        and len(restored) == len(base) + len(intact)
    )
    return {
        "journal_records": len(records),
        "intact_records": len(scan.records),
        "torn_bytes": scan.torn_bytes,
        "recovered_entries": len(restored),
        "torn_tail_recovered": bool(recovered),
    }


def run_persistence_scale(
    n_entries: int, n_probes: int, seed: int = 13
) -> Dict:
    """Measure one repository size: snapshot, rebuild vs restore
    timings, decision equivalence, and torn-tail recovery."""
    specs = generate_entry_specs(n_entries, seed)
    probe_specs = generate_probe_specs(specs, n_probes, seed)
    original = build_repository(specs, seed)
    # flush the pending order before capturing, as a session quiescing
    # for a snapshot would: the persisted order is then complete and
    # the restore side owes zero subsumption traversals
    original.ordered_entries()

    snapshot = RepositorySnapshot.capture(original)
    snapshot_bytes = snapshot.to_bytes()
    legacy_text = _legacy_dump(original)

    with _quiesced_gc():
        tick = time.perf_counter()
        rebuilt = _rebuild_from_legacy(legacy_text)
        rebuild_s = time.perf_counter() - tick

    restore_runs = []
    restored = None
    for _ in range(3):
        with _quiesced_gc():
            tick = time.perf_counter()
            restored = _restore_from_snapshot(snapshot_bytes)
            restore_runs.append(time.perf_counter() - tick)
    restore_s = min(restore_runs)
    restore_subsume_checks = restored.index_stats.subsume_checks

    baseline_decisions = _decision_log(original, probe_specs)
    restored_decisions = _decision_log(restored, probe_specs)
    rebuilt_decisions = _decision_log(rebuilt, probe_specs)

    speedup = rebuild_s / restore_s if restore_s > 0 else float("inf")
    torn_specs = generate_entry_specs(3, seed + 7)
    return {
        "n_entries": n_entries,
        "n_probes": n_probes,
        "snapshot_bytes": len(snapshot_bytes),
        "legacy_json_bytes": len(legacy_text),
        "rebuild_s": round(rebuild_s, 4),
        "restore_s": round(restore_s, 4),
        "restore_runs_s": [round(r, 4) for r in restore_runs],
        "cold_start_speedup": round(speedup, 2),
        "restore_subsume_checks": restore_subsume_checks,
        "restored_entries": len(restored),
        "decisions_identical": restored_decisions == baseline_decisions,
        "rebuild_decisions_identical": rebuilt_decisions == baseline_decisions,
        "torn_tail": _torn_tail_trial(snapshot_bytes, torn_specs),
    }


def run_repo_persistence_benchmark(
    n_entries: Optional[int] = None,
    n_probes: int = 20,
    seed: int = 13,
    quick: bool = False,
) -> Dict:
    """The durability section of the benchmark payload."""
    if n_entries is None:
        n_entries = (
            QUICK_PERSISTENCE_SCALE if quick else DEFAULT_PERSISTENCE_SCALE
        )
    if quick:
        n_probes = min(n_probes, 8)
    return {
        "seed": seed,
        "scales": [run_persistence_scale(n_entries, n_probes, seed)],
    }


def check_repo_persistence_gates(section: Optional[Dict]) -> List[str]:
    """CI gates over a ``repo_persistence`` payload section."""
    if not section:
        return []
    failures = []
    for scale in section["scales"]:
        n = scale["n_entries"]
        if scale["cold_start_speedup"] < 10.0:
            failures.append(
                f"persistence N={n}: snapshot cold start is only "
                f"{scale['cold_start_speedup']}x faster than rebuild "
                f"({scale['restore_s']}s vs {scale['rebuild_s']}s) — "
                f"below the 10x target"
            )
        if not scale["decisions_identical"]:
            failures.append(
                f"persistence N={n}: restored repository's rewrite "
                f"decisions diverge from the original"
            )
        if scale["restore_subsume_checks"] != 0:
            failures.append(
                f"persistence N={n}: restore spent "
                f"{scale['restore_subsume_checks']} subsumption "
                f"traversals; the persisted order must be trusted"
            )
        if not scale["torn_tail"]["torn_tail_recovered"]:
            failures.append(
                f"persistence N={n}: torn journal tail was not "
                f"detected/recovered cleanly"
            )
    return failures
