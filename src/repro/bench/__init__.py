"""Scale/performance benchmark harnesses (distinct from the paper-
figure benchmarks under ``benchmarks/``, which reproduce results; these
measure the implementation itself and feed the CI perf gates)."""

from repro.bench.repo_scale import (
    run_repo_scale_benchmark,
    run_service_benchmark,
    run_service_throughput,
)

__all__ = [
    "run_repo_scale_benchmark",
    "run_service_benchmark",
    "run_service_throughput",
]
