"""Scale/performance benchmark harnesses (distinct from the paper-
figure benchmarks under ``benchmarks/``, which reproduce results; these
measure the implementation itself and feed the CI perf gates)."""

from repro.bench.exec_sim import check_exec_sim_gates, run_exec_sim_benchmark
from repro.bench.fault_resilience import (
    check_fault_resilience_gates,
    run_fault_resilience,
)
from repro.bench.repo_scale import (
    run_repo_scale_benchmark,
    run_service_benchmark,
    run_service_throughput,
)

__all__ = [
    "check_exec_sim_gates",
    "check_fault_resilience_gates",
    "run_exec_sim_benchmark",
    "run_fault_resilience",
    "run_repo_scale_benchmark",
    "run_service_benchmark",
    "run_service_throughput",
]
