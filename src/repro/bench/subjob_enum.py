"""Sub-job enumeration + injection benchmark (paper §4, Figure 8).

The ROADMAP names sub-job enumeration as the remaining unmeasured hot
path: every submitted job pays one ``enumerate_and_inject`` pass —
heuristic classification over the whole plan, sub-plan extraction per
anchor, and Split+Store splicing — before it runs, so a slow
enumerator taxes the entire service.  This benchmark times that pass
over a stream of PigMix-shaped jobs totalling N heuristic anchors
(N ∈ {100, 1000} by default) and reports wall time plus anchors- and
candidates-per-second, emitted as the ``subjob_enum`` section of
``BENCH_repo_scale.json``.

Each generated job is the ``load → filter → project → group →
aggregate → store`` pipeline the repo-scale benchmark uses, which the
aggressive heuristic anchors at four operators; the aggregate foreach
feeds the store directly, so injection materializes three candidates
per job.  The gate (:func:`check_subjob_enum_gates`) is a correctness
check — every expected candidate must be enumerated — with the
throughput figures recorded as trajectory, not gated (wall time at
these sizes is noise-dominated in CI).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.bench.repo_scale import SHAPES, EntrySpec, _pipeline_ops
from repro.core.enumerator import SubJobEnumerator
from repro.core.heuristics import heuristic_by_name
from repro.mapreduce.job import MapReduceJob
from repro.pig.physical.operators import POStore
from repro.pig.physical.plan import linear_plan

#: operators the aggressive heuristic anchors in one generated job
ANCHORS_PER_JOB = 4
#: anchors whose output already feeds a store are not injected
CANDIDATES_PER_JOB = 3

DEFAULT_ANCHOR_SCALES = (100, 1000)

ROW_SCHEMA_SHAPE = SHAPES[-1]  # "aggregate": the full pipeline


def _enum_jobs(n_jobs: int) -> List[MapReduceJob]:
    """Fresh jobs (injection mutates plans) over distinct datasets."""
    jobs = []
    for index in range(n_jobs):
        spec = EntrySpec(
            index=index,
            dataset=f"bench/enum/ds{index:05d}",
            threshold=1 + index % 37,
            shape=ROW_SCHEMA_SHAPE,
        )
        ops = _pipeline_ops(spec, ROW_SCHEMA_SHAPE)
        ops.append(POStore(f"bench/enum/out{index:05d}", ops[-1].schema))
        jobs.append(MapReduceJob(linear_plan(*ops), job_id=f"enum_{index:05d}"))
    return jobs


def run_subjob_enum_scale(n_anchors: int) -> Dict:
    """Time enumeration + injection over jobs totalling *n_anchors*."""
    n_jobs = max(1, n_anchors // ANCHORS_PER_JOB)
    jobs = _enum_jobs(n_jobs)
    enumerator = SubJobEnumerator(heuristic_by_name("aggressive"))
    candidates = 0
    started = time.perf_counter()
    for job in jobs:
        candidates += len(enumerator.enumerate_and_inject(job))
    wall_s = time.perf_counter() - started
    anchors = n_jobs * ANCHORS_PER_JOB
    return {
        "n_anchors": anchors,
        "n_jobs": n_jobs,
        "candidates": candidates,
        "expected_candidates": n_jobs * CANDIDATES_PER_JOB,
        "wall_s": round(wall_s, 4),
        "anchors_per_sec": round(anchors / max(wall_s, 1e-9), 1),
        "candidates_per_sec": round(candidates / max(wall_s, 1e-9), 1),
    }


def run_subjob_enum_benchmark(
    scales: Optional[Tuple[int, ...]] = None,
) -> Dict:
    """The full subjob_enum section: one entry per anchor count."""
    if scales is None:
        scales = DEFAULT_ANCHOR_SCALES
    return {
        "benchmark": "subjob_enum",
        "scales": [run_subjob_enum_scale(n) for n in scales],
    }


def check_subjob_enum_gates(payload: Optional[Dict]) -> List[str]:
    """Correctness gate: every expected candidate was enumerated."""
    if not payload:
        return []
    failures = []
    for scale in payload["scales"]:
        if scale["candidates"] != scale["expected_candidates"]:
            failures.append(
                f"subjob_enum N={scale['n_anchors']}: enumerated "
                f"{scale['candidates']} candidates, expected "
                f"{scale['expected_candidates']}"
            )
    return failures
