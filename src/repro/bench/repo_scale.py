"""Repository-scale matching benchmark: indexed vs full-scan.

This is the repo's perf trajectory for the §3 hot path.  It grows a
repository to N entries over a generated multi-tenant workload (many
datasets, overlapping filter/project/group pipelines), then matches a
stream of probe jobs against it twice with byte-identical inputs:

* ``indexed`` — the fingerprint-inverted index prunes candidates
  before Algorithm 1's pairwise traversal (production default);
* ``full_scan`` — the historical behaviour: every ordered entry gets
  a traversal (``ReStoreConfig(indexed_matching=False)``).

Both modes must produce identical rewrite decisions (same entries
matched in the same order, same final plan fingerprints); the payoff
is counted in pairwise traversals and wall-clock per match.  Results
are written to ``BENCH_repo_scale.json`` by ``scripts/run_benchmarks.py``
and gated in CI (see the ``bench-smoke`` job).

``run_service_throughput`` extends the trajectory to the *shared
service* deployment: the same probe stream is executed — not just
matched — through a :class:`~repro.service.JobService` at several
worker-pool sizes, from eight round-robin tenant sessions against one
sharded repository.  Gates: the 1-worker run must reproduce the serial
decision log byte for byte, and every pool size must clear 1 job/sec
per worker.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import JobEliminated, RewriteApplied
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.pig.physical.operators import (
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLoad,
    POLocalRearrange,
    POPackage,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan, linear_plan
from repro.relational.expressions import BinaryOp, Column, Const
from repro.relational.schema import Schema
from repro.relational.types import DataType

ROW_SCHEMA = Schema.of(
    ("u", DataType.CHARARRAY), ("a", DataType.INT), ("r", DataType.DOUBLE)
)
PAIR_SCHEMA = Schema.of(("u", DataType.CHARARRAY), ("r", DataType.DOUBLE))
#: probe store schemas loose enough to survive *execution*: the
#: aggregate tail emits (group, bag-rendered-as-text) rows and the
#: variant tail emits bare group keys, so typed columns would reject
#: what the simulator actually writes
AGG_OUT_SCHEMA = Schema.of(("g", DataType.CHARARRAY), ("rows", DataType.CHARARRAY))
VARIANT_OUT_SCHEMA = Schema.of(("g", DataType.CHARARRAY))

#: pipeline shapes, in prefix order: each later shape extends the
#: previous one, so a probe built from the last shape can reuse any of
#: the earlier ones stored over the same (dataset, threshold)
SHAPES = ("filter", "project", "group", "aggregate")


@dataclass(frozen=True)
class EntrySpec:
    """Deterministic description of one generated repository entry."""

    index: int
    dataset: str
    threshold: int
    shape: str


@dataclass(frozen=True)
class ProbeSpec:
    """One submitted job in the probe stream.

    ``kind`` shapes the reuse outcome: a ``hit`` is answered whole-job
    from the repository, a ``variant`` shares only a pipeline prefix
    (partial rewrite + rescan), and a ``miss`` reads a dataset the
    repository never saw (the common case in production streams).
    """

    index: int
    dataset: str
    threshold: int
    kind: str


@dataclass
class ModeResult:
    """One matching mode's measurements over the probe stream."""

    traversals: int = 0
    candidates_examined: int = 0
    candidates_pruned: int = 0
    entries_seen: int = 0
    rewrites: int = 0
    eliminations: int = 0
    build_s: float = 0.0
    total_match_s: float = 0.0
    match_ms: List[float] = field(default_factory=list)
    #: per-probe decision log + final plan fingerprint (equivalence
    #: is asserted across modes before any speedup is reported)
    decisions: List[Tuple] = field(default_factory=list)

    @property
    def mean_match_ms(self) -> float:
        if not self.match_ms:
            return 0.0
        return sum(self.match_ms) / len(self.match_ms)

    @property
    def max_match_ms(self) -> float:
        return max(self.match_ms, default=0.0)

    def to_dict(self) -> dict:
        return {
            "traversals": self.traversals,
            "candidates_examined": self.candidates_examined,
            "candidates_pruned": self.candidates_pruned,
            "entries_seen": self.entries_seen,
            "rewrites": self.rewrites,
            "eliminations": self.eliminations,
            "build_s": round(self.build_s, 4),
            "total_match_s": round(self.total_match_s, 4),
            "mean_match_ms": round(self.mean_match_ms, 4),
            "max_match_ms": round(self.max_match_ms, 4),
        }


# -- plan generation ----------------------------------------------------------


def _pipeline_ops(spec: EntrySpec, upto: str) -> list:
    """Operators for *spec*'s pipeline, truncated after shape *upto*."""
    ops = [
        POLoad(spec.dataset, ROW_SCHEMA),
        POFilter(BinaryOp(">", Column(1), Const(spec.threshold)), schema=ROW_SCHEMA),
    ]
    if upto == "filter":
        return ops
    ops.append(
        POForEach(
            [Column(0), Column(2)], [False, False], ["u", "r"], schema=PAIR_SCHEMA
        )
    )
    if upto == "project":
        return ops
    ops.extend(
        [
            POLocalRearrange([Column(0)], schema=PAIR_SCHEMA),
            POGlobalRearrange(n_inputs=1, schema=PAIR_SCHEMA),
            POPackage("group", n_inputs=1, schema=PAIR_SCHEMA),
        ]
    )
    if upto == "group":
        return ops
    ops.append(
        POForEach(
            [Column(0), Column(1)], [False, False], ["g", "rows"], schema=PAIR_SCHEMA
        )
    )
    return ops


def _entry_plan(spec: EntrySpec) -> PhysicalPlan:
    ops = _pipeline_ops(spec, spec.shape)
    ops.append(POStore(f"bench/stored/e{spec.index:05d}", PAIR_SCHEMA))
    return linear_plan(*ops)


def generate_entry_specs(n_entries: int, seed: int) -> List[EntrySpec]:
    """N unique (dataset, threshold, shape) pipelines, shuffled
    deterministically — a multi-tenant workload's retained outputs."""
    n_datasets = max(4, n_entries // 20)
    n_thresholds = max(5, -(-n_entries // (n_datasets * len(SHAPES))))  # ceil
    combos = [
        (f"bench/ds{d:04d}", t, shape)
        for d in range(n_datasets)
        for t in range(1, n_thresholds + 1)
        for shape in SHAPES
    ]
    rng = random.Random(seed)
    rng.shuffle(combos)
    return [
        EntrySpec(index=i, dataset=ds, threshold=t, shape=shape)
        for i, (ds, t, shape) in enumerate(combos[:n_entries])
    ]


def build_repository(specs: List[EntrySpec], seed: int, matcher=None) -> Repository:
    """A repository holding one entry per spec, with varied stats so
    the §3 ordering rules have real work to do."""
    rng = random.Random(seed + 1)
    repository = Repository(matcher=matcher)
    for spec in specs:
        input_bytes = rng.randrange(10_000, 1_000_000)
        output_bytes = max(1, input_bytes // rng.randrange(2, 50))
        repository.add(
            RepositoryEntry(
                plan=_entry_plan(spec),
                output_path=f"bench/stored/e{spec.index:05d}",
                output_schema=PAIR_SCHEMA,
                stats=EntryStats(
                    input_bytes=input_bytes,
                    output_bytes=output_bytes,
                    output_records=output_bytes // 16,
                    exec_time_s=rng.uniform(5.0, 500.0),
                ),
                anchor_kind=spec.shape,
                input_mtimes={spec.dataset: 1},
            )
        )
    return repository


def generate_probe_specs(
    entry_specs: List[EntrySpec], n_probes: int, seed: int
) -> List[ProbeSpec]:
    """A mixed probe stream over the retained workload: whole-job
    hits, prefix-sharing variants, and misses on unseen datasets."""
    rng = random.Random(seed + 2)
    probes = []
    for i in range(n_probes):
        kind = rng.choices(("hit", "variant", "miss"), weights=(4, 3, 3))[0]
        template = rng.choice(entry_specs)
        dataset = f"bench/miss{i:04d}" if kind == "miss" else template.dataset
        probes.append(
            ProbeSpec(
                index=i,
                dataset=dataset,
                threshold=template.threshold,
                kind=kind,
            )
        )
    return probes


def _probe_job(
    spec: ProbeSpec, out_prefix: str = "bench/out"
) -> Tuple[MapReduceJob, Workflow]:
    base = EntrySpec(spec.index, spec.dataset, spec.threshold, "aggregate")
    if spec.kind == "variant":
        # shares load→filter→project→group with stored entries but
        # drills down differently after the shuffle: only the prefix
        # is reusable, forcing a partial rewrite plus a rescan pass
        ops = _pipeline_ops(base, "group")
        ops.append(POForEach([Column(0)], [False], ["g"], schema=PAIR_SCHEMA))
        out_schema = VARIANT_OUT_SCHEMA
    else:
        ops = _pipeline_ops(base, "aggregate")
        out_schema = AGG_OUT_SCHEMA
    ops.append(POStore(f"{out_prefix}/p{spec.index:05d}", out_schema))
    job = MapReduceJob(linear_plan(*ops), job_id=f"probe_{spec.index:05d}")
    workflow = Workflow(jobs=[job], name=f"probe-wf-{spec.index:05d}")
    return job, workflow


# -- measurement --------------------------------------------------------------


def run_mode(
    entry_specs: List[EntrySpec],
    probe_specs: List[ProbeSpec],
    *,
    indexed: bool,
    seed: int,
) -> ModeResult:
    """Build the repository and match every probe once."""
    result = ModeResult()
    started = time.perf_counter()
    repository = build_repository(entry_specs, seed)
    repository.ordered_entries()  # pay ordering up front, like a session
    result.build_s = time.perf_counter() - started

    dfs = DistributedFileSystem(n_datanodes=2)
    manager = ReStoreManager(
        dfs,
        repository=repository,
        config=ReStoreConfig(
            inject_enabled=False,
            register_whole_jobs="none",
            indexed_matching=indexed,
        ),
    )
    decisions_log: List[tuple] = []
    manager.events.subscribe(
        lambda e: decisions_log.append((type(e).__name__, e.entry_id, e.output_path)),
        event_types=(RewriteApplied, JobEliminated),
    )
    for spec in probe_specs:
        job, workflow = _probe_job(spec)
        decisions_log.clear()
        tick = time.perf_counter()
        manager.before_job(job, workflow)
        elapsed = time.perf_counter() - tick
        result.match_ms.append(elapsed * 1000.0)
        result.total_match_s += elapsed
        result.decisions.append(
            (spec.index, tuple(decisions_log), job.plan.fingerprint())
        )
        manager.drain()  # keep the listener channel from growing
        # release this probe's pins/pending, as a real driver's
        # workflow-end hook would — id(workflow) values recycle once
        # the object is collected, so skipping this merges dead
        # workflows' pins into an ever-growing set
        manager.on_workflow_end(workflow)

    totals = manager.match_totals
    result.traversals = totals.traversals
    result.candidates_examined = totals.candidates_examined
    result.candidates_pruned = totals.candidates_pruned
    result.entries_seen = totals.entries_seen
    result.rewrites = manager.rewrite_count
    result.eliminations = manager.elimination_count
    return result


def run_scale(n_entries: int, n_probes: int, seed: int = 13) -> Dict:
    """Measure one repository size in both modes and compare."""
    entry_specs = generate_entry_specs(n_entries, seed)
    probe_specs = generate_probe_specs(entry_specs, n_probes, seed)
    indexed = run_mode(entry_specs, probe_specs, indexed=True, seed=seed)
    full = run_mode(entry_specs, probe_specs, indexed=False, seed=seed)
    identical = indexed.decisions == full.decisions
    reduction = full.traversals / max(1, indexed.traversals)
    return {
        "n_entries": n_entries,
        "n_probes": n_probes,
        "modes": {
            "indexed": indexed.to_dict(),
            "full_scan": full.to_dict(),
        },
        "traversal_reduction": round(reduction, 2),
        "decisions_identical": identical,
    }


# -- service throughput (the shared, concurrent deployment) -------------------


def prepare_service_dfs(
    dfs: DistributedFileSystem,
    entry_specs: List[EntrySpec],
    probe_specs: List[ProbeSpec],
    n_rows: int = 0,
) -> None:
    """Write every dataset and stored output the probe stream can
    touch, so the service *executes* the (possibly rewritten) jobs
    instead of just matching them: probe inputs, miss datasets, and
    the stored outputs that copy jobs and partial rewrites read.

    ``n_rows`` > 0 generates that many rows per dataset (the process
    lane uses it to make per-job execution dominate pipe overhead);
    0 keeps the historical three-row payload of the thread lane.
    """
    if n_rows > 0:
        row_payload = (
            "\n".join(
                f"u{i % 24}\t{i % 10}\t{(i % 97) * 0.25}" for i in range(n_rows)
            )
            + "\n"
        )
    else:
        row_payload = "alice\t1\t0.5\nbob\t2\t4.5\ncarol\t3\t8.0\n"
    datasets = {spec.dataset for spec in entry_specs}
    datasets |= {spec.dataset for spec in probe_specs}
    for dataset in datasets:
        dfs.write_file(dataset, row_payload, overwrite=True)
    pair_payload = "alice\t0.5\nbob\t4.5\n"
    for spec in entry_specs:
        dfs.write_file(f"bench/stored/e{spec.index:05d}", pair_payload, overwrite=True)


def _service_workload(probe_specs: List[ProbeSpec], out_prefix: str) -> List:
    """Zero-arg workflow builders (fresh plans per run — rewrites
    mutate them), one per probe, writing under *out_prefix*."""
    return [(lambda spec=spec: _probe_job(spec, out_prefix)[1]) for spec in probe_specs]


def run_service_throughput(
    n_entries: int,
    n_jobs: int,
    workers: Tuple[int, ...] = (1, 4, 8),
    n_sessions: int = 8,
    seed: int = 13,
) -> Dict:
    """Measure the shared JobService at one repository size.

    One repository and one prepared DFS are shared by every mode (the
    probe stream never changes the entry set: whole-job registration
    is off).  A serial single-session run records the oracle decision
    log; each worker count then drives the same stream through a
    ``JobService`` from ``n_sessions`` round-robin tenants.  The
    1-worker run must reproduce the serial log byte for byte — that is
    the service's determinism guarantee and a CI gate.
    """
    from repro.service import JobService, WorkloadDriver
    from repro.session import ReStoreSession

    entry_specs = generate_entry_specs(n_entries, seed)
    probe_specs = generate_probe_specs(entry_specs, n_jobs, seed)

    started = time.perf_counter()
    repository = build_repository(entry_specs, seed)
    repository.ordered_entries()  # pay ordering up front, like a session
    build_s = time.perf_counter() - started

    dfs = DistributedFileSystem(n_datanodes=2)
    prepare_service_dfs(dfs, entry_specs, probe_specs)

    def service_config() -> ReStoreConfig:
        return ReStoreConfig(inject_enabled=False, register_whole_jobs="none")

    serial_manager = ReStoreManager(
        dfs, repository=repository, config=service_config()
    )
    serial_session = ReStoreSession(manager=serial_manager, session_id="serial")
    serial = WorkloadDriver.run_serial(
        serial_session, _service_workload(probe_specs, "bench/out/serial")
    )

    worker_runs = []
    # None (not True) when no 1-worker run was measured: the gate must
    # not report a determinism check that never ran as having passed
    one_worker_identical: Optional[bool] = None
    for worker_count in workers:
        service = JobService(
            dfs=dfs,
            repository=repository,
            config=service_config(),
            max_workers=worker_count,
        )
        driver = WorkloadDriver(service, n_sessions=n_sessions)
        driven = driver.run(
            _service_workload(probe_specs, f"bench/out/w{worker_count}")
        )
        service.shutdown()
        run = driven.to_dict()
        run["decisions_match_serial"] = driven.decisions == serial.decisions
        if worker_count == 1:
            one_worker_identical = run["decisions_match_serial"]
        worker_runs.append(run)

    return {
        "n_entries": n_entries,
        "n_jobs": n_jobs,
        "n_sessions": n_sessions,
        "build_s": round(build_s, 4),
        "serial": serial.to_dict(),
        "workers": worker_runs,
        "one_worker_decisions_identical": one_worker_identical,
    }


def run_service_process_lane(
    n_entries: int,
    n_jobs: int,
    workers: Tuple[int, ...] = (1, 4),
    n_sessions: int = 8,
    seed: int = 13,
    n_rows: int = 4000,
) -> Dict:
    """Measure the worker-*process* pool at one repository size.

    Same protocol as :func:`run_service_throughput` — one shared
    repository and DFS, a serial oracle, then each worker count — but
    with ``executor="processes"`` and ``n_rows``-row datasets, so each
    miss probe's execution is real per-job CPU that worker processes
    can run outside the coordinator's GIL.  The thread lane shows flat
    aggregate jobs/sec as workers grow; this lane is where the scaling
    gate (≥2.5x at 4 workers vs 1) and the 1-worker-*process* decision
    parity gate live.  The scaling gate binds only on hosts with ≥4
    CPUs — on a time-sliced single core no process pool can beat one
    worker — but the measurement and the recorded ``cpus`` always
    land in the payload so the number travels with its context.
    """
    from repro.service import JobService, ServiceConfig, WorkloadDriver
    from repro.session import ReStoreSession

    entry_specs = generate_entry_specs(n_entries, seed)
    probe_specs = generate_probe_specs(entry_specs, n_jobs, seed)
    cpus = _available_cpus()

    started = time.perf_counter()
    repository = build_repository(entry_specs, seed)
    repository.ordered_entries()  # pay ordering up front, like a session
    build_s = time.perf_counter() - started

    dfs = DistributedFileSystem(n_datanodes=2)
    prepare_service_dfs(dfs, entry_specs, probe_specs, n_rows=n_rows)

    def service_config() -> ReStoreConfig:
        return ReStoreConfig(inject_enabled=False, register_whole_jobs="none")

    serial_manager = ReStoreManager(
        dfs, repository=repository, config=service_config()
    )
    serial_session = ReStoreSession(manager=serial_manager, session_id="serial")
    serial = WorkloadDriver.run_serial(
        serial_session, _service_workload(probe_specs, "bench/proc/serial")
    )

    dfs.write_file("bench/warm", "u0\t5\t1.0\n", overwrite=True)
    warmup_specs = [
        ProbeSpec(index=9000 + i, dataset="bench/warm", threshold=1, kind="miss")
        for i in range(max(workers))
    ]

    worker_runs = []
    jobs_per_sec: Dict[int, float] = {}
    one_worker_identical: Optional[bool] = None
    for worker_count in workers:
        service = JobService(
            dfs=dfs,
            repository=repository,
            config=service_config(),
            service=ServiceConfig(
                executor="processes", max_workers=worker_count
            ),
        )
        driver = WorkloadDriver(service, n_sessions=n_sessions)
        # boot every worker process (spawn + interpreter + engine
        # imports) outside the timed window: one concurrent trivial
        # job per worker, from distinct tenants, binds each idle
        # worker exactly once
        warmup = [
            driver.sessions[i % n_sessions].submit_workflow(
                _probe_job(warmup_specs[i], "bench/proc/warm")[1]
            )
            for i in range(worker_count)
        ]
        for future in warmup:
            future.result()
        driven = driver.run(
            _service_workload(probe_specs, f"bench/proc/w{worker_count}")
        )
        service.shutdown()
        run = driven.to_dict()
        run["decisions_match_serial"] = driven.decisions == serial.decisions
        if worker_count == 1:
            one_worker_identical = run["decisions_match_serial"]
        jobs_per_sec[worker_count] = driven.jobs_per_sec
        worker_runs.append(run)

    # the headline number: aggregate jobs/sec at 4 workers over 1
    speedup_4v1: Optional[float] = None
    if jobs_per_sec.get(1) and jobs_per_sec.get(4):
        speedup_4v1 = round(jobs_per_sec[4] / jobs_per_sec[1], 2)

    return {
        "n_entries": n_entries,
        "n_jobs": n_jobs,
        "n_sessions": n_sessions,
        "n_rows": n_rows,
        #: CPUs the process pool can actually spread over — the
        #: scaling gate only binds when this is >= 4 (worker processes
        #: cannot beat one worker on a single core, no matter how
        #: parallel the architecture is)
        "cpus": cpus,
        "build_s": round(build_s, 4),
        "serial": serial.to_dict(),
        "workers": worker_runs,
        "one_worker_decisions_identical": one_worker_identical,
        "speedup_4v1": speedup_4v1,
    }


def _available_cpus() -> int:
    """CPUs this process may schedule on (affinity-aware: container
    quotas routinely hand out fewer cores than ``os.cpu_count``)."""
    import os

    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


DEFAULT_SCALES = (10, 100, 1000)
QUICK_SCALES = (10, 100)
DEFAULT_SERVICE_SCALES = (1000, 10000)
QUICK_SERVICE_SCALES = (300,)
DEFAULT_SERVICE_WORKERS = (1, 4, 8)
QUICK_SERVICE_WORKERS = (1, 4)
#: the process lane always measures N=1000 — the scale the ≥2.5x
#: scaling gate is defined at — even in quick mode
PROCESS_LANE_SCALES = (1000,)
PROCESS_LANE_WORKERS = (1, 4)


def run_service_benchmark(
    scales: Optional[Tuple[int, ...]] = None,
    n_jobs: Optional[int] = None,
    workers: Optional[Tuple[int, ...]] = None,
    seed: int = 13,
    quick: bool = False,
) -> Dict:
    """The service-throughput benchmark across repository sizes.

    ``n_jobs`` defaults to 60 (24 in ``quick`` mode); an explicit
    value is honoured verbatim — quick mode never silently trims a
    job count the caller asked for.
    """
    if scales is None:
        scales = QUICK_SERVICE_SCALES if quick else DEFAULT_SERVICE_SCALES
    if workers is None:
        workers = QUICK_SERVICE_WORKERS if quick else DEFAULT_SERVICE_WORKERS
    if n_jobs is None:
        n_jobs = 24 if quick else 60
    process_jobs = 24 if quick else 60
    return {
        "n_jobs": n_jobs,
        "worker_counts": list(workers),
        "seed": seed,
        "scales": [
            run_service_throughput(n, n_jobs, workers=workers, seed=seed)
            for n in scales
        ],
        "process_lane": {
            "worker_counts": list(PROCESS_LANE_WORKERS),
            "scales": [
                run_service_process_lane(
                    n, process_jobs, workers=PROCESS_LANE_WORKERS, seed=seed
                )
                for n in PROCESS_LANE_SCALES
            ],
        },
    }


def run_repo_scale_benchmark(
    scales: Optional[Tuple[int, ...]] = None,
    n_probes: int = 20,
    seed: int = 13,
    quick: bool = False,
) -> Dict:
    """The full benchmark: every scale, both modes, plus gate inputs.

    ``quick`` trims the scales and probe stream for CI smoke runs.
    """
    if scales is None:
        scales = QUICK_SCALES if quick else DEFAULT_SCALES
    if quick:
        n_probes = min(n_probes, 8)
    return {
        "benchmark": "repo_scale",
        "version": 1,
        "quick": quick,
        "seed": seed,
        "scales": [run_scale(n, n_probes, seed) for n in scales],
    }


def check_gates(payload: Dict, require_reduction_at: int = 1000) -> List[str]:
    """CI regression gates over a benchmark payload.  Returns failure
    messages (empty = green):

    * decisions must be byte-identical between modes at every scale;
    * indexed matching must never examine more candidates than the
      unindexed entry count (the index would be worse than no index);
    * at ``require_reduction_at`` entries (when measured), indexed
      matching must run ≥10x fewer pairwise traversals;
    * when a ``service_throughput`` section is present: the 1-worker
      service run must reproduce the serial decision log byte for
      byte, and every worker count must sustain more than 1 job/sec
      per worker (a deliberately loose floor — a stalled pool or a
      lock serializing whole runs misses it, machine noise does not);
    * when its ``process_lane`` sub-section is present: the 1-worker-
      *process* run must also reproduce the serial decision log, and —
      on hosts with ≥4 CPUs, where process parallelism is physically
      expressible — 4 worker processes must deliver ≥2.5x the
      aggregate jobs/sec of 1 (the scaling the thread lane's GIL
      ceiling forbids); the measured speedup and CPU count are always
      recorded;
    * when an ``exec_sim`` section is present: the batched data plane
      must be ≥3x faster than the legacy plane at every scale and
      ≥1.5x faster than the per-row fast plane at the largest scale,
      with byte-identical outputs, counters, and decisions across all
      three planes, and copy-style stores must never re-serialize (see
      :func:`repro.bench.exec_sim.check_exec_sim_gates`);
    * when a ``subjob_enum`` section is present: enumeration must
      inject every expected candidate (see
      :func:`repro.bench.subjob_enum.check_subjob_enum_gates`);
    * when a ``repo_persistence`` section is present: snapshot cold
      start must be ≥10x faster than rebuild-by-re-registration with
      byte-identical rewrite decisions, zero subsumption traversals
      spent restoring, and clean torn-tail journal recovery (see
      :func:`repro.bench.repo_persistence.check_repo_persistence_gates`);
    * when a ``payload_durability`` section is present: crashing a
      block-store append at every byte boundary must recover with zero
      entries referencing missing or corrupt payloads (every lost
      payload condemned, never served), condemnations must be
      journaled and replay-idempotent, and a warm restart must execute
      0 jobs while serving byte-identical outputs (see
      :func:`repro.bench.payload_durability.check_payload_durability_gates`);
    * when an ``incremental`` section is present: the delta probe over
      an appended input must be ≥3x faster than the full-rerun oracle
      with byte-identical outputs, must actually refresh (one
      ``EntryRefreshed``), and a shuffle probe must decline the delta
      path with a typed ``DeltaFallback`` while still recomputing
      correctly (see
      :func:`repro.bench.incremental.check_incremental_gates`);
    * when a ``fault_resilience`` section is present: the seeded storm
      must lose and duplicate zero entries, keep decision parity with
      the fault-free twin modulo quarantined entries, actually exercise
      every self-healing path (timeout kill, retry, breaker trip and
      recovery, one promotion, one quarantine), and keep p99 latency
      inflation bounded (see
      :func:`repro.bench.fault_resilience.check_fault_resilience_gates`).
    """
    from repro.bench.exec_sim import check_exec_sim_gates
    from repro.bench.fault_resilience import check_fault_resilience_gates
    from repro.bench.incremental import check_incremental_gates
    from repro.bench.payload_durability import (
        check_payload_durability_gates,
    )
    from repro.bench.repo_persistence import check_repo_persistence_gates
    from repro.bench.subjob_enum import check_subjob_enum_gates

    failures = []
    failures.extend(_service_gate_failures(payload.get("service_throughput")))
    failures.extend(check_exec_sim_gates(payload.get("exec_sim")))
    failures.extend(check_subjob_enum_gates(payload.get("subjob_enum")))
    failures.extend(
        check_repo_persistence_gates(payload.get("repo_persistence"))
    )
    failures.extend(
        check_payload_durability_gates(payload.get("payload_durability"))
    )
    failures.extend(check_incremental_gates(payload.get("incremental")))
    fault_section = payload.get("fault_resilience")
    if fault_section:
        failures.extend(check_fault_resilience_gates(fault_section))
    for scale in payload["scales"]:
        n = scale["n_entries"]
        indexed = scale["modes"]["indexed"]
        full = scale["modes"]["full_scan"]
        if not scale["decisions_identical"]:
            failures.append(f"N={n}: indexed and full-scan rewrite decisions differ")
        if indexed["candidates_examined"] > full["entries_seen"]:
            failures.append(
                f"N={n}: indexed matching examined "
                f"{indexed['candidates_examined']} candidates, more than "
                f"the unindexed entry count {full['entries_seen']}"
            )
        if n >= require_reduction_at and scale["traversal_reduction"] < 10.0:
            failures.append(
                f"N={n}: traversal reduction "
                f"{scale['traversal_reduction']}x is below the 10x target "
                f"({indexed['traversals']} vs {full['traversals']})"
            )
    return failures


def _service_gate_failures(service: Optional[Dict]) -> List[str]:
    if not service:
        return []
    failures = []
    for scale in service["scales"]:
        n = scale["n_entries"]
        # None means no 1-worker run was measured (custom --service-
        # workers without 1): nothing to gate, nothing to claim
        if scale["one_worker_decisions_identical"] is False:
            failures.append(
                f"service N={n}: 1-worker decisions diverge from the serial run"
            )
        for run in scale["workers"]:
            per_worker = run["jobs_per_sec_per_worker"]
            if per_worker <= 1.0:
                failures.append(
                    f"service N={n}, workers={run['workers']}: "
                    f"{per_worker} jobs/sec/worker is at or below the "
                    f"1.0 floor ({run['jobs_per_sec']} jobs/sec total)"
                )
    process_lane = service.get("process_lane") or {}
    for scale in process_lane.get("scales", []):
        n = scale["n_entries"]
        if scale["one_worker_decisions_identical"] is False:
            failures.append(
                f"process lane N={n}: 1-worker-process decisions "
                f"diverge from the serial run"
            )
        speedup = scale.get("speedup_4v1")
        # the scaling floor only binds where the host can physically
        # express process parallelism: on < 4 CPUs the 4-worker run is
        # time-sliced onto the same cores and the measurement records
        # overhead, not architecture
        if scale.get("cpus", 0) >= 4 and speedup is not None and speedup < 2.5:
            failures.append(
                f"process lane N={n}: {speedup}x jobs/sec at 4 worker "
                f"processes vs 1 is below the 2.5x scaling floor"
            )
    return failures
