"""Name-based plugin registries for heuristics, selectors, and
eviction policies.

Each pluggable family (sub-job heuristics, keep selectors, eviction
policies) owns one :class:`PluginRegistry`.  Registering under a name
makes the plugin reachable from string configuration — the CLI's
``--heuristic/--selector/--evict`` flags, ``ReStoreConfig.from_dict``,
and the session builder all resolve through these registries, so a
third-party policy only needs one ``register`` call to become a
first-class citizen everywhere.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


class PluginRegistry:
    """A case-insensitive name -> factory map with helpful errors."""

    def __init__(self, kind: str):
        self.kind = kind
        self._factories: Dict[str, Callable] = {}
        self._canonical: Dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: Optional[Callable] = None,
        *,
        aliases: tuple = (),
    ):
        """Register ``factory`` under ``name`` (plus ``aliases``).

        Usable directly or as a class decorator::

            @SELECTORS.register("keep-all")
            class KeepAllSelector(Selector): ...
        """
        if factory is None:

            def decorator(cls):
                self.register(name, cls, aliases=aliases)
                return cls

            return decorator

        key = name.lower()
        self._factories[key] = factory
        self._canonical[key] = key
        for alias in aliases:
            self._factories[alias.lower()] = factory
            self._canonical[alias.lower()] = key
        return factory

    def names(self, include_aliases: bool = True) -> List[str]:
        if include_aliases:
            return sorted(self._factories)
        return sorted(set(self._canonical.values()))

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._factories

    def get(self, name: str) -> Callable:
        """The registered factory itself (uninstantiated).

        Raises ``ValueError`` naming every valid entry when ``name``
        is unknown — the message is part of the CLI contract.
        """
        try:
            return self._factories[name.lower()]
        except KeyError:
            raise ValueError(
                f"unknown {self.kind} {name!r}; expected one of {self.names()}"
            ) from None

    def create(self, name: str, *args, **kwargs):
        """Instantiate the plugin registered under ``name``."""
        return self.get(name)(*args, **kwargs)
