"""Sub-job selection heuristics (paper §4).

* **Conservative (HC)** — materialize outputs of operators known to
  reduce their input size: Project and Filter.
* **Aggressive (HA)** — additionally materialize outputs of expensive
  operators: Join, Group, and CoGroup.
* **No heuristic (NH)** — materialize after *every* physical operator.

The physical vocabulary maps onto the paper's operator names as:
Project = a POForEach with no bag/aggregate expressions (a map-side
projection); Filter = POFilter; Join = the flattening POForEach right
after a join POPackage; Group/CoGroup = the POPackage itself (the
paper's L6 discussion: "a Store operator is injected in the reducer
after an expensive Group operator").
"""

from __future__ import annotations

from repro.core.registry import PluginRegistry
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.expressions import AggCall, BagField, BagStar


def _is_group_all(op: POPackage, plan: PhysicalPlan) -> bool:
    """GROUP ALL: the rearrange key is a constant (one giant group).

    Materializing it would store the whole input as a single bag; with
    Hadoop combiners the reducer never sees that bag, which is why the
    paper's Table 1 shows HA == HC for L8 (GROUP ALL + algebraic
    aggregates).  We exclude it from HA accordingly.
    """
    from repro.relational.expressions import Const

    for gr in plan.predecessors(op):
        for lr in plan.predecessors(gr):
            if isinstance(lr, POLocalRearrange):
                if len(lr.key_exprs) == 1 and isinstance(lr.key_exprs[0], Const):
                    return True
    return False


def classify_operator(op: PhysicalOperator, plan: PhysicalPlan) -> str:
    """Paper-level operator category of a physical operator."""
    from repro.pig.physical.operators import POFRJoin

    if isinstance(op, POFRJoin):
        return "join"
    if isinstance(op, POFilter):
        return "filter"
    if isinstance(op, POPackage):
        if op.mode == "group" and _is_group_all(op, plan):
            return "group-all"
        return {
            "group": "group",
            "cogroup": "cogroup",
            "join": "join-package",
            "distinct": "distinct",
            "sort": "sort",
        }[op.mode]
    if isinstance(op, POForEach):
        preds = plan.predecessors(op)
        if (
            len(preds) == 1
            and isinstance(preds[0], POPackage)
            and preds[0].mode == "join"
        ):
            return "join"
        if any(isinstance(e, (AggCall, BagField, BagStar)) for e in op.exprs):
            return "aggregate"
        return "project"
    if isinstance(op, POUnion):
        return "union"
    if isinstance(op, POLimit):
        return "limit"
    if isinstance(op, (POLoad, POStore, POSplit, POLocalRearrange, POGlobalRearrange)):
        return "structural"
    return "other"


#: categories that can never anchor a sub-job (no materializable rows,
#: or materializing is meaningless)
_NEVER = {"structural", "join-package"}


#: name -> heuristic class; extend with ``HEURISTICS.register``
HEURISTICS = PluginRegistry("heuristic")


class Heuristic:
    """Decides which operators' outputs to materialize as sub-jobs."""

    name = "abstract"

    def should_materialize(self, op: PhysicalOperator, plan: PhysicalPlan) -> bool:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Heuristic {self.name}>"


@HEURISTICS.register("conservative", aliases=("hc",))
class ConservativeHeuristic(Heuristic):
    """HC: operators that reduce their input size (Project, Filter)."""

    name = "conservative"
    _CATEGORIES = {"project", "filter"}

    def should_materialize(self, op: PhysicalOperator, plan: PhysicalPlan) -> bool:
        return classify_operator(op, plan) in self._CATEGORIES


@HEURISTICS.register("aggressive", aliases=("ha",))
class AggressiveHeuristic(Heuristic):
    """HA: size-reducing plus expensive operators (the paper default)."""

    name = "aggressive"
    _CATEGORIES = {"project", "filter", "join", "group", "cogroup"}

    def should_materialize(self, op: PhysicalOperator, plan: PhysicalPlan) -> bool:
        return classify_operator(op, plan) in self._CATEGORIES


@HEURISTICS.register("no-heuristic", aliases=("nh",))
class NoHeuristic(Heuristic):
    """NH: a Store after every (materializable) physical operator."""

    name = "no-heuristic"

    def should_materialize(self, op: PhysicalOperator, plan: PhysicalPlan) -> bool:
        return classify_operator(op, plan) not in _NEVER


@HEURISTICS.register("never")
class NeverMaterialize(Heuristic):
    """Disables sub-job generation entirely (whole jobs only)."""

    name = "never"

    def should_materialize(self, op: PhysicalOperator, plan: PhysicalPlan) -> bool:
        return False


def heuristic_by_name(name: str) -> Heuristic:
    """Look up a heuristic by its paper name (HC / HA / NH / never)."""
    return HEURISTICS.create(name)
