"""Plan matching: is a repository plan contained in an input job plan?

Implements the paper's §3 matching semantics.  Two operators are
equivalent when (1) their inputs are pipelined from equivalent
operators or the same data sets, and (2) they perform functions that
produce the same output data — here: equal :meth:`signature` plus
pairwise-equivalent (ordered) inputs.

``PairwisePlanTraversal`` (Algorithm 1) traverses both plans
simultaneously from their Load operators.  Our implementation walks
the repository plan in topological order, growing an injective mapping
repo-op -> input-op; the repository plan's final Store is terminal
(a stored sub-job's Store writes its output wherever ReStore chose —
it matches any insertion point, cf. Figures 5–6).

The traversal looks *through* POSplit tees on the input side so that
plans already instrumented by the sub-job enumerator still match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.exceptions import PlanError
from repro.pig.physical.operators import (
    PhysicalOperator,
    POSplit,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan


@dataclass
class MatchResult:
    """A successful containment of a repository plan in an input plan."""

    #: repo op_id -> matched input operator
    mapping: Dict[int, PhysicalOperator] = field(default_factory=dict)
    #: input operator equivalent to the repo plan's frontier (the
    #: operator feeding the repo Store) — the rewrite splice point
    frontier: Optional[PhysicalOperator] = None
    #: True when the repo plan covers the input job completely
    whole_job: bool = False

    @property
    def matched_input_ids(self) -> Set[int]:
        return {op.op_id for op in self.mapping.values()}


def operators_equivalent(a: PhysicalOperator, b: PhysicalOperator) -> bool:
    """Local (signature) equivalence; input equivalence is the walk."""
    return a.signature() == b.signature()


class PlanMatcher:
    """Tests repository-plan containment and produces rewrite info.

    ``traversal_count`` tallies every pairwise plan traversal this
    matcher has run — the §3 hot-path unit the fingerprint index
    exists to minimize; benchmarks and the CI perf gate read it.
    """

    def __init__(self):
        self.traversal_count = 0

    def effective_successors(
        self, plan: PhysicalPlan, op: PhysicalOperator
    ) -> List[PhysicalOperator]:
        """Successors of *op*, looking through POSplit tees."""
        out: List[PhysicalOperator] = []
        for succ in plan.successors(op):
            if isinstance(succ, POSplit):
                out.extend(self.effective_successors(plan, succ))
            else:
                out.append(succ)
        return out

    # -- entry point ----------------------------------------------------------------

    def match(
        self, input_plan: PhysicalPlan, repo_plan: PhysicalPlan
    ) -> Optional[MatchResult]:
        """Return a :class:`MatchResult` if *repo_plan* is contained in
        *input_plan*, else None.

        Backtracks over candidate assignments: symmetric branches
        (e.g. a self-join loading the same path twice) can make the
        greedy choice wrong even though a consistent mapping exists.
        """
        self.traversal_count += 1
        frontier_repo = self._repo_frontier(repo_plan)
        if frontier_repo is None:
            return None

        order = [op for op in repo_plan.topo_order() if not isinstance(op, POStore)]
        mapping: Dict[int, PhysicalOperator] = {}
        used_input_ids: Set[int] = set()

        def assign(position: int) -> bool:
            if position == len(order):
                return True
            repo_op = order[position]
            for candidate in self._candidates_for(
                input_plan, repo_plan, repo_op, mapping, used_input_ids
            ):
                mapping[repo_op.op_id] = candidate
                used_input_ids.add(candidate.op_id)
                if assign(position + 1):
                    return True
                del mapping[repo_op.op_id]
                used_input_ids.discard(candidate.op_id)
            return False

        if not assign(0):
            return None

        frontier_input = mapping[frontier_repo.op_id]
        whole = self._is_whole_job(input_plan, mapping, frontier_input)
        return MatchResult(mapping=mapping, frontier=frontier_input, whole_job=whole)

    def contains(self, outer: PhysicalPlan, inner: PhysicalPlan) -> bool:
        """Paper's subsumption: every op of *inner* has an equivalent
        in *outer* (used to order the repository, §3 rule 1)."""
        return self.match(outer, inner) is not None

    # -- internals ---------------------------------------------------------------------

    def _repo_frontier(self, repo_plan: PhysicalPlan) -> Optional[PhysicalOperator]:
        """The repo operator feeding its primary Store."""
        store = repo_plan.primary_store()
        if store is None:
            stores = repo_plan.stores()
            if not stores:
                raise PlanError("repository plan has no store")
            store = stores[0]
        preds = repo_plan.predecessors(store)
        if len(preds) != 1:
            return None
        return preds[0]

    def _candidates_for(
        self,
        input_plan: PhysicalPlan,
        repo_plan: PhysicalPlan,
        repo_op: PhysicalOperator,
        mapping: Dict[int, PhysicalOperator],
        used_input_ids: Set[int],
    ) -> List[PhysicalOperator]:
        """Input operators that can extend the mapping with *repo_op*."""
        repo_preds = repo_plan.predecessors(repo_op)

        if not repo_preds:
            # A source (Load): match against the input plan's loads.
            pool = [op for op in input_plan.loads() if op.op_id not in used_input_ids]
        else:
            # All predecessors were already mapped (topological walk);
            # candidates are common effective successors of the images.
            pools: List[List[PhysicalOperator]] = []
            for pred in repo_preds:
                image = mapping.get(pred.op_id)
                if image is None:
                    return []
                pools.append(self.effective_successors(input_plan, image))
            first = pools[0]
            common_ids = set(op.op_id for op in first)
            for pool in pools[1:]:
                common_ids &= {op.op_id for op in pool}
            pool = [
                op
                for op in first
                if op.op_id in common_ids and op.op_id not in used_input_ids
            ]

        candidates = [op for op in pool if operators_equivalent(op, repo_op)]
        # For multi-input ops the *order* of inputs must also agree;
        # signature equality of the upstream LocalRearranges (which
        # embed their branch index) already enforces this.
        candidates.sort(key=lambda op: op.op_id)
        return candidates

    def _is_whole_job(
        self,
        input_plan: PhysicalPlan,
        mapping: Dict[int, PhysicalOperator],
        frontier_input: PhysicalOperator,
    ) -> bool:
        """The repo plan covers the input job completely iff the
        frontier feeds the job's primary store and, apart from that
        store (and pass-through splits / side stores), every input
        operator is matched."""
        primary = input_plan.primary_store()
        if primary is None:
            return False
        feeds_primary = any(
            succ.op_id == primary.op_id
            for succ in self.effective_successors(input_plan, frontier_input)
        )
        if not feeds_primary:
            return False
        matched = {op.op_id for op in mapping.values()}
        for op in input_plan.operators:
            if op.op_id in matched:
                continue
            if isinstance(op, POSplit):
                continue
            if isinstance(op, POStore):
                continue  # primary store + any injected side stores
            return False
        return True
