"""The ReStore repository of stored MapReduce job outputs.

Each entry keeps exactly what the paper lists (§2.2): (1) the physical
plan of the job that produced the output, (2) the output's filename in
the DFS, and (3) statistics — input/output sizes, execution time, how
often and how recently the output was reused.

``ordered_entries`` realizes §3's ordering rules so that the *first*
match found during the sequential scan is the best one:

1. plan A before plan B when A subsumes B (all of B's operators have
   equivalents in A);
2. otherwise by the input/output size ratio, then by execution time
   (both: higher first).

The repository is fingerprint-indexed.  Three structures are kept
consistent on every add/remove/eviction:

* whole-plan fingerprint → entry ids: O(1) exact-equivalence lookup
  (``find_equivalent`` no longer runs a linear matcher scan);
* load-signature → entry ids (inverted index): a submitted job's
  Load set prunes the repository to the entries that can possibly be
  contained in it, so Algorithm 1's pairwise traversal only runs
  against real candidates (``match_candidates``);
* input path → entry ids: eviction Rule 4 checks each source dataset
  once instead of walking every entry's recorded mtimes.

The §3 scan order is maintained *incrementally*: each inserted entry
is compared (with fingerprint pruning) only against entries it could
subsume or be subsumed by, and removals retire cached subsumption
pairs without any matcher calls — there is no O(n²) re-sort on
invalidation any more.
"""

from __future__ import annotations

import json
import re
from bisect import insort
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.matcher import PlanMatcher
from repro.exceptions import RepositoryError
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema

_ENTRY_ID_PATTERN = re.compile(r"^entry_(\d+)$")


@dataclass
class EntryStats:
    """Execution statistics stored with a repository entry (§5)."""

    input_bytes: int = 0
    output_bytes: int = 0
    output_records: int = 0
    #: estimated standalone execution time of the producing job (sim s)
    exec_time_s: float = 0.0

    @property
    def io_ratio(self) -> float:
        """Input/output size ratio — ordering metric 1 (higher = better)."""
        return self.input_bytes / max(1, self.output_bytes)


@dataclass
class RepositoryEntry:
    """One stored job (or sub-job) output.

    ``entry_id`` is assigned by the owning :class:`Repository` when the
    entry is added (scoped per repository, so two sessions in one
    process produce identical, deterministic id sequences); entries
    loaded from persisted JSON keep their recorded ids.
    """

    plan: PhysicalPlan
    output_path: str
    output_schema: Schema
    stats: EntryStats = field(default_factory=EntryStats)
    anchor_kind: str = "whole-job"
    created_at: int = 0
    last_used_at: int = 0
    use_count: int = 0
    #: DFS logical mtimes of the entry's source datasets at creation
    #: (eviction Rule 4 compares against current mtimes)
    input_mtimes: Dict[str, int] = field(default_factory=dict)
    entry_id: str = ""

    def mark_used(self, now: int) -> None:
        self.use_count += 1
        self.last_used_at = now

    def to_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "plan": self.plan.to_dict(),
            "output_path": self.output_path,
            "output_schema": self.output_schema.to_dict(),
            "stats": {
                "input_bytes": self.stats.input_bytes,
                "output_bytes": self.stats.output_bytes,
                "output_records": self.stats.output_records,
                "exec_time_s": self.stats.exec_time_s,
            },
            "anchor_kind": self.anchor_kind,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
            "use_count": self.use_count,
            "input_mtimes": self.input_mtimes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepositoryEntry":
        return cls(
            plan=PhysicalPlan.from_dict(data["plan"]),
            output_path=data["output_path"],
            output_schema=Schema.from_dict(data["output_schema"]),
            stats=EntryStats(**data["stats"]),
            anchor_kind=data.get("anchor_kind", "whole-job"),
            created_at=data.get("created_at", 0),
            last_used_at=data.get("last_used_at", 0),
            use_count=data.get("use_count", 0),
            input_mtimes=dict(data.get("input_mtimes", {})),
            entry_id=data.get("entry_id", ""),
        )


@dataclass
class MatchScanStats:
    """What one candidate-selection pass over the repository saw."""

    entries_total: int = 0
    candidates: int = 0
    pruned: int = 0


@dataclass
class RepositoryIndexStats:
    """Cumulative counters for the fingerprint index (reporting/CI)."""

    exact_lookups: int = 0
    exact_hits: int = 0
    scans: int = 0
    candidates_examined: int = 0
    candidates_pruned: int = 0
    #: matcher traversals spent maintaining the §3 subsumption order
    subsume_checks: int = 0
    #: ordering pairs dismissed by fingerprint pruning (no traversal)
    subsume_pruned: int = 0


class Repository:
    """Fingerprint-indexed, scan-ordered collection of entries."""

    def __init__(
        self,
        matcher: Optional[PlanMatcher] = None,
        ordering_enabled: bool = True,
    ):
        self.matcher = matcher or PlanMatcher()
        #: when False, ordered_entries() returns insertion order —
        #: an ablation knob showing why §3's ordering rules matter
        #: (the first match found is used for the rewrite)
        self.ordering_enabled = ordering_enabled
        self.index_stats = RepositoryIndexStats()
        self._entries: Dict[str, RepositoryEntry] = {}
        self._id_counter = 1
        self._seq_counter = 0
        #: entry id -> insertion sequence (stable-sort tie-break)
        self._seq: Dict[str, int] = {}
        # -- fingerprint indexes (kept in step with _entries) --------
        self._by_fingerprint: Dict[str, List[str]] = {}
        self._by_load_sig: Dict[str, Set[str]] = {}
        self._by_input_path: Dict[str, Set[str]] = {}
        self._sig_counts: Dict[str, Dict[str, int]] = {}
        # -- incremental §3 ordering ---------------------------------
        #: entry id -> how many other entries its plan subsumes
        self._scores: Dict[str, int] = {}
        #: a -> {b: a's plan contains b's plan} and the inverse
        self._subsumes: Dict[str, Set[str]] = {}
        self._subsumed_by: Dict[str, Set[str]] = {}
        #: integrated entry ids, sorted by the §3 scan key
        self._sorted: List[str] = []
        #: added but not yet integrated into the order (lazy, so
        #: ordering-free workloads never pay for matcher calls)
        self._pending: List[str] = []

    # -- basic operations ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(list(self._entries.values()))

    def entries(self) -> List[RepositoryEntry]:
        return list(self._entries.values())

    def get(self, entry_id: str) -> RepositoryEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise RepositoryError(f"no such entry: {entry_id}") from None

    def _assign_id(self, entry: RepositoryEntry) -> None:
        if entry.entry_id:
            # Persisted id: keep it, but advance the counter past it so
            # later generated ids can never collide.
            match = _ENTRY_ID_PATTERN.match(entry.entry_id)
            if match:
                self._id_counter = max(
                    self._id_counter, int(match.group(1)) + 1
                )
            return
        while True:
            candidate = f"entry_{self._id_counter:06d}"
            self._id_counter += 1
            if candidate not in self._entries:
                entry.entry_id = candidate
                return

    def add(self, entry: RepositoryEntry) -> RepositoryEntry:
        self._assign_id(entry)
        eid = entry.entry_id
        if eid in self._entries:
            # Same-id re-add replaces the old entry like the historical
            # dict assignment did: deindex the old one but keep the
            # entry's insertion position (dict slot and seq tie-break).
            self._deindex_entry(self._entries[eid])
            if eid in self._pending:
                self._pending.remove(eid)
            else:
                self._retire_from_order(eid)
        else:
            self._seq[eid] = self._seq_counter
            self._seq_counter += 1
        self._entries[eid] = entry
        self._index_entry(entry)
        self._pending.append(eid)
        return entry

    def remove(self, entry_id: str) -> RepositoryEntry:
        entry = self.get(entry_id)
        del self._entries[entry_id]
        del self._seq[entry_id]
        self._deindex_entry(entry)
        if entry_id in self._pending:
            self._pending.remove(entry_id)
        else:
            self._retire_from_order(entry_id)
        return entry

    # -- fingerprint indexes ------------------------------------------------------

    def _index_entry(self, entry: RepositoryEntry) -> None:
        eid = entry.entry_id
        self._by_fingerprint.setdefault(entry.plan.fingerprint(), []).append(
            eid
        )
        for sig in entry.plan.load_signature_set():
            self._by_load_sig.setdefault(sig, set()).add(eid)
        for path in entry.input_mtimes:
            self._by_input_path.setdefault(path, set()).add(eid)
        self._sig_counts[eid] = dict(entry.plan.signature_counts())

    def _deindex_entry(self, entry: RepositoryEntry) -> None:
        eid = entry.entry_id
        fingerprint = entry.plan.fingerprint()
        bucket = self._by_fingerprint.get(fingerprint, [])
        if eid in bucket:
            bucket.remove(eid)
            if not bucket:
                del self._by_fingerprint[fingerprint]
        for sig in entry.plan.load_signature_set():
            holders = self._by_load_sig.get(sig)
            if holders is not None:
                holders.discard(eid)
                if not holders:
                    del self._by_load_sig[sig]
        for path in entry.input_mtimes:
            holders = self._by_input_path.get(path)
            if holders is not None:
                holders.discard(eid)
                if not holders:
                    del self._by_input_path[path]
        self._sig_counts.pop(eid, None)

    def find_equivalent(self, plan: PhysicalPlan) -> Optional[RepositoryEntry]:
        """An existing entry whose plan computes exactly *plan*.

        O(1): one cached fingerprint plus one dict probe (used to be a
        linear scan re-fingerprinting every stored plan).
        """
        self.index_stats.exact_lookups += 1
        bucket = self._by_fingerprint.get(plan.fingerprint())
        if not bucket:
            return None
        self.index_stats.exact_hits += 1
        # insertion order, matching the historical first-found scan
        first = min(bucket, key=lambda eid: self._seq[eid])
        return self._entries[first]

    def find_by_output_path(self, path: str) -> Optional[RepositoryEntry]:
        for entry in self._entries.values():
            if entry.output_path == path:
                return entry
        return None

    def input_paths(self) -> List[str]:
        """Distinct source-dataset paths recorded by live entries."""
        return list(self._by_input_path)

    def entries_with_input(self, path: str) -> List[RepositoryEntry]:
        """Entries whose plans read *path* (insertion order)."""
        ids = self._by_input_path.get(path, set())
        return [
            self._entries[eid]
            for eid in sorted(ids, key=lambda e: self._seq[e])
        ]

    @property
    def total_stored_bytes(self) -> int:
        return sum(e.stats.output_bytes for e in self._entries.values())

    # -- candidate pruning (the tentpole fast path) -------------------------------

    @staticmethod
    def _counts_contained(
        inner: Dict[str, int], outer: Dict[str, int]
    ) -> bool:
        """True when *inner* is a sub-multiset of *outer* — necessary
        for inner's plan to be contained in outer's (every repo
        operator needs a distinct, signature-equal image)."""
        return all(outer.get(sig, 0) >= n for sig, n in inner.items())

    def match_candidates(
        self, plan: PhysicalPlan, *, indexed: bool = True
    ) -> Tuple[List[RepositoryEntry], MatchScanStats]:
        """Scan-ordered entries that can possibly be contained in
        *plan*, plus what the pruning saw.

        With ``indexed=False`` this degrades to the historical full
        scan (every entry is a candidate) — kept as the benchmark and
        ablation baseline.  Pruning is sound: it only removes entries
        whose Load set or operator-signature multiset proves Algorithm
        1 would reject them, so the surviving first match is byte-for-
        byte the one the full scan finds.
        """
        ordered = self.ordered_entries()
        total = len(ordered)
        stats = MatchScanStats(entries_total=total)
        if not indexed:
            stats.candidates = total
            self.index_stats.scans += 1
            self.index_stats.candidates_examined += total
            return ordered, stats
        pool: Set[str] = set()
        for sig in plan.load_signature_set():
            pool |= self._by_load_sig.get(sig, set())
        if pool:
            counts = dict(plan.signature_counts())
            keep = {
                eid
                for eid in pool
                if self._counts_contained(self._sig_counts[eid], counts)
            }
        else:
            keep = set()
        candidates = [e for e in ordered if e.entry_id in keep]
        stats.candidates = len(candidates)
        stats.pruned = total - len(candidates)
        self.index_stats.scans += 1
        self.index_stats.candidates_examined += stats.candidates
        self.index_stats.candidates_pruned += stats.pruned
        return candidates, stats

    # -- ordering (§3, incrementally maintained) ----------------------------------

    def _order_key(self, entry_id: str) -> tuple:
        entry = self._entries[entry_id]
        return (
            -self._scores.get(entry_id, 0),
            -entry.stats.io_ratio,
            -entry.stats.exec_time_s,
            self._seq[entry_id],
        )

    def _contains_traversal(self, a: RepositoryEntry, b: RepositoryEntry) -> bool:
        self.index_stats.subsume_checks += 1
        return self.matcher.contains(a.plan, b.plan)

    def _record_subsumption(self, a_id: str, b_id: str) -> None:
        self._subsumes.setdefault(a_id, set()).add(b_id)
        self._subsumed_by.setdefault(b_id, set()).add(a_id)
        self._scores[a_id] = self._scores.get(a_id, 0) + 1

    def _reposition(self, entry_id: str) -> None:
        self._sorted.remove(entry_id)
        insort(self._sorted, entry_id, key=self._order_key)

    def _integrate(self, entry_id: str) -> None:
        """Fold one pending entry into the maintained order: compare
        it (fingerprint-pruned) against entries it shares a Load with,
        update subsumption scores on both sides, insert by key."""
        entry = self._entries[entry_id]
        counts = self._sig_counts[entry_id]
        pool: Set[str] = set()
        for sig in entry.plan.load_signature_set():
            pool |= self._by_load_sig.get(sig, set())
        pool.discard(entry_id)
        self._scores.setdefault(entry_id, 0)
        for other_id in sorted(pool, key=lambda e: self._seq[e]):
            if other_id not in self._scores:
                continue  # still pending; handled when it integrates
            other = self._entries[other_id]
            other_counts = self._sig_counts[other_id]
            moved = False
            if self._counts_contained(other_counts, counts):
                if self._contains_traversal(entry, other):
                    self._record_subsumption(entry_id, other_id)
            else:
                self.index_stats.subsume_pruned += 1
            if self._counts_contained(counts, other_counts):
                if self._contains_traversal(other, entry):
                    self._record_subsumption(other_id, entry_id)
                    moved = True
            else:
                self.index_stats.subsume_pruned += 1
            if moved:
                self._reposition(other_id)
        insort(self._sorted, entry_id, key=self._order_key)

    def _retire_from_order(self, entry_id: str) -> None:
        """Remove an integrated entry: retire its cached subsumption
        pairs (no matcher calls) and fix the scores they carried."""
        # drop the victim first — repositioning probes _sorted keys
        if entry_id in self._sorted:
            self._sorted.remove(entry_id)
        for a_id in self._subsumed_by.pop(entry_id, set()):
            subsumed = self._subsumes.get(a_id)
            if subsumed is not None:
                subsumed.discard(entry_id)
            if a_id in self._scores:
                self._scores[a_id] -= 1
                if a_id in self._sorted:
                    self._reposition(a_id)
        for b_id in self._subsumes.pop(entry_id, set()):
            holders = self._subsumed_by.get(b_id)
            if holders is not None:
                holders.discard(entry_id)
        self._scores.pop(entry_id, None)

    def ordered_entries(self) -> List[RepositoryEntry]:
        """Entries in match-scan order (best candidates first).

        Single stable sort by (subsumption score desc, io ratio desc,
        exec time desc, insertion order) — provably the same order as
        the historical two-pass stable sort, but maintained entry by
        entry instead of recomputed O(n²) per mutation.
        """
        if not self.ordering_enabled:
            return list(self._entries.values())
        while self._pending:
            self._integrate(self._pending.pop(0))
        return [self._entries[eid] for eid in self._sorted]

    # -- persistence --------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"entries": [e.to_dict() for e in self._entries.values()]},
            indent=2,
        )

    @classmethod
    def from_json(
        cls, text: str, matcher: Optional[PlanMatcher] = None
    ) -> "Repository":
        repo = cls(matcher=matcher)
        data = json.loads(text)
        for entry_data in data.get("entries", []):
            repo.add(RepositoryEntry.from_dict(entry_data))
        return repo

    def __repr__(self) -> str:
        return (
            f"Repository(entries={len(self._entries)}, "
            f"stored_bytes={self.total_stored_bytes})"
        )
