"""The ReStore repository of stored MapReduce job outputs.

Each entry keeps exactly what the paper lists (§2.2): (1) the physical
plan of the job that produced the output, (2) the output's filename in
the DFS, and (3) statistics — input/output sizes, execution time, how
often and how recently the output was reused.

``ordered_entries`` realizes §3's ordering rules so that the *first*
match found during the sequential scan is the best one:

1. plan A before plan B when A subsumes B (all of B's operators have
   equivalents in A);
2. otherwise by the input/output size ratio, then by execution time
   (both: higher first).

The repository is fingerprint-indexed and **concurrency-safe**.  The
three inverted indexes from the fingerprint work are now *sharded*:
each index key (whole-plan fingerprint, load signature, input path)
hashes to one of ``n_shards`` stripes, each with its own lock.  Be
clear about what that buys today: entry-level operations (add,
remove, match, ordering) still serialize on the repository lock, so
under CPython's GIL the striping is not a parallelism knob — it lets
bucket readers that bypass the entry lock (``input_paths``, the
merged index views) see consistent buckets, and it is the structure a
free-threaded build needs to let disjoint key ranges stop contending
on index-bucket maintenance:

* whole-plan fingerprint → entry ids: O(1) exact-equivalence lookup
  (``find_equivalent`` no longer runs a linear matcher scan);
* load-signature → entry ids (inverted index): a submitted job's
  Load set prunes the repository to the entries that can possibly be
  contained in it, so Algorithm 1's pairwise traversal only runs
  against real candidates (``match_candidates``);
* input path → entry ids: eviction Rule 4 checks each source dataset
  once instead of walking every entry's recorded mtimes.

Entry-level state (the entry table, insertion sequence, and the §3
ordering structures) is guarded by one reentrant repository lock; the
locking discipline is strictly *repository lock before shard lock*,
never the reverse, so the two layers can never deadlock.

The §3 scan order is maintained *incrementally*, and registration is
**batched**: entries added while no scan is running accumulate in a
pending batch, and the next ``ordered_entries()`` call integrates the
whole batch at once — the subsumption pairs are still computed (with
fingerprint pruning) per entry, but the list maintenance collapses to
one final sort instead of per-insert ``insort`` plus repositioning.
The resulting order is provably identical to one-at-a-time inserts:
the sort key is a strict total order (the insertion sequence breaks
every tie), so any maintenance strategy converges to the same list.
"""

from __future__ import annotations

import json
import re
import threading
import zlib
from bisect import insort
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.matcher import PlanMatcher
from repro.dfs.namenode import InputExtent
from repro.exceptions import RepositoryError
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema

_ENTRY_ID_PATTERN = re.compile(r"^entry_(\d+)$")


@dataclass
class EntryStats:
    """Execution statistics stored with a repository entry (§5)."""

    input_bytes: int = 0
    output_bytes: int = 0
    output_records: int = 0
    #: estimated standalone execution time of the producing job (sim s)
    exec_time_s: float = 0.0

    @property
    def io_ratio(self) -> float:
        """Input/output size ratio — ordering metric 1 (higher = better)."""
        return self.input_bytes / max(1, self.output_bytes)


@dataclass
class RepositoryEntry:
    """One stored job (or sub-job) output.

    ``entry_id`` is assigned by the owning :class:`Repository` when the
    entry is added (scoped per repository, so two sessions in one
    process produce identical, deterministic id sequences); entries
    loaded from persisted JSON keep their recorded ids.
    """

    plan: PhysicalPlan
    output_path: str
    output_schema: Schema
    stats: EntryStats = field(default_factory=EntryStats)
    anchor_kind: str = "whole-job"
    created_at: int = 0
    last_used_at: int = 0
    use_count: int = 0
    #: DFS logical mtimes of the entry's source datasets at creation
    #: (eviction Rule 4 compares against current mtimes)
    input_mtimes: Dict[str, int] = field(default_factory=dict)
    #: exact per-input identity + length fingerprints recorded at
    #: registration (and advanced on every delta refresh); the
    #: freshness classifier distinguishes appended from rewritten
    #: inputs with these — entries restored from pre-extent state keep
    #: the dict empty and degrade to the conservative mtime check
    input_extents: Dict[str, InputExtent] = field(default_factory=dict)
    entry_id: str = ""

    def mark_used(self, now: int) -> None:
        self.use_count += 1
        self.last_used_at = now

    def to_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "plan": self.plan.to_dict(),
            "output_path": self.output_path,
            "output_schema": self.output_schema.to_dict(),
            "stats": {
                "input_bytes": self.stats.input_bytes,
                "output_bytes": self.stats.output_bytes,
                "output_records": self.stats.output_records,
                "exec_time_s": self.stats.exec_time_s,
            },
            "anchor_kind": self.anchor_kind,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
            "use_count": self.use_count,
            "input_mtimes": self.input_mtimes,
            "input_extents": {
                path: extent.to_list()
                for path, extent in self.input_extents.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepositoryEntry":
        return cls(
            plan=PhysicalPlan.from_dict(data["plan"]),
            output_path=data["output_path"],
            output_schema=Schema.from_dict(data["output_schema"]),
            stats=EntryStats(**data["stats"]),
            anchor_kind=data.get("anchor_kind", "whole-job"),
            created_at=data.get("created_at", 0),
            last_used_at=data.get("last_used_at", 0),
            use_count=data.get("use_count", 0),
            input_mtimes=dict(data.get("input_mtimes", {})),
            input_extents={
                path: InputExtent.from_list(extent)
                for path, extent in data.get("input_extents", {}).items()
            },
            entry_id=data.get("entry_id", ""),
        )


@dataclass
class MatchScanStats:
    """What one candidate-selection pass over the repository saw."""

    entries_total: int = 0
    candidates: int = 0
    pruned: int = 0


@dataclass
class RepositoryIndexStats:
    """Cumulative counters for the fingerprint index (reporting/CI)."""

    exact_lookups: int = 0
    exact_hits: int = 0
    scans: int = 0
    candidates_examined: int = 0
    candidates_pruned: int = 0
    #: matcher traversals spent maintaining the §3 subsumption order
    subsume_checks: int = 0
    #: ordering pairs dismissed by fingerprint pruning (no traversal)
    subsume_pruned: int = 0
    #: entries folded into the order one at a time (insort path)
    order_integrations: int = 0
    #: batched order flushes, and entries amortized across them
    batch_flushes: int = 0
    batch_entries: int = 0


class _IndexShard:
    """One lock stripe of the inverted indexes.

    Keys (fingerprints, load signatures, input paths) hash to a shard;
    all buckets for a key live in that key's shard and are only touched
    under its lock.
    """

    __slots__ = ("lock", "by_fingerprint", "by_load_sig", "by_input_path")

    def __init__(self) -> None:
        self.lock = threading.RLock()
        #: whole-plan fingerprint -> entry ids (insertion order)
        self.by_fingerprint: Dict[str, List[str]] = {}
        #: load signature -> entry ids
        self.by_load_sig: Dict[str, Set[str]] = {}
        #: input path -> entry ids
        self.by_input_path: Dict[str, Set[str]] = {}


class Repository:
    """Fingerprint-indexed, scan-ordered, concurrency-safe collection.

    ``n_shards`` controls the lock striping of the inverted indexes
    (shard assignment is a deterministic CRC of the key, so layouts are
    stable across processes).  All public methods may be called from
    any thread; reads return snapshots.
    """

    def __init__(
        self,
        matcher: Optional[PlanMatcher] = None,
        ordering_enabled: bool = True,
        n_shards: int = 8,
    ):
        if n_shards < 1:
            raise ValueError("need at least one index shard")
        self.matcher = matcher or PlanMatcher()
        #: when False, ordered_entries() returns insertion order —
        #: an ablation knob showing why §3's ordering rules matter
        #: (the first match found is used for the rewrite)
        self.ordering_enabled = ordering_enabled
        self.index_stats = RepositoryIndexStats()
        self.n_shards = n_shards
        #: guards the entry table, sequence numbers, sig counts, the
        #: ordering structures, and index_stats; shard locks are only
        #: ever taken while holding (or after) this lock, never before
        self._lock = threading.RLock()
        self._entries: Dict[str, RepositoryEntry] = {}
        self._id_counter = 1
        self._seq_counter = 0
        #: entry id -> insertion sequence (stable-sort tie-break)
        self._seq: Dict[str, int] = {}
        # -- sharded fingerprint indexes (kept in step with _entries) --
        self._shards: List[_IndexShard] = [_IndexShard() for _ in range(n_shards)]
        self._sig_counts: Dict[str, Dict[str, int]] = {}
        # -- incremental §3 ordering ---------------------------------
        #: entry id -> how many other entries its plan subsumes
        self._scores: Dict[str, int] = {}
        #: a -> {b: a's plan contains b's plan} and the inverse
        self._subsumes: Dict[str, Set[str]] = {}
        self._subsumed_by: Dict[str, Set[str]] = {}
        #: integrated entry ids, sorted by the §3 scan key
        self._sorted: List[str] = []
        #: added but not yet integrated into the order (lazy, so
        #: ordering-free workloads never pay for matcher calls; flushed
        #: as one amortized batch by the next ordered scan)
        self._pending: List[str] = []
        #: durability hooks: called as ``listener(kind, entry)`` with
        #: kind "added"/"removed"/"refreshed", *under the repository
        #: lock*, right after the mutation commits (see
        #: subscribe_mutations)
        self._mutation_listeners: List[Callable[[str, RepositoryEntry], None]] = []

    @contextmanager
    def locked(self):
        """Hold the repository lock across a multi-step read (snapshot
        capture pairs :meth:`snapshot_state` with :meth:`entries`
        atomically).  Reentrant; honor the manager → repository →
        shard lock order when combining with manager state."""
        with self._lock:
            yield self

    def subscribe_mutations(
        self, listener: Callable[[str, "RepositoryEntry"], None]
    ) -> Callable[[], None]:
        """Register a durability listener; returns an unsubscribe
        function.

        The listener runs under the repository lock, synchronously
        with the mutation — that is the point: a journaling listener
        serializes the entry *exactly* as committed, with no window
        for a concurrent re-add or eviction to slip between commit and
        record.  Listeners must not call back into entry-level
        repository methods (the lock is held) and must never fire
        during :meth:`from_persisted_state` — restored entries are
        already persisted.
        """
        with self._lock:
            self._mutation_listeners.append(listener)

        def unsubscribe() -> None:
            with self._lock:
                if listener in self._mutation_listeners:
                    self._mutation_listeners.remove(listener)

        return unsubscribe

    def _notify_mutation(self, kind: str, entry: "RepositoryEntry") -> None:
        for listener in self._mutation_listeners:
            listener(kind, entry)

    # -- basic operations ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        with self._lock:
            return iter(list(self._entries.values()))

    def entries(self) -> List[RepositoryEntry]:
        with self._lock:
            return list(self._entries.values())

    def get(self, entry_id: str) -> RepositoryEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise RepositoryError(f"no such entry: {entry_id}") from None

    def has_entry(self, entry_id: str) -> bool:
        """Whether *entry_id* is still live (snapshot validation: a
        matcher works on candidate snapshots, so an entry can be
        evicted mid-scan; callers re-check before acting on a match)."""
        return entry_id in self._entries

    def _assign_id(self, entry: RepositoryEntry) -> None:
        if entry.entry_id:
            # Persisted id: keep it, but advance the counter past it so
            # later generated ids can never collide.
            match = _ENTRY_ID_PATTERN.match(entry.entry_id)
            if match:
                self._id_counter = max(self._id_counter, int(match.group(1)) + 1)
            return
        while True:
            candidate = f"entry_{self._id_counter:06d}"
            self._id_counter += 1
            if candidate not in self._entries:
                entry.entry_id = candidate
                return

    def add(self, entry: RepositoryEntry) -> RepositoryEntry:
        with self._lock:
            return self._add_locked(entry)

    def _add_locked(self, entry: RepositoryEntry) -> RepositoryEntry:
        self._assign_id(entry)
        eid = entry.entry_id
        if eid in self._entries:
            # Same-id re-add replaces the old entry like the historical
            # dict assignment did: deindex the old one but keep the
            # entry's insertion position (dict slot and seq tie-break).
            self._deindex_entry(self._entries[eid])
            if eid in self._pending:
                self._pending.remove(eid)
            else:
                self._retire_from_order(eid)
        else:
            self._seq[eid] = self._seq_counter
            self._seq_counter += 1
        self._entries[eid] = entry
        self._index_entry(entry)
        self._pending.append(eid)
        self._notify_mutation("added", entry)
        return entry

    def add_batch(self, entries: Iterable[RepositoryEntry]) -> List[RepositoryEntry]:
        """Add many entries in one registration batch.

        The batch defers subsumption-order upkeep: all entries land in
        the pending set and the next ordered scan (or :meth:`flush`)
        integrates them together, paying one list sort for the whole
        batch instead of an ``insort`` plus repositioning per insert.
        """
        with self._lock:
            return [self._add_locked(entry) for entry in entries]

    def add_if_absent(self, entry: RepositoryEntry) -> Tuple[RepositoryEntry, bool]:
        """Atomically register *entry* unless an equivalent plan is
        already stored.

        Returns ``(stored_entry, added)``.  This is the check-then-add
        race closed: two concurrent registrations of the same
        computation can both pass a bare :meth:`find_equivalent` probe,
        but only one can win this method; the loser receives the
        winner's entry and ``added=False``.
        """
        with self._lock:
            existing = self.find_equivalent(entry.plan)
            if existing is not None:
                return existing, False
            return self._add_locked(entry), True

    def remove(self, entry_id: str) -> RepositoryEntry:
        with self._lock:
            entry = self.get(entry_id)
            del self._entries[entry_id]
            del self._seq[entry_id]
            self._deindex_entry(entry)
            if entry_id in self._pending:
                self._pending.remove(entry_id)
            else:
                self._retire_from_order(entry_id)
            self._notify_mutation("removed", entry)
            return entry

    def refresh_entry(
        self,
        entry_id: str,
        *,
        input_mtimes: Optional[Mapping[str, int]] = None,
        input_extents: Optional[Mapping[str, InputExtent]] = None,
        input_bytes_delta: int = 0,
        output_bytes_delta: int = 0,
        output_records_delta: int = 0,
    ) -> RepositoryEntry:
        """Advance an entry's recorded input state after a delta merge.

        The incremental-recomputation layer appended the tail-run's
        output onto the entry's stored file; the entry now describes
        the *grown* computation: input mtimes/extents move to the
        captured live values and the size statistics grow by the
        delta.  The plan (and therefore the fingerprint and the
        signature indexes) is unchanged; only the §3 order position may
        move with the statistics, and the ``by_input_path`` buckets are
        extended for any genuinely new path (defensive — a delta
        refresh never changes the path set today).  Listeners observe
        the mutation as kind ``"refreshed"``.
        """
        with self._lock:
            entry = self.get(entry_id)
            if input_mtimes:
                for path in input_mtimes:
                    if path not in entry.input_mtimes:
                        shard = self._shard_of(path)
                        with shard.lock:
                            shard.by_input_path.setdefault(path, set()).add(
                                entry_id
                            )
                entry.input_mtimes.update(input_mtimes)
            if input_extents:
                entry.input_extents.update(input_extents)
            entry.stats.input_bytes += input_bytes_delta
            entry.stats.output_bytes += output_bytes_delta
            entry.stats.output_records += output_records_delta
            if entry_id in self._sorted:
                # io_ratio / exec_time feed the §3 scan key: re-place
                # the entry so _sorted stays sorted under current keys
                self._reposition(entry_id)
            self._notify_mutation("refreshed", entry)
            return entry

    def flush(self) -> None:
        """Integrate every pending entry into the §3 order now.

        Equivalent to what the next :meth:`ordered_entries` call would
        do; exposed so batch writers can pay the upkeep at a chosen
        point (e.g. between workloads) instead of inside a match scan.
        """
        if not self.ordering_enabled:
            return
        with self._lock:
            self._flush_pending_locked()

    # -- sharded fingerprint indexes ----------------------------------------------

    def _shard_of(self, key: str) -> _IndexShard:
        return self._shards[zlib.crc32(key.encode()) % self.n_shards]

    def _index_entry(self, entry: RepositoryEntry) -> None:
        eid = entry.entry_id
        fingerprint = entry.plan.fingerprint()
        shard = self._shard_of(fingerprint)
        with shard.lock:
            bucket = shard.by_fingerprint.setdefault(fingerprint, [])
            # keep buckets in insertion-sequence order even through
            # same-id re-adds, so find_equivalent can take bucket[0]
            insort(bucket, eid, key=lambda e: self._seq[e])
        for sig in entry.plan.load_signature_set():
            shard = self._shard_of(sig)
            with shard.lock:
                shard.by_load_sig.setdefault(sig, set()).add(eid)
        for path in entry.input_mtimes:
            shard = self._shard_of(path)
            with shard.lock:
                shard.by_input_path.setdefault(path, set()).add(eid)
        self._sig_counts[eid] = dict(entry.plan.signature_counts())

    def _deindex_entry(self, entry: RepositoryEntry) -> None:
        eid = entry.entry_id
        fingerprint = entry.plan.fingerprint()
        shard = self._shard_of(fingerprint)
        with shard.lock:
            bucket = shard.by_fingerprint.get(fingerprint, [])
            if eid in bucket:
                bucket.remove(eid)
                if not bucket:
                    del shard.by_fingerprint[fingerprint]
        for sig in entry.plan.load_signature_set():
            shard = self._shard_of(sig)
            with shard.lock:
                holders = shard.by_load_sig.get(sig)
                if holders is not None:
                    holders.discard(eid)
                    if not holders:
                        del shard.by_load_sig[sig]
        for path in entry.input_mtimes:
            shard = self._shard_of(path)
            with shard.lock:
                holders = shard.by_input_path.get(path)
                if holders is not None:
                    holders.discard(eid)
                    if not holders:
                        del shard.by_input_path[path]
        self._sig_counts.pop(eid, None)

    def _load_sig_pool(self, sigs: Iterable[str]) -> Set[str]:
        """Union of the load-signature buckets for *sigs* (per-shard
        locking; the caller decides whether entry-level state is also
        locked)."""
        pool: Set[str] = set()
        for sig in sigs:
            shard = self._shard_of(sig)
            with shard.lock:
                pool |= shard.by_load_sig.get(sig, set())
        return pool

    # -- merged index views (tests, debugging) ------------------------------------

    def merged_index_views(self) -> Dict[str, Dict]:
        """Deep-copied, merged snapshots of the sharded indexes, keyed
        ``by_fingerprint`` / ``by_load_sig`` / ``by_input_path``.

        Read-only by construction: the returned containers are copies,
        so code that mutates them (as pre-shard code mutated the old
        ``_by_*`` dict attributes) cannot silently desync the real
        shard buckets — there is deliberately no attribute exposing
        them directly.
        """
        views: Dict[str, Dict] = {
            "by_fingerprint": {},
            "by_load_sig": {},
            "by_input_path": {},
        }
        for shard in self._shards:
            with shard.lock:
                for key, bucket in shard.by_fingerprint.items():
                    views["by_fingerprint"][key] = list(bucket)
                for key, holders in shard.by_load_sig.items():
                    views["by_load_sig"][key] = set(holders)
                for key, holders in shard.by_input_path.items():
                    views["by_input_path"][key] = set(holders)
        return views

    def find_equivalent(self, plan: PhysicalPlan) -> Optional[RepositoryEntry]:
        """An existing entry whose plan computes exactly *plan*.

        O(1): one cached fingerprint plus one dict probe in the
        fingerprint's shard (used to be a linear scan re-fingerprinting
        every stored plan).
        """
        fingerprint = plan.fingerprint()
        shard = self._shard_of(fingerprint)
        with self._lock:
            self.index_stats.exact_lookups += 1
            with shard.lock:
                bucket = shard.by_fingerprint.get(fingerprint)
                if not bucket:
                    return None
                # buckets are kept in insertion order, matching the
                # historical first-found scan
                first = bucket[0]
            self.index_stats.exact_hits += 1
            return self._entries[first]

    def find_by_output_path(self, path: str) -> Optional[RepositoryEntry]:
        for entry in self.entries():
            if entry.output_path == path:
                return entry
        return None

    def input_paths(self) -> List[str]:
        """Distinct source-dataset paths recorded by live entries."""
        paths: List[str] = []
        for shard in self._shards:
            with shard.lock:
                paths.extend(shard.by_input_path)
        return paths

    def entries_with_input(self, path: str) -> List[RepositoryEntry]:
        """Entries whose plans read *path* (insertion order)."""
        with self._lock:
            shard = self._shard_of(path)
            with shard.lock:
                ids = set(shard.by_input_path.get(path, set()))
            return [
                self._entries[eid] for eid in sorted(ids, key=lambda e: self._seq[e])
            ]

    @property
    def total_stored_bytes(self) -> int:
        return sum(e.stats.output_bytes for e in self.entries())

    # -- candidate pruning (the indexed fast path) --------------------------------

    @staticmethod
    def _counts_contained(inner: Dict[str, int], outer: Dict[str, int]) -> bool:
        """True when *inner* is a sub-multiset of *outer* — necessary
        for inner's plan to be contained in outer's (every repo
        operator needs a distinct, signature-equal image)."""
        return all(outer.get(sig, 0) >= n for sig, n in inner.items())

    def match_candidates(
        self, plan: PhysicalPlan, *, indexed: bool = True
    ) -> Tuple[List[RepositoryEntry], MatchScanStats]:
        """Scan-ordered entries that can possibly be contained in
        *plan*, plus what the pruning saw.

        With ``indexed=False`` this degrades to the historical full
        scan (every entry is a candidate) — kept as the benchmark and
        ablation baseline.  Pruning is sound: it only removes entries
        whose Load set or operator-signature multiset proves Algorithm
        1 would reject them, so the surviving first match is byte-for-
        byte the one the full scan finds.  The returned list is a
        snapshot: entries removed concurrently stay visible to a scan
        already in flight.
        """
        load_sigs = plan.load_signature_set()
        counts = dict(plan.signature_counts())
        with self._lock:
            ordered = self._ordered_entries_locked()
            total = len(ordered)
            stats = MatchScanStats(entries_total=total)
            if not indexed:
                stats.candidates = total
                self.index_stats.scans += 1
                self.index_stats.candidates_examined += total
                return ordered, stats
            pool = self._load_sig_pool(load_sigs)
            if pool:
                keep = {
                    eid
                    for eid in pool
                    if eid in self._sig_counts
                    and self._counts_contained(self._sig_counts[eid], counts)
                }
            else:
                keep = set()
            candidates = [e for e in ordered if e.entry_id in keep]
            stats.candidates = len(candidates)
            stats.pruned = total - len(candidates)
            self.index_stats.scans += 1
            self.index_stats.candidates_examined += stats.candidates
            self.index_stats.candidates_pruned += stats.pruned
            return candidates, stats

    # -- ordering (§3, incrementally maintained) ----------------------------------

    def _order_key(self, entry_id: str) -> tuple:
        entry = self._entries[entry_id]
        return (
            -self._scores.get(entry_id, 0),
            -entry.stats.io_ratio,
            -entry.stats.exec_time_s,
            self._seq[entry_id],
        )

    def _contains_traversal(self, a: RepositoryEntry, b: RepositoryEntry) -> bool:
        self.index_stats.subsume_checks += 1
        return self.matcher.contains(a.plan, b.plan)

    def _record_subsumption(self, a_id: str, b_id: str) -> None:
        self._subsumes.setdefault(a_id, set()).add(b_id)
        self._subsumed_by.setdefault(b_id, set()).add(a_id)
        self._scores[a_id] = self._scores.get(a_id, 0) + 1

    def _reposition(self, entry_id: str) -> None:
        self._sorted.remove(entry_id)
        insort(self._sorted, entry_id, key=self._order_key)

    def _compute_subsumptions(self, entry_id: str, reposition: bool) -> None:
        """Record the subsumption pairs of one pending entry: compare
        it (fingerprint-pruned) against every integrated or
        earlier-batched entry sharing a Load, updating scores on both
        sides.

        With ``reposition`` each *other* entry whose score grew is
        re-placed immediately — ``_sorted`` must stay sorted under
        current keys at every step, or later ``insort`` calls bisect a
        stale list.  Batch flushes pass False: one final total-order
        sort supersedes every intermediate placement.
        """
        entry = self._entries[entry_id]
        counts = self._sig_counts[entry_id]
        pool = self._load_sig_pool(entry.plan.load_signature_set())
        pool.discard(entry_id)
        self._scores.setdefault(entry_id, 0)
        for other_id in sorted(pool, key=lambda e: self._seq[e]):
            if other_id not in self._scores:
                continue  # still pending; handled when it integrates
            other = self._entries[other_id]
            other_counts = self._sig_counts[other_id]
            if self._counts_contained(other_counts, counts):
                if self._contains_traversal(entry, other):
                    self._record_subsumption(entry_id, other_id)
            else:
                self.index_stats.subsume_pruned += 1
            if self._counts_contained(counts, other_counts):
                if self._contains_traversal(other, entry):
                    self._record_subsumption(other_id, entry_id)
                    if reposition and other_id in self._sorted:
                        self._reposition(other_id)
            else:
                self.index_stats.subsume_pruned += 1

    def _integrate(self, entry_id: str) -> None:
        """Fold one pending entry into the maintained order: record its
        subsumption pairs (repositioning as scores change), insert by
        key."""
        self.index_stats.order_integrations += 1
        self._compute_subsumptions(entry_id, reposition=True)
        insort(self._sorted, entry_id, key=self._order_key)

    def _integrate_batch(self, batch: List[str]) -> None:
        """Fold a whole pending batch into the order at once.

        Subsumption pairs are computed per entry exactly as the
        one-at-a-time path would (earlier batch entries are visible to
        later ones, mirroring FIFO integration), but placement is paid
        once: a single total-order sort of the merged list replaces
        per-entry ``insort`` and per-move repositioning.
        """
        self.index_stats.batch_flushes += 1
        self.index_stats.batch_entries += len(batch)
        for entry_id in batch:
            self._compute_subsumptions(entry_id, reposition=False)
        self._sorted.extend(batch)
        self._sorted.sort(key=self._order_key)

    def _flush_pending_locked(self) -> None:
        if not self._pending:
            return
        if len(self._pending) == 1:
            self._integrate(self._pending.pop(0))
            return
        batch, self._pending = self._pending, []
        self._integrate_batch(batch)

    def _retire_from_order(self, entry_id: str) -> None:
        """Remove an integrated entry: retire its cached subsumption
        pairs (no matcher calls) and fix the scores they carried."""
        # drop the victim first — repositioning probes _sorted keys
        if entry_id in self._sorted:
            self._sorted.remove(entry_id)
        for a_id in self._subsumed_by.pop(entry_id, set()):
            subsumed = self._subsumes.get(a_id)
            if subsumed is not None:
                subsumed.discard(entry_id)
            if a_id in self._scores:
                self._scores[a_id] -= 1
                if a_id in self._sorted:
                    self._reposition(a_id)
        for b_id in self._subsumes.pop(entry_id, set()):
            holders = self._subsumed_by.get(b_id)
            if holders is not None:
                holders.discard(entry_id)
        self._scores.pop(entry_id, None)

    def _ordered_entries_locked(self) -> List[RepositoryEntry]:
        if not self.ordering_enabled:
            return list(self._entries.values())
        self._flush_pending_locked()
        return [self._entries[eid] for eid in self._sorted]

    def ordered_entries(self) -> List[RepositoryEntry]:
        """Entries in match-scan order (best candidates first).

        Single stable sort by (subsumption score desc, io ratio desc,
        exec time desc, insertion order) — provably the same order as
        the historical two-pass stable sort, but maintained entry by
        entry (or batch by batch) instead of recomputed O(n²) per
        mutation.  Returns a snapshot safe to iterate without locks.

        Integration of pending entries (including its matcher
        traversals) runs under the repository lock — the §3 order is
        global state, so upkeep is deliberately exclusive; batching
        keeps that critical section short by amortizing list
        maintenance across the whole pending set.
        """
        with self._lock:
            return self._ordered_entries_locked()

    # -- persistence --------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Everything beyond the entries themselves that a faithful
        restore needs: the id/sequence counters, configuration, the
        per-entry insertion sequence, and the full incremental §3
        ordering state (scores keep zero-valued members — membership
        in ``scores`` is what marks an entry as *integrated*, which
        pending-batch subsumption computation relies on)."""
        with self._lock:
            return {
                "id_counter": self._id_counter,
                "seq_counter": self._seq_counter,
                "ordering_enabled": self.ordering_enabled,
                "n_shards": self.n_shards,
                "seq": dict(self._seq),
                "order": {
                    "scores": dict(self._scores),
                    "subsumes": {
                        a: sorted(bs) for a, bs in self._subsumes.items() if bs
                    },
                    "sorted": list(self._sorted),
                    "pending": list(self._pending),
                },
            }

    @classmethod
    def from_persisted_state(
        cls,
        entries: Iterable[RepositoryEntry],
        seqs: Mapping[str, int],
        state: Mapping,
        *,
        matcher: Optional[PlanMatcher] = None,
        n_shards: Optional[int] = None,
    ) -> "Repository":
        """Install persisted entries and ordering state directly —
        O(entries) index rebuild, zero matcher traversals, zero
        re-registration.

        Mutation listeners deliberately never fire here: restored
        entries are already persisted, and the persister attaches only
        after recovery completes.
        """
        repo = cls(
            matcher=matcher,
            ordering_enabled=bool(state.get("ordering_enabled", True)),
            n_shards=n_shards or int(state.get("n_shards", 8)),
        )
        with repo._lock:
            max_seq = -1
            max_id = 0
            for entry in sorted(entries, key=lambda e: seqs[e.entry_id]):
                eid = entry.entry_id
                if not eid:
                    raise RepositoryError("persisted entry without an id")
                seq = int(seqs[eid])
                repo._seq[eid] = seq
                repo._entries[eid] = entry
                repo._index_entry(entry)
                max_seq = max(max_seq, seq)
                match = _ENTRY_ID_PATTERN.match(eid)
                if match:
                    max_id = max(max_id, int(match.group(1)))
            # counters resume past everything persisted, so new
            # registrations can never collide with restored ids
            repo._id_counter = max(int(state.get("id_counter", 1)), max_id + 1)
            repo._seq_counter = max(int(state.get("seq_counter", 0)), max_seq + 1)
            order = state.get("order")
            if order is None:
                # no recorded order (minimal/legacy payload): entries
                # integrate lazily, in insertion-sequence order
                repo._pending = sorted(repo._entries, key=repo._seq.__getitem__)
            else:
                repo._scores = {
                    eid: int(score) for eid, score in order.get("scores", {}).items()
                }
                repo._subsumes = {
                    a: set(bs) for a, bs in order.get("subsumes", {}).items()
                }
                for a_id, subsumed in repo._subsumes.items():
                    for b_id in subsumed:
                        repo._subsumed_by.setdefault(b_id, set()).add(a_id)
                repo._sorted = list(order.get("sorted", []))
                repo._pending = list(order.get("pending", []))
        return repo

    @classmethod
    def restore(
        cls,
        snapshot,
        journal=None,
        *,
        matcher: Optional[PlanMatcher] = None,
        n_shards: Optional[int] = None,
    ) -> "Repository":
        """Rebuild a repository from a persisted snapshot plus the
        post-snapshot journal — the crash-recovery entry point.

        *snapshot* is a :class:`~repro.persistence.snapshot.RepositorySnapshot`
        or its encoded bytes; *journal* is raw journal bytes or an
        iterable of decoded records.  All inverted indexes and the
        incremental §3 order come back in O(entries read) without
        re-registering any plan, and the entry-id counter resumes past
        every persisted id.  (For full-system recovery — kept paths,
        clock, DFS id floors — use :func:`repro.persistence.recover`.)
        """
        from repro.persistence.durability import ReplayTarget
        from repro.persistence.journal import decode_journal
        from repro.persistence.snapshot import RepositorySnapshot

        if isinstance(snapshot, (bytes, bytearray, memoryview)):
            snapshot = RepositorySnapshot.from_bytes(bytes(snapshot))
        repo = snapshot.restore_repository(matcher=matcher, n_shards=n_shards)
        if journal:
            if isinstance(journal, (bytes, bytearray, memoryview)):
                records = decode_journal(bytes(journal)).records
            else:
                records = journal
            ReplayTarget(repo).apply_all(records)
        return repo

    @classmethod
    def from_legacy_json(
        cls, text: str, matcher: Optional[PlanMatcher] = None
    ) -> "Repository":
        """The one legacy-JSON loader: rebuild a repository from the
        pre-snapshot ``{"entries": [...]}`` dump shape via batched
        re-registration.

        Everything else goes through the snapshot codec —
        :meth:`restore` for snapshot/journal bytes, or
        :class:`repro.persistence.RepositorySnapshot` to capture and
        encode live state.
        """
        data = json.loads(text)
        repo = cls(matcher=matcher)
        repo.add_batch(
            RepositoryEntry.from_dict(entry_data)
            for entry_data in data.get("entries", [])
        )
        return repo

    def __repr__(self) -> str:
        return (
            f"Repository(entries={len(self._entries)}, "
            f"stored_bytes={self.total_stored_bytes})"
        )
