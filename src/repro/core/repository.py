"""The ReStore repository of stored MapReduce job outputs.

Each entry keeps exactly what the paper lists (§2.2): (1) the physical
plan of the job that produced the output, (2) the output's filename in
the DFS, and (3) statistics — input/output sizes, execution time, how
often and how recently the output was reused.

``ordered_entries`` realizes §3's ordering rules so that the *first*
match found during the sequential scan is the best one:

1. plan A before plan B when A subsumes B (all of B's operators have
   equivalents in A);
2. otherwise by the input/output size ratio, then by execution time
   (both: higher first).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.matcher import PlanMatcher
from repro.exceptions import RepositoryError
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema

_ENTRY_COUNTER = itertools.count(1)


@dataclass
class EntryStats:
    """Execution statistics stored with a repository entry (§5)."""

    input_bytes: int = 0
    output_bytes: int = 0
    output_records: int = 0
    #: estimated standalone execution time of the producing job (sim s)
    exec_time_s: float = 0.0

    @property
    def io_ratio(self) -> float:
        """Input/output size ratio — ordering metric 1 (higher = better)."""
        return self.input_bytes / max(1, self.output_bytes)


@dataclass
class RepositoryEntry:
    """One stored job (or sub-job) output."""

    plan: PhysicalPlan
    output_path: str
    output_schema: Schema
    stats: EntryStats = field(default_factory=EntryStats)
    anchor_kind: str = "whole-job"
    created_at: int = 0
    last_used_at: int = 0
    use_count: int = 0
    #: DFS logical mtimes of the entry's source datasets at creation
    #: (eviction Rule 4 compares against current mtimes)
    input_mtimes: Dict[str, int] = field(default_factory=dict)
    entry_id: str = field(
        default_factory=lambda: f"entry_{next(_ENTRY_COUNTER):06d}"
    )

    def mark_used(self, now: int) -> None:
        self.use_count += 1
        self.last_used_at = now

    def to_dict(self) -> dict:
        return {
            "entry_id": self.entry_id,
            "plan": self.plan.to_dict(),
            "output_path": self.output_path,
            "output_schema": self.output_schema.to_dict(),
            "stats": {
                "input_bytes": self.stats.input_bytes,
                "output_bytes": self.stats.output_bytes,
                "output_records": self.stats.output_records,
                "exec_time_s": self.stats.exec_time_s,
            },
            "anchor_kind": self.anchor_kind,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
            "use_count": self.use_count,
            "input_mtimes": self.input_mtimes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RepositoryEntry":
        entry = cls(
            plan=PhysicalPlan.from_dict(data["plan"]),
            output_path=data["output_path"],
            output_schema=Schema.from_dict(data["output_schema"]),
            stats=EntryStats(**data["stats"]),
            anchor_kind=data.get("anchor_kind", "whole-job"),
            created_at=data.get("created_at", 0),
            last_used_at=data.get("last_used_at", 0),
            use_count=data.get("use_count", 0),
            input_mtimes=dict(data.get("input_mtimes", {})),
        )
        entry.entry_id = data.get("entry_id", entry.entry_id)
        return entry


class Repository:
    """Ordered collection of :class:`RepositoryEntry` objects."""

    def __init__(
        self,
        matcher: Optional[PlanMatcher] = None,
        ordering_enabled: bool = True,
    ):
        self.matcher = matcher or PlanMatcher()
        #: when False, ordered_entries() returns insertion order —
        #: an ablation knob showing why §3's ordering rules matter
        #: (the first match found is used for the rewrite)
        self.ordering_enabled = ordering_enabled
        self._entries: Dict[str, RepositoryEntry] = {}
        self._order_cache: Optional[List[RepositoryEntry]] = None
        self._subsume_cache: Dict[tuple, bool] = {}

    # -- basic operations ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(list(self._entries.values()))

    def entries(self) -> List[RepositoryEntry]:
        return list(self._entries.values())

    def get(self, entry_id: str) -> RepositoryEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise RepositoryError(f"no such entry: {entry_id}") from None

    def add(self, entry: RepositoryEntry) -> RepositoryEntry:
        self._entries[entry.entry_id] = entry
        self._invalidate()
        return entry

    def remove(self, entry_id: str) -> RepositoryEntry:
        entry = self.get(entry_id)
        del self._entries[entry_id]
        self._invalidate()
        return entry

    def find_equivalent(self, plan: PhysicalPlan) -> Optional[RepositoryEntry]:
        """An existing entry whose plan computes exactly *plan*."""
        fingerprint = plan.fingerprint()
        for entry in self._entries.values():
            if entry.plan.fingerprint() == fingerprint:
                return entry
        return None

    def find_by_output_path(self, path: str) -> Optional[RepositoryEntry]:
        for entry in self._entries.values():
            if entry.output_path == path:
                return entry
        return None

    @property
    def total_stored_bytes(self) -> int:
        return sum(e.stats.output_bytes for e in self._entries.values())

    # -- ordering (§3) --------------------------------------------------------------

    def _subsumes(self, a: RepositoryEntry, b: RepositoryEntry) -> bool:
        key = (a.entry_id, b.entry_id)
        if key not in self._subsume_cache:
            self._subsume_cache[key] = self.matcher.contains(a.plan, b.plan)
        return self._subsume_cache[key]

    def ordered_entries(self) -> List[RepositoryEntry]:
        """Entries in match-scan order (best candidates first)."""
        if not self.ordering_enabled:
            return list(self._entries.values())
        if self._order_cache is not None:
            return self._order_cache

        entries = list(self._entries.values())
        # Metric order first (rule 2): io ratio desc, exec time desc.
        entries.sort(
            key=lambda e: (e.stats.io_ratio, e.stats.exec_time_s),
            reverse=True,
        )
        # Stable topological pass for rule 1: count how many other
        # entries each entry subsumes; more-subsuming entries first.
        # (Subsumption is a partial order; counting dominated entries
        # linearizes it while respecting every subsumption pair.)
        scores = {
            e.entry_id: sum(
                1
                for other in entries
                if other is not e and self._subsumes(e, other)
            )
            for e in entries
        }
        entries.sort(key=lambda e: scores[e.entry_id], reverse=True)
        self._order_cache = entries
        return entries

    def _invalidate(self) -> None:
        self._order_cache = None
        self._subsume_cache.clear()

    # -- persistence -------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"entries": [e.to_dict() for e in self._entries.values()]},
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str, matcher: Optional[PlanMatcher] = None) -> "Repository":
        repo = cls(matcher=matcher)
        data = json.loads(text)
        for entry_data in data.get("entries", []):
            repo.add(RepositoryEntry.from_dict(entry_data))
        return repo

    def __repr__(self) -> str:
        return (
            f"Repository(entries={len(self._entries)}, "
            f"stored_bytes={self.total_stored_bytes})"
        )
