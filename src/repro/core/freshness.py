"""Match-time input-freshness classification and delta eligibility.

ReStore's original freshness story was lazy: eviction Rule 4 swept
stale entries *between* workflows, while the matcher happily rewrote
against entries whose recorded ``input_mtimes`` no longer matched the
DFS.  This module is the eager half: every matched entry's inputs are
classified against the live filesystem *before* the rewrite commits.

Classification per input path (i2MapReduce-style, PAPERS.md):

=============  =======================================================
``fresh``      same inode (birth), same length — content unchanged
               (appends are the only in-place mutation, so equal size
               on the same inode proves byte identity even when the
               mtime moved via touch)
``appended``   same inode, length grew — the recorded bytes are an
               exact prefix; delta-eligible chains rerun only the tail
``rewritten``  different inode at the path (delete-and-recreate), or a
               same-inode shrink (impossible today, classified
               defensively)
``dead``       the path no longer exists
=============  =======================================================

Entries recorded before ``input_extents`` existed (legacy snapshots /
journals) fall back to the mtime comparison: any movement classifies
as ``rewritten`` — conservative, never stale-serving.

``delta_chain`` decides whether an entry's sub-plan may be recomputed
incrementally: a single-Load linear chain of order-preserving,
row-local operators (FILTER / FOREACH / pass-through SPLIT) satisfies
``f(old ++ tail) == f(old) ++ f(tail)``, so UNION-merging the stored
output with the chain run over the appended tail is byte-identical to
a full rerun.  GROUP/JOIN (shuffles), LIMIT (not decomposable over
concatenation), multi-input UNIONs, and multi-Load shapes are *not*
delta-safe and fall back to a full rerun (``DeltaFallback``).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.dfs.namenode import InputExtent
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POSplit,
    POStore,
)

FRESH = "fresh"
APPENDED = "appended"
REWRITTEN = "rewritten"
DEAD = "dead"


def classify_extent(
    recorded: InputExtent,
    live: Optional[InputExtent],
    prefix_crc=None,
) -> str:
    """Classify one input given its recorded and live extents.

    ``prefix_crc`` is an optional ``size -> Optional[crc32]`` callable
    (normally ``dfs.prefix_crc32`` curried over the path).  Logical
    clocks are process-local, so a birth mismatch alone cannot tell a
    delete-and-recreate from a persistence restart that re-materialized
    the very same dataset; the checksum settles it — a verified prefix
    keeps the entry usable (fresh or appended), anything unverifiable
    classifies as rewritten.
    """
    if live is None:
        return DEAD
    if live.size < recorded.size:
        return REWRITTEN
    if live.birth != recorded.birth:
        if recorded.crc is None or prefix_crc is None:
            return REWRITTEN
        if prefix_crc(recorded.size) != recorded.crc:
            return REWRITTEN
    if live.size > recorded.size:
        return APPENDED
    return FRESH


def classify_input(
    entry, path: str, live: Optional[InputExtent], dfs=None
) -> str:
    """Classify one recorded input of *entry* against its live extent.

    Prefers the entry's recorded :class:`InputExtent` (*dfs*, when
    given, supplies the prefix-checksum probe for cross-restart inode
    identity); legacy entries without one degrade to the mtime
    comparison, where any movement is ``rewritten`` (no append
    detection, but never stale reuse).
    """
    recorded = entry.input_extents.get(path)
    if recorded is not None:
        prefix_crc = None
        if dfs is not None:
            prefix_crc = lambda size: dfs.prefix_crc32(path, size)  # noqa: E731
        return classify_extent(recorded, live, prefix_crc)
    if live is None:
        return DEAD
    recorded_mtime = entry.input_mtimes.get(path)
    if recorded_mtime is None or live.mtime > recorded_mtime:
        return REWRITTEN
    return FRESH


@dataclass
class EntryFreshness:
    """The per-input classification of one matched entry."""

    #: input path -> FRESH / APPENDED / REWRITTEN / DEAD
    kinds: Dict[str, str] = field(default_factory=dict)
    #: live extents of the appended inputs, captured at classification
    #: time (tail reads are bounded by these, so a racing append just
    #: classifies as appended again on the next probe)
    appended: Dict[str, InputExtent] = field(default_factory=dict)

    @property
    def stale(self) -> bool:
        """An input was rewritten or deleted: the entry is unusable."""
        return any(kind in (REWRITTEN, DEAD) for kind in self.kinds.values())

    @property
    def is_appended(self) -> bool:
        """Inputs only grew: the stored output is a reusable prefix."""
        return not self.stale and bool(self.appended)

    @property
    def fresh(self) -> bool:
        return not self.stale and not self.appended


def classify_entry(entry, dfs) -> EntryFreshness:
    """Classify every recorded input of *entry* against the live DFS.

    A checksum-verified birth mismatch (the persistence-restart case)
    also *rebases* the entry's recorded extent onto the live inode's
    identity, so later probes compare births directly instead of
    re-hashing the prefix on every match.  The write is guarded by an
    identity check on the extent object, so a concurrent delta refresh
    replacing the extent is never clobbered with pre-refresh state.
    """
    freshness = EntryFreshness()
    paths = set(entry.input_mtimes) | set(entry.input_extents)
    for path in sorted(paths):
        live = dfs.input_extent(path)
        kind = classify_input(entry, path, live, dfs)
        freshness.kinds[path] = kind
        if kind == APPENDED:
            freshness.appended[path] = live
        recorded = entry.input_extents.get(path)
        if (
            kind in (FRESH, APPENDED)
            and recorded is not None
            and recorded.birth != live.birth
            and entry.input_extents.get(path) is recorded
        ):
            entry.input_extents[path] = replace(
                recorded,
                mtime=live.mtime,
                generation=live.generation,
                birth=live.birth,
            )
    return freshness


#: operators that are row-local and order-preserving, so they commute
#: with input concatenation (the same family the payload-reuse hints'
#: ancestry walk trusts — see ``JobInterpreter._source_hint``).  LIMIT
#: is deliberately absent: limit(old ++ tail) != limit(old) ++
#: limit(tail).  UNION is absent because a multi-input merge
#: interleaves by chunk arrival, which is not stable across different
#: input partitionings.
_CHAIN_OPS = (POFilter, POForEach, POSplit)


def delta_chain(plan) -> Optional[List[PhysicalOperator]]:
    """The identity-preserving operator chain of a delta-eligible plan.

    Returns the operators strictly between the single Load and the
    Store in flow order, or None when the plan is not a linear
    Load -> {FILTER,FOREACH,SPLIT}* -> Store chain covering every
    operator.  Works on lazy plans (materializes on access).
    """
    loads = plan.loads()
    if len(loads) != 1:
        return None
    chain: List[PhysicalOperator] = []
    op: PhysicalOperator = loads[0]
    visited = {op.op_id}
    while True:
        succs = plan.successors(op)
        if len(succs) != 1:
            return None
        op = succs[0]
        if op.op_id in visited:
            return None
        visited.add(op.op_id)
        if isinstance(op, POStore):
            # linear and exhaustive: no side branches, no extra stores
            return chain if len(visited) == len(plan) else None
        if not isinstance(op, _CHAIN_OPS):
            return None
        chain.append(op)


def delta_upgradeable(entry) -> bool:
    """Whether an append-grown *entry* can be refreshed incrementally
    (eviction Rule 4 keeps such entries instead of killing them)."""
    return delta_chain(entry.plan) is not None
