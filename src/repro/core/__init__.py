"""ReStore core: repository, matcher/rewriter, enumerator, policies."""

from repro.core.algorithm1 import PairwisePlanTraversal, algorithm1_contains
from repro.core.enumerator import CandidateSubJob, SubJobEnumerator
from repro.core.eviction import (
    EVICTION_POLICIES,
    CapacityEviction,
    EvictionPolicy,
    InputModifiedEviction,
    TimeWindowEviction,
    eviction_by_name,
)
from repro.core.heuristics import (
    HEURISTICS,
    AggressiveHeuristic,
    ConservativeHeuristic,
    Heuristic,
    NeverMaterialize,
    NoHeuristic,
    classify_operator,
    heuristic_by_name,
)
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.matcher import MatchResult, PlanMatcher, operators_equivalent
from repro.core.registry import PluginRegistry
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.core.rewriter import PlanRewriter
from repro.core.selector import (
    SELECTORS,
    KeepAllSelector,
    KeepDecision,
    RuleBasedSelector,
    Selector,
    selector_by_name,
)

__all__ = [
    "AggressiveHeuristic",
    "EVICTION_POLICIES",
    "HEURISTICS",
    "PluginRegistry",
    "SELECTORS",
    "eviction_by_name",
    "selector_by_name",
    "PairwisePlanTraversal",
    "algorithm1_contains",
    "CandidateSubJob",
    "CapacityEviction",
    "ConservativeHeuristic",
    "EntryStats",
    "EvictionPolicy",
    "Heuristic",
    "InputModifiedEviction",
    "KeepAllSelector",
    "KeepDecision",
    "MatchResult",
    "NeverMaterialize",
    "NoHeuristic",
    "PlanMatcher",
    "PlanRewriter",
    "Repository",
    "RepositoryEntry",
    "ReStoreConfig",
    "ReStoreManager",
    "RuleBasedSelector",
    "Selector",
    "SubJobEnumerator",
    "TimeWindowEviction",
    "classify_operator",
    "heuristic_by_name",
    "operators_equivalent",
]
