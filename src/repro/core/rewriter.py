"""Plan rewriting: replace matched sub-plans with Loads of stored outputs.

Paper §3: "The matched part of the input physical plan is replaced
with a Load operator that reads the output of the repository plan from
the distributed file system."
"""

from __future__ import annotations

from typing import List

from repro.core.matcher import MatchResult
from repro.exceptions import PlanError
from repro.mapreduce.job import MapReduceJob
from repro.pig.physical.operators import (
    POLoad,
    POSplit,
    POStore,
    POUnion,
)
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema


class PlanRewriter:
    """Applies matches to job plans."""

    def rewrite_partial(
        self,
        plan: PhysicalPlan,
        match: MatchResult,
        output_path: str,
        output_schema: Schema,
    ) -> POLoad:
        """Replace the matched sub-plan with a Load of the stored output.

        The frontier's consumers are re-pointed at the new Load; matched
        operators that no longer reach any store are garbage-collected.
        Returns the inserted Load.
        """
        frontier = match.frontier
        if frontier is None or frontier not in plan:
            raise PlanError("match frontier is not part of the plan")

        load = POLoad(output_path, output_schema)
        plan.add(load)
        for succ in list(plan.successors(frontier)):
            plan.disconnect(frontier, succ)
            plan.connect(load, succ)

        self._garbage_collect(plan)
        if load not in plan:
            raise PlanError("rewrite removed its own load (no live consumers)")
        return load

    def rewrite_delta(
        self,
        plan: PhysicalPlan,
        match: MatchResult,
        chain: List,
        stored_path: str,
        stored_schema: Schema,
        tail_path: str,
        tail_schema: Schema,
        delta_path: str,
    ) -> POUnion:
        """Splice a delta recomputation in place of the matched sub-plan.

        The matched entry's input grew by an append and its sub-plan is
        an identity-preserving *chain* (``freshness.delta_chain``), so
        ``f(old ++ tail) == f(old) ++ f(tail)``: instead of rerunning
        the chain over the whole input, the frontier's consumers read

            UNION(Load(stored output), chain-clone(Load(appended tail)))

        with a Split tee side-storing the tail branch into *delta_path*
        — the manager appends those delta bytes onto the entry's stored
        output after the job, advancing the entry's recorded extents.

        The stored-output Load is added *before* the tail Load: the
        interpreter streams loads in plan insertion order and store
        rows accumulate in arrival order, so the merged stream (and any
        downstream store) is stored-prefix ++ tail-suffix — byte-
        identical to a full rerun.  Returns the inserted Union.
        """
        frontier = match.frontier
        if frontier is None or frontier not in plan:
            raise PlanError("match frontier is not part of the plan")

        stored_load = POLoad(stored_path, stored_schema)
        plan.add(stored_load)
        tail_load = POLoad(tail_path, tail_schema)
        plan.add(tail_load)

        prev = tail_load
        for op in chain:
            clone = op.copy()
            plan.add(clone)
            plan.connect(prev, clone)
            prev = clone

        tee = POSplit(schema=stored_schema)
        plan.add(tee)
        plan.connect(prev, tee)
        delta_store = POStore(delta_path, schema=stored_schema, side=True)
        plan.add(delta_store)
        plan.connect(tee, delta_store)

        union = POUnion(2, schema=stored_schema)
        plan.add(union)
        plan.connect(stored_load, union)
        plan.connect(tee, union)

        for succ in list(plan.successors(frontier)):
            plan.disconnect(frontier, succ)
            plan.connect(union, succ)

        self._garbage_collect(plan)
        if union not in plan:
            raise PlanError("delta rewrite removed its own union (no live consumers)")
        return union

    def rewrite_as_copy_job(
        self,
        job: MapReduceJob,
        output_path: str,
        output_schema: Schema,
    ) -> None:
        """Whole-plan match on a *final* job: degrade to Load -> Store.

        The result already exists in the repository; the job only has
        to place a copy at the path the user asked for.
        """
        store = job.plan.primary_store()
        if store is None:
            raise PlanError("copy-job rewrite needs a primary store")
        final_path = store.path
        new_plan = PhysicalPlan()
        load = POLoad(output_path, output_schema)
        new_store = POStore(final_path, schema=output_schema)
        new_plan.add(load)
        new_plan.add(new_store)
        new_plan.connect(load, new_store)
        job.plan = new_plan

    def redirect_loads(
        self, jobs: List[MapReduceJob], old_path: str, new_path: str
    ) -> int:
        """Point every Load of *old_path* in *jobs* at *new_path*.

        Used when a whole job is eliminated: its consumers must read
        the repository copy instead (paper §3, whole-job case).
        """
        redirected = 0
        for job in jobs:
            for load in job.plan.loads():
                if load.path == old_path:
                    load.path = new_path
                    # in-place mutation: cached signature digests and
                    # any plan fingerprint built on them are now stale
                    load.invalidate_fingerprint()
                    redirected += 1
        return redirected

    # -- internals -----------------------------------------------------------------

    @staticmethod
    def _garbage_collect(plan: PhysicalPlan) -> None:
        """Drop operators that can no longer reach a Store.

        After splicing in the Load, the matched chain dangles unless one
        of its operators still feeds an unmatched consumer (possible
        with Split tees); iteratively removing store-less sinks keeps
        exactly the live part.
        """
        changed = True
        while changed:
            changed = False
            for op in list(plan.operators):
                if isinstance(op, POStore):
                    continue
                if not plan.successors(op):
                    plan.remove(op)
                    changed = True
        # Contract pass-through splits left with a single successor.
        for op in list(plan.operators):
            if isinstance(op, POSplit):
                succs = plan.successors(op)
                preds = plan.predecessors(op)
                if len(succs) == 1 and len(preds) == 1:
                    pred, succ = preds[0], succs[0]
                    plan.remove(op)
                    plan.connect(pred, succ)
