"""ReStoreManager: the paper's three components wired into the job
submission loop (§6.2).

For every job about to run: (1) the plan matcher and rewriter scans
the repository — repeatedly, restarting after every successful rewrite
— and rewrites the job to load stored outputs; (2) the sub-job
enumerator injects Split+Store instrumentation chosen by the active
heuristic; after execution, (3) the enumerated sub-job selector
decides which outputs stay in the repository, statistics are recorded,
and eviction policies run between workflows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.core.enumerator import CandidateSubJob, SubJobEnumerator
from repro.core.eviction import EvictionPolicy
from repro.core.heuristics import Heuristic, heuristic_by_name
from repro.core.matcher import PlanMatcher
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.core.rewriter import PlanRewriter
from repro.core.selector import KeepAllSelector, Selector
from repro.costmodel.model import CostModel, estimate_standalone_time
from repro.dfs.filesystem import DistributedFileSystem
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.runner import JobListener
from repro.mapreduce.stats import JobStats
from repro.pig.physical.operators import POLoad


@dataclass
class ReStoreConfig:
    """Behavioural switches for the manager."""

    heuristic: Union[str, Heuristic] = "aggressive"
    rewrite_enabled: bool = True
    inject_enabled: bool = True
    #: whole-job registration policy (§2.1 type 1): "all", "none", or
    #: "temporary-only".  The last registers only intermediate
    #: (workflow-internal) job outputs — it isolates sub-job reuse for
    #: a query's final result while still letting multi-job workflows
    #: chain through the repository: §3's "even jobs whose input is the
    #: output of other jobs that are also stored in the repository"
    #: requires consumers to be redirected to the stored (canonical)
    #: copy of their producer's output.
    register_whole_jobs: str = "all"
    selector: Selector = field(default_factory=KeepAllSelector)
    eviction_policies: List[EvictionPolicy] = field(default_factory=list)
    #: upper bound on rewrite rescans per job (paper: loop until no match)
    max_rewrite_passes: int = 20

    def resolve_heuristic(self) -> Heuristic:
        if isinstance(self.heuristic, Heuristic):
            return self.heuristic
        return heuristic_by_name(self.heuristic)


class ReStoreManager(JobListener):
    """The ReStore system: repository + matcher/rewriter + enumerator."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        cost_model: Optional[CostModel] = None,
        repository: Optional[Repository] = None,
        config: Optional[ReStoreConfig] = None,
    ):
        self.dfs = dfs
        self.cost_model = cost_model or CostModel()
        self.config = config or ReStoreConfig()
        self.matcher = PlanMatcher()
        self.rewriter = PlanRewriter()
        # explicit None check: an empty Repository is falsy (len == 0)
        self.repository = (
            repository if repository is not None else Repository(self.matcher)
        )
        self.enumerator = SubJobEnumerator(self.config.resolve_heuristic())
        #: DFS paths the engine must not delete during temp cleanup
        self.kept_paths: Set[str] = set()
        #: logical clock: one tick per workflow (drives eviction Rule 3)
        self.clock = 0
        self._pending: Dict[str, List[CandidateSubJob]] = {}
        self._events: List[str] = []
        # counters for reporting / tests
        self.rewrite_count = 0
        self.elimination_count = 0

    # -- JobListener hooks -----------------------------------------------------------

    def on_workflow_start(self, workflow: Workflow) -> None:
        self.clock += 1
        self.run_evictions()

    def before_job(self, job: MapReduceJob, workflow: Workflow) -> bool:
        if self.config.rewrite_enabled:
            self._match_and_rewrite(job, workflow)
        if job.eliminated_by is not None:
            return False
        if self.config.inject_enabled:
            self._pending[job.job_id] = self.enumerator.enumerate_and_inject(job)
        return True

    def after_job(self, job: MapReduceJob, stats: JobStats, workflow: Workflow) -> None:
        for candidate in self._pending.pop(job.job_id, []):
            self._register_sub_job(candidate, stats)
        self._register_whole_job(job, stats)

    # -- matching & rewriting (component 1) -----------------------------------------------

    def _match_and_rewrite(self, job: MapReduceJob, workflow: Workflow) -> None:
        """Scan the ordered repository; rewrite on the first match;
        rescan until no plan matches (paper §3)."""
        for _ in range(self.config.max_rewrite_passes):
            matched = False
            for entry in self.repository.ordered_entries():
                result = self.matcher.match(job.plan, entry.plan)
                if result is None:
                    continue
                if self._is_noop_match(result, entry):
                    continue
                if result.whole_job:
                    self._apply_whole_job(job, entry, workflow)
                    return
                self.rewriter.rewrite_partial(
                    job.plan, result, entry.output_path, entry.output_schema
                )
                entry.mark_used(self.clock)
                self.rewrite_count += 1
                self._events.append(
                    f"{job.job_id}: reused sub-job {entry.entry_id} "
                    f"({entry.anchor_kind}) from {entry.output_path}"
                )
                matched = True
                break
            if not matched:
                return

    @staticmethod
    def _is_noop_match(result, entry: RepositoryEntry) -> bool:
        """Reject rewrites that would only swap a Load for an identical
        Load (possible with trivial entries; avoids rewrite cycles)."""
        return (
            isinstance(result.frontier, POLoad)
            and result.frontier.path == entry.output_path
        )

    def _apply_whole_job(
        self, job: MapReduceJob, entry: RepositoryEntry, workflow: Workflow
    ) -> None:
        entry.mark_used(self.clock)
        if job.temporary:
            # Intermediate job: drop it, point consumers at the stored copy.
            job.eliminated_by = entry.entry_id
            others = [j for j in workflow.jobs if j is not job]
            self.rewriter.redirect_loads(others, job.output_path, entry.output_path)
            self.elimination_count += 1
            self._events.append(
                f"{job.job_id}: whole job answered by {entry.entry_id}; "
                f"consumers redirected to {entry.output_path}"
            )
            return
        if entry.output_path == job.output_path and self.dfs.exists(entry.output_path):
            # Resubmission of the very same query: result already there.
            job.eliminated_by = entry.entry_id
            self.elimination_count += 1
            self._events.append(
                f"{job.job_id}: result already stored at {entry.output_path}"
            )
            return
        # Final job writing elsewhere: degrade to a copy job.
        self.rewriter.rewrite_as_copy_job(job, entry.output_path, entry.output_schema)
        self.rewrite_count += 1
        self._events.append(
            f"{job.job_id}: whole job matched {entry.entry_id}; "
            f"rewritten to copy {entry.output_path}"
        )

    # -- registration (components 2+3) ----------------------------------------------------

    def _register_sub_job(self, candidate: CandidateSubJob, stats: JobStats) -> None:
        store_stat = stats.store_for_path(candidate.store_path)
        if store_stat is None:
            return
        if len(candidate.plan) <= 2:
            self._discard_file(candidate.store_path)
            return
        if self.repository.find_equivalent(candidate.plan) is not None:
            # Duplicate computation already stored: drop the new copy.
            self._discard_file(candidate.store_path)
            return
        load_paths = [op.path for op in candidate.plan.loads()]
        input_bytes = sum(stats.load_bytes.get(p, 0) for p in load_paths)
        entry = RepositoryEntry(
            plan=candidate.plan,
            output_path=candidate.store_path,
            output_schema=candidate.output_schema,
            stats=EntryStats(
                input_bytes=input_bytes,
                output_bytes=store_stat.bytes,
                output_records=store_stat.records,
                exec_time_s=estimate_standalone_time(
                    self.cost_model,
                    input_bytes=input_bytes,
                    output_bytes=store_stat.bytes,
                    records=stats.input_records,
                ),
            ),
            anchor_kind=candidate.anchor_kind,
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=self._mtimes(load_paths),
        )
        decision = self.config.selector.decide(entry)
        if not decision.keep:
            self._discard_file(candidate.store_path)
            self._events.append(
                f"discarded sub-job output {candidate.store_path}: {decision.reason}"
            )
            return
        self.repository.add(entry)
        self.kept_paths.add(candidate.store_path)

    def _register_whole_job(self, job: MapReduceJob, stats: JobStats) -> None:
        policy = self.config.register_whole_jobs
        if policy == "none":
            return
        if policy == "temporary-only" and not job.temporary:
            return
        primary = job.plan.primary_store()
        if primary is None:
            return
        clean_plan = job.plan.subplan_upto(primary)
        if len(clean_plan) <= 2:
            return  # trivial copy job: nothing worth storing
        if self.repository.find_equivalent(clean_plan) is not None:
            return
        load_paths = [op.path for op in clean_plan.loads()]
        sim_time = (
            stats.sim.total_without_side_stores if stats.sim is not None else 0.0
        )
        entry = RepositoryEntry(
            plan=clean_plan,
            output_path=primary.path,
            output_schema=primary.schema or job.plan.loads()[0].schema,
            stats=EntryStats(
                input_bytes=stats.input_bytes,
                output_bytes=stats.output_bytes,
                output_records=stats.output_records,
                exec_time_s=sim_time,
            ),
            anchor_kind="whole-job",
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=self._mtimes(load_paths),
        )
        decision = self.config.selector.decide(entry)
        if not decision.keep:
            self._events.append(
                f"not keeping whole-job output {primary.path}: {decision.reason}"
            )
            return
        self.repository.add(entry)
        if job.temporary:
            self.kept_paths.add(primary.path)

    def _mtimes(self, paths) -> Dict[str, int]:
        return {
            path: self.dfs.mtime(path) for path in paths if self.dfs.exists(path)
        }

    # -- eviction (§5 rules 3-4) --------------------------------------------------------------

    def run_evictions(self) -> List[str]:
        """Apply all configured policies until fixpoint.

        Iterating matters for cascades: evicting an entry deletes its
        owned output file, which is another entry's *input* — Rule 4
        must then claim that dependent entry on the next pass (stale
        results never survive transitively).
        """
        evicted: List[str] = []
        changed = True
        while changed:
            changed = False
            for policy in self.config.eviction_policies:
                victims = policy.select_victims(
                    self.repository, self.dfs, self.clock
                )
                for victim in victims:
                    if victim.entry_id in evicted:
                        continue
                    self._evict(victim, policy.name)
                    evicted.append(victim.entry_id)
                    changed = True
        return evicted

    def _evict(self, entry: RepositoryEntry, reason: str) -> None:
        try:
            self.repository.remove(entry.entry_id)
        except Exception:
            return
        if entry.output_path in self.kept_paths:
            self.kept_paths.discard(entry.output_path)
            self._discard_file(entry.output_path)
        self._events.append(
            f"evicted {entry.entry_id} ({reason}): {entry.output_path}"
        )

    def _discard_file(self, path: str) -> None:
        self.dfs.delete_if_exists(path)

    # -- reporting ---------------------------------------------------------------------------------

    def drain_events(self) -> List[str]:
        events, self._events = self._events, []
        return events

    def __repr__(self) -> str:
        return (
            f"ReStoreManager(entries={len(self.repository)}, "
            f"rewrites={self.rewrite_count}, eliminations={self.elimination_count})"
        )
