"""ReStoreManager: the paper's three components wired into the job
submission loop (§6.2).

For every job about to run: (1) the plan matcher and rewriter scans
the repository — repeatedly, restarting after every successful rewrite
— and rewrites the job to load stored outputs; (2) the sub-job
enumerator injects Split+Store instrumentation chosen by the active
heuristic; after execution, (3) the enumerated sub-job selector
decides which outputs stay in the repository, statistics are recorded,
and eviction policies run between workflows.

Every decision is published as a typed :class:`repro.events.ReStoreEvent`
on ``manager.events`` (an :class:`repro.events.EventBus`); the engine
collects them through the :class:`repro.mapreduce.runner.JobListener`
protocol's ``drain()``.  Reports that want the pre-1.1 log lines can
project any typed event list through
:meth:`ReStoreManager.legacy_strings`.

The manager is **multi-tenant and concurrency-safe**: many sessions
(threads) may drive jobs through one manager against one shared
repository.  A reentrant manager lock guards the mutable aggregates
(counters, pending sub-jobs, kept paths, the logical clock, event
buffers); the repository carries its own sharded locking; and the
expensive pairwise plan traversals run outside any manager-level lock
against candidate snapshots.  Each worker thread activates a *session
scope* (:meth:`ReStoreManager.session_scope`) so every emitted event
is stamped with its session id and lands in a per-session drain buffer
— sessions sharing the manager never see each other's events.
"""

from __future__ import annotations

import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.enumerator import CandidateSubJob, SubJobEnumerator
from repro.core.eviction import EvictionPolicy, eviction_by_name
from repro.core.freshness import EntryFreshness, classify_entry, delta_chain
from repro.core.heuristics import Heuristic, heuristic_by_name
from repro.core.matcher import PlanMatcher
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.core.rewriter import PlanRewriter
from repro.core.selector import Selector, selector_by_name
from repro.costmodel.model import CostModel, estimate_standalone_time
from repro.dfs.filesystem import DistributedFileSystem
from repro.dfs.namenode import InputExtent
from repro.execution.interpreter import DEFAULT_BATCH_SIZE
from repro.events import (
    DeltaFallback,
    EntryEvicted,
    EntryQuarantined,
    EntryRefreshed,
    EventBus,
    JobEliminated,
    MatchScanned,
    ReStoreEvent,
    RewriteApplied,
    SubJobDiscarded,
    SubJobStored,
)
from repro.persistence.snapshot import SnapshotError
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.runner import JobListener
from repro.mapreduce.stats import JobStats
from repro.pig.physical.operators import POLoad

#: scratch prefix for delta-refresh temporaries: the appended tail of
#: a grown input (``tail-<n>``) and the side-stored delta rows
#: (``out-<n>``).  Both files die when the refresh is applied, so no
#: plan loading from under this prefix is ever registered.
DELTA_TMP_PREFIX = "restore/delta/"


@dataclass
class ReStoreConfig:
    """Behavioural switches for the manager.

    ``heuristic``, ``selector``, and ``eviction_policies`` accept
    either plugin instances or registry names (``"aggressive"``,
    ``"rules"``, ``"time-window:4"``, ...) — names are resolved when a
    manager is built, so string-only configuration (CLI flags, JSON
    files via :meth:`from_dict`) reaches every policy knob.
    """

    heuristic: Union[str, Heuristic] = "aggressive"
    rewrite_enabled: bool = True
    #: when True (default) a matched entry whose inputs only grew by
    #: appends is refreshed in place: identity-preserving sub-plans
    #: (single Load -> FILTER/FOREACH/SPLIT chain) rerun over just the
    #: appended tail, UNION-merged with the stored output, and the
    #: entry's recorded extents advance.  False condemns append-grown
    #: entries like rewritten ones (full rerun + re-registration) —
    #: correct either way, only the recomputation volume differs
    delta_enabled: bool = True
    inject_enabled: bool = True
    #: when True (default) the repository's fingerprint index prunes
    #: match candidates before the pairwise traversal; False restores
    #: the historical full scan (ablation / benchmark baseline) —
    #: decisions are identical either way, only the work differs
    indexed_matching: bool = True
    #: when True (default) the execution simulator runs on the
    #: zero-copy data plane: loads come from the DFS typed-dataset
    #: cache, stores write typed rows, and map segments run through
    #: fused operator closures.  False restores the
    #: serialize-to-text-at-every-edge path (ablation / ``exec_sim``
    #: baseline) — every byte counter, store output, and rewrite
    #: decision is identical either way, only wall time differs
    fast_data_plane: bool = True
    #: chunk size of the batched operator-evaluation tier (fast plane
    #: only): operators process ``List[Row]`` chunks through compiled
    #: batch handlers — filters as one list comprehension per chunk,
    #: foreach through precompiled projection closures, the shuffle
    #: decorated chunk-at-a-time.  0 restores per-row fast-plane
    #: dispatch (the batching ablation baseline); outputs, counters,
    #: and decisions are byte-identical at every setting
    batch_size: int = DEFAULT_BATCH_SIZE
    #: when True (default, fast plane only) a copy-style store whose
    #: input rows are provably the unchanged pinned dataset of an
    #: existing file clones that file's serialized payload instead of
    #: re-serializing — whole-job copy rewrites and load-teeing side
    #: stores never render the same text twice.  False forces every
    #: store to serialize its own payload (ablation knob); bytes and
    #: decisions are identical either way
    payload_reuse: bool = True
    #: whole-job registration policy (§2.1 type 1): "all", "none", or
    #: "temporary-only".  The last registers only intermediate
    #: (workflow-internal) job outputs — it isolates sub-job reuse for
    #: a query's final result while still letting multi-job workflows
    #: chain through the repository: §3's "even jobs whose input is the
    #: output of other jobs that are also stored in the repository"
    #: requires consumers to be redirected to the stored (canonical)
    #: copy of their producer's output.
    register_whole_jobs: str = "all"
    selector: Union[str, Selector] = "keep-all"
    eviction_policies: List[Union[str, EvictionPolicy]] = field(default_factory=list)
    #: upper bound on rewrite rescans per job (paper: loop until no match)
    max_rewrite_passes: int = 20

    def resolve_heuristic(self) -> Heuristic:
        if isinstance(self.heuristic, Heuristic):
            return self.heuristic
        return heuristic_by_name(self.heuristic)

    def resolve_selector(self, cost_model: Optional[CostModel] = None) -> Selector:
        if isinstance(self.selector, Selector):
            return self.selector
        return selector_by_name(self.selector, cost_model=cost_model)

    def resolve_eviction_policies(self) -> List[EvictionPolicy]:
        return [
            policy if isinstance(policy, EvictionPolicy) else eviction_by_name(policy)
            for policy in self.eviction_policies
        ]

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReStoreConfig":
        """Build a config from plain JSON-shaped data.

        Plugin fields stay as names and resolve lazily against the
        registries; unknown keys raise immediately so typos in config
        files surface at load time::

            ReStoreConfig.from_dict({
                "heuristic": "conservative",
                "selector": "rules",
                "eviction_policies": ["time-window:4", "input-modified"],
                "register_whole_jobs": "temporary-only",
            })
        """
        known = {
            "heuristic",
            "rewrite_enabled",
            "delta_enabled",
            "inject_enabled",
            "indexed_matching",
            "fast_data_plane",
            "batch_size",
            "payload_reuse",
            "register_whole_jobs",
            "selector",
            "eviction_policies",
            "max_rewrite_passes",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ReStoreConfig keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        if "eviction_policies" in kwargs:
            kwargs["eviction_policies"] = list(kwargs["eviction_policies"])
        config = cls(**kwargs)
        # fail fast on unknown plugin names (the point of from_dict)
        config.resolve_heuristic()
        config.resolve_selector()
        config.resolve_eviction_policies()
        return config


@dataclass
class MatchPipelineTotals:
    """Cumulative match-pipeline telemetry across every job scanned."""

    jobs_scanned: int = 0
    passes: int = 0
    #: entries visible at scan time, summed over passes
    entries_seen: int = 0
    #: entries that survived fingerprint pruning (traversals attempted)
    candidates_examined: int = 0
    #: entries dismissed by the index without a pairwise traversal
    candidates_pruned: int = 0
    #: pairwise Algorithm-1 traversals actually run while matching
    traversals: int = 0

    @property
    def prune_ratio(self) -> float:
        """Fraction of the repository the index pruned away (0..1)."""
        if not self.entries_seen:
            return 0.0
        return self.candidates_pruned / self.entries_seen


@dataclass
class _PendingDeltaRefresh:
    """A delta rewrite whose merge is deferred until after the job.

    The rewrite side-stores the tail branch's rows at ``delta_path``;
    once the job succeeds, ``after_job`` appends them onto the entry's
    stored output and advances its recorded input extents (the values
    captured here, at classification time — a racing further append
    simply classifies as appended again on the next probe).
    """

    entry_id: str
    output_path: str
    delta_path: str
    tail_path: str
    input_mtimes: Dict[str, int]
    input_extents: Dict[str, InputExtent]
    input_bytes_delta: int


class ReStoreManager(JobListener):
    """The ReStore system: repository + matcher/rewriter + enumerator."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        cost_model: Optional[CostModel] = None,
        repository: Optional[Repository] = None,
        config: Optional[ReStoreConfig] = None,
        event_bus: Optional[EventBus] = None,
    ):
        self.dfs = dfs
        self.cost_model = cost_model or CostModel()
        self.config = config or ReStoreConfig()
        self.matcher = PlanMatcher()
        self.rewriter = PlanRewriter()
        # explicit None check: an empty Repository is falsy (len == 0)
        self.repository = (
            repository if repository is not None else Repository(self.matcher)
        )
        self.enumerator = SubJobEnumerator(
            self.config.resolve_heuristic(), id_allocator=dfs.next_subjob_id
        )
        self.selector = self.config.resolve_selector(self.cost_model)
        self.eviction_policies = self.config.resolve_eviction_policies()
        #: typed event fan-out; subscribe for live reuse telemetry
        self.events = event_bus or EventBus()
        #: attached :class:`repro.persistence.RepositoryPersister`
        #: (None = nothing durable; the persister sets and clears this)
        self.persistence = None
        #: DFS paths the engine must not delete during temp cleanup
        self.kept_paths: Set[str] = set()
        #: logical clock: one tick per workflow (drives eviction Rule 3)
        self.clock = 0
        #: guards counters, pending sub-jobs, kept paths, the clock,
        #: and the per-session event buffers.  Lock ordering is
        #: manager -> repository -> shard; never the reverse.
        self._lock = threading.RLock()
        #: active session scope, tracked per worker thread
        self._session_local = threading.local()
        #: live job object -> its enumerated sub-job candidates.  Keyed
        #: by id(job), not job_id: tenants may submit pre-built
        #: workflows with colliding job ids, and bare-string keys would
        #: let one tenant's bookkeeping clobber another's
        self._pending: Dict[int, List[CandidateSubJob]] = {}
        #: session id -> events awaiting that session's drain()
        self._pending_events: Dict[str, List[ReStoreEvent]] = {}
        #: workflow -> repository output paths its rewritten plans
        #: read.  Eviction still *condemns* pinned victims immediately
        #: (the entry leaves the repository, so no later job can match
        #: stale data), but their file deletion is deferred until the
        #: reading workflow ends: a concurrent tenant's eviction pass
        #: must never delete a file another tenant's in-flight job was
        #: rewritten to load (serial ReStore never had this window —
        #: evictions only ran between whole workflows).
        self._pinned: Dict[int, Set[str]] = {}
        #: owned output files of already-condemned entries, awaiting
        #: deletion until no in-flight workflow reads them
        self._deferred_deletes: Set[str] = set()
        # counters for reporting / tests
        self.rewrite_count = 0
        self.elimination_count = 0
        #: entries evicted because their stored plan failed to
        #: materialize (fingerprint mismatch, undecodable plan JSON)
        self.quarantine_count = 0
        #: delta refreshes merged / delta attempts that fell back to a
        #: full rerun (the ``incremental`` bench reads both)
        self.delta_refresh_count = 0
        self.delta_fallback_count = 0
        #: entry ids with a delta refresh in flight: a second probe
        #: matching the same append-grown entry before the first merge
        #: lands must fall back — two merges would double the tail
        self._refreshing: Set[str] = set()
        #: live job object -> delta refreshes to apply in after_job
        #: (keyed by id(job) like ``_pending``, for the same reason)
        self._pending_refresh: Dict[int, List[_PendingDeltaRefresh]] = {}
        #: cumulative index/pruning telemetry (reporting, benchmarks)
        self.match_totals = MatchPipelineTotals()

    @contextmanager
    def locked(self):
        """Hold the manager lock across a multi-step read (snapshot
        capture pairs kept paths + clock + repository state
        atomically).  Lock order stays manager → repository → shard."""
        with self._lock:
            yield self

    # -- session scoping ---------------------------------------------------------------

    @property
    def current_session_id(self) -> str:
        """The session id active on this thread ("" outside scopes)."""
        stack = getattr(self._session_local, "stack", None)
        return stack[-1] if stack else ""

    @contextmanager
    def session_scope(self, session_id: str):
        """Stamp every event emitted by this thread with *session_id*.

        Scopes nest (the innermost wins) and are per-thread, so
        concurrent service workers each route their events — and their
        ``drain()`` calls — to their own session buffer.
        """
        stack = getattr(self._session_local, "stack", None)
        if stack is None:
            stack = []
            self._session_local.stack = stack
        stack.append(session_id)
        try:
            yield self
        finally:
            stack.pop()

    def _emit(self, event: ReStoreEvent) -> None:
        event.session_id = self.current_session_id
        self.events.emit(event)
        with self._lock:
            self._pending_events.setdefault(event.session_id, []).append(event)

    # -- JobListener hooks -----------------------------------------------------------

    def on_workflow_start(self, workflow: Workflow) -> None:
        with self._lock:
            self.clock += 1
        self.run_evictions()

    def on_workflow_end(self, workflow: Workflow) -> None:
        with self._lock:
            self._pinned.pop(id(workflow), None)
            # jobs that failed mid-workflow never reached after_job;
            # drop their enumerated candidates or a long-lived shared
            # manager leaks them on every failure.  Ditto their queued
            # delta refreshes: release the entry claims (the entry is
            # untouched, so the next probe just classifies appended
            # again) and reclaim the scratch files
            orphaned: List[_PendingDeltaRefresh] = []
            for job in workflow.jobs:
                self._pending.pop(id(job), None)
                orphaned.extend(self._pending_refresh.pop(id(job), []))
            for refresh in orphaned:
                self._refreshing.discard(refresh.entry_id)
            # condemned entries whose files were kept alive for this
            # workflow: delete once no other workflow reads them and
            # the path is not claimed again — either re-kept, or
            # re-registered as a live entry's output (a condemned
            # whole-job entry's rerun recreates the very same path)
            still_pinned = self._pinned_paths()
            ready = {
                path
                for path in self._deferred_deletes
                if path not in still_pinned
                and path not in self.kept_paths
                and self.repository.find_by_output_path(path) is None
            }
            self._deferred_deletes -= ready
        for refresh in orphaned:
            self._discard_file(refresh.delta_path)
            self._discard_file(refresh.tail_path)
        for path in ready:
            self._discard_file(path)
        if self.persistence is not None:
            # workflow boundary: drain the journal buffer, persist
            # moved counters, rotate the snapshot if due
            self.persistence.note_workflow_end()

    def _pin(self, workflow: Workflow, output_path: str) -> None:
        """Protect *output_path* from eviction until *workflow* ends."""
        with self._lock:
            self._pinned.setdefault(id(workflow), set()).add(output_path)

    def _pin_live_entry(
        self, workflow: Workflow, entry: RepositoryEntry
    ) -> Optional[EntryFreshness]:
        """Atomically validate-and-pin a matched entry, then classify
        its inputs against the live DFS.

        The match loop traverses a candidate *snapshot*, so an entry
        can be evicted (and its file deleted) between the scan and the
        rewrite.  Eviction runs under the manager lock, so checking
        liveness and pinning under the same lock closes that window:
        either the eviction already removed the entry (we return None
        and the match is skipped) or it runs later and sees the pin.

        The freshness verdict decides what the caller may do with the
        match: rewrite normally (fresh), refresh incrementally
        (appended), or condemn and rerun (rewritten/dead) — see
        :mod:`repro.core.freshness`.
        """
        with self._lock:
            if not self.repository.has_entry(entry.entry_id):
                return None
            self._pin(workflow, entry.output_path)
        return classify_entry(entry, self.dfs)

    def _pinned_paths(self) -> Set[str]:
        with self._lock:
            return set().union(*self._pinned.values()) if self._pinned else set()

    def before_job(self, job: MapReduceJob, workflow: Workflow) -> bool:
        if self.config.rewrite_enabled:
            self._match_and_rewrite(job, workflow)
        if job.eliminated_by is not None:
            return False
        if self.config.inject_enabled:
            candidates = self.enumerator.enumerate_and_inject(job)
            with self._lock:
                self._pending[id(job)] = candidates
        return True

    def after_job(self, job: MapReduceJob, stats: JobStats, workflow: Workflow) -> None:
        with self._lock:
            refreshes = self._pending_refresh.pop(id(job), [])
            candidates = self._pending.pop(id(job), [])
        # merge delta refreshes before registration: the refreshed
        # entry must be current before any rescan can match it again
        for refresh in refreshes:
            self._apply_refresh(job, refresh, stats)
        for candidate in candidates:
            self._register_sub_job(candidate, stats, workflow)
        self._register_whole_job(job, stats, workflow)

    def protected_paths(self) -> Set[str]:
        with self._lock:
            return set(self.kept_paths)

    def drain(self) -> List[ReStoreEvent]:
        """Events for the session scope active on this thread."""
        return self.drain_session(self.current_session_id)

    def drain_session(self, session_id: str) -> List[ReStoreEvent]:
        """Return (and clear) the named session's buffered events."""
        with self._lock:
            return self._pending_events.pop(session_id, [])

    # -- matching & rewriting (component 1) -----------------------------------------------

    def _match_and_rewrite(self, job: MapReduceJob, workflow: Workflow) -> None:
        """Scan the repository; rewrite on the first match; rescan
        until no plan matches (paper §3).

        Each pass asks the repository for fingerprint-pruned
        candidates (the full ordered scan when ``indexed_matching`` is
        off); the expensive pairwise traversal only runs against those,
        outside any manager-level lock — the candidate list is a
        snapshot, and the job plan being rewritten is submission-local.
        A :class:`~repro.events.MatchScanned` telemetry event goes out
        on the bus when the scan completes.
        """
        scan = MatchScanned(job_id=job.job_id)
        try:
            for _ in range(self.config.max_rewrite_passes):
                matched = False
                candidates, pass_stats = self.repository.match_candidates(
                    job.plan, indexed=self.config.indexed_matching
                )
                scan.passes += 1
                scan.entries_total = pass_stats.entries_total
                scan.candidates += pass_stats.candidates
                scan.pruned += pass_stats.pruned
                for entry in candidates:
                    scan.traversals += 1
                    try:
                        result = self.matcher.match(job.plan, entry.plan)
                    except SnapshotError as exc:
                        # the stored plan is corrupt (restored-plan
                        # fingerprint mismatch, undecodable plan JSON):
                        # quarantine the entry and serve the match miss
                        # — never crash the scan, never reuse bad bytes
                        self._quarantine(entry, str(exc))
                        continue
                    if result is None:
                        continue
                    if self._is_noop_match(result, entry):
                        continue
                    freshness = self._pin_live_entry(workflow, entry)
                    if freshness is None:
                        continue  # evicted since the candidate snapshot
                    if freshness.stale:
                        # an input was rewritten or deleted: reusing
                        # the entry would serve stale bytes — and just
                        # skipping it would poison this job's rerun
                        # (find_equivalent discards the fresh output)
                        self._condemn_stale(entry)
                        continue
                    if freshness.is_appended:
                        if self._try_delta_rewrite(
                            job, entry, result, freshness, workflow
                        ):
                            scan.matches += 1
                            with self._lock:
                                entry.mark_used(self.clock)
                                self.rewrite_count += 1
                            self._emit(
                                RewriteApplied(
                                    job_id=job.job_id,
                                    entry_id=entry.entry_id,
                                    anchor_kind=entry.anchor_kind,
                                    output_path=entry.output_path,
                                    delta=True,
                                )
                            )
                            matched = True
                            break
                        self._condemn_stale(entry)
                        continue
                    if result.whole_job:
                        scan.matches += 1
                        self._apply_whole_job(job, entry, workflow)
                        return
                    self.rewriter.rewrite_partial(
                        job.plan, result, entry.output_path, entry.output_schema
                    )
                    scan.matches += 1
                    with self._lock:
                        # under the manager lock: use_count/last_used_at
                        # are read-modify-write state the LRU eviction
                        # policy reads during its (locked) passes
                        entry.mark_used(self.clock)
                        self.rewrite_count += 1
                    self._emit(
                        RewriteApplied(
                            job_id=job.job_id,
                            entry_id=entry.entry_id,
                            anchor_kind=entry.anchor_kind,
                            output_path=entry.output_path,
                        )
                    )
                    matched = True
                    break
                if not matched:
                    return
        finally:
            self._record_scan(scan)

    def _record_scan(self, scan: MatchScanned) -> None:
        with self._lock:
            totals = self.match_totals
            totals.jobs_scanned += 1
            totals.passes += scan.passes
            totals.entries_seen += scan.entries_total * scan.passes
            totals.candidates_examined += scan.candidates
            totals.candidates_pruned += scan.pruned
            totals.traversals += scan.traversals
        if scan.entries_total:
            # Bus-only telemetry: the drain channel stays a pure
            # decision log, so legacy consumers see no new lines.
            scan.session_id = self.current_session_id
            self.events.emit(scan)

    @staticmethod
    def _is_noop_match(result, entry: RepositoryEntry) -> bool:
        """Reject rewrites that would only swap a Load for an identical
        Load (possible with trivial entries; avoids rewrite cycles)."""
        return (
            isinstance(result.frontier, POLoad)
            and result.frontier.path == entry.output_path
        )

    def _apply_whole_job(
        self, job: MapReduceJob, entry: RepositoryEntry, workflow: Workflow
    ) -> None:
        # the caller pinned the (validated-live) entry: every branch
        # below leaves some job of this workflow reading its output
        # (redirect targets, copy-job sources)
        with self._lock:
            entry.mark_used(self.clock)
        if job.temporary:
            # Intermediate job: drop it, point consumers at the stored copy.
            job.eliminated_by = entry.entry_id
            others = [j for j in workflow.jobs if j is not job]
            self.rewriter.redirect_loads(others, job.output_path, entry.output_path)
            with self._lock:
                self.elimination_count += 1
            self._emit(
                JobEliminated(
                    job_id=job.job_id,
                    entry_id=entry.entry_id,
                    output_path=entry.output_path,
                    reason="redirected",
                )
            )
            return
        if entry.output_path == job.output_path and self.dfs.exists(entry.output_path):
            # Resubmission of the very same query: result already there.
            job.eliminated_by = entry.entry_id
            with self._lock:
                self.elimination_count += 1
            self._emit(
                JobEliminated(
                    job_id=job.job_id,
                    entry_id=entry.entry_id,
                    output_path=entry.output_path,
                    reason="already-stored",
                )
            )
            return
        # Final job writing elsewhere: degrade to a copy job.
        self.rewriter.rewrite_as_copy_job(job, entry.output_path, entry.output_schema)
        with self._lock:
            self.rewrite_count += 1
        self._emit(
            RewriteApplied(
                job_id=job.job_id,
                entry_id=entry.entry_id,
                anchor_kind=entry.anchor_kind,
                output_path=entry.output_path,
                whole_job=True,
            )
        )

    # -- delta refresh (appended inputs) ---------------------------------------------------

    def _condemn_stale(self, entry: RepositoryEntry) -> None:
        """Evict a matched entry whose inputs changed underneath it.

        Rejecting the match alone is not enough: the stale entry would
        still answer ``find_equivalent`` after this job's full rerun,
        so the selector would discard the *fresh* output and leave the
        stale one registered forever.  Condemning at match time lets
        the rerun re-register fresh state.  The file deletion defers
        while an in-flight workflow reads it (this entry was pinned by
        the caller just before classification, so it always defers to
        at least this workflow's end).
        """
        event = self._evict(
            entry,
            "stale-input",
            defer_delete=entry.output_path in self._pinned_paths(),
        )
        if event is not None:
            self._emit(event)
            if self.persistence is not None:
                # like run_evictions: the removal must hit the journal
                # before the rerun re-registers over the same path
                self.persistence.flush()

    def _quarantine(self, entry: RepositoryEntry, reason: str) -> None:
        """Evict an entry whose stored plan failed to materialize.

        Like :meth:`_condemn_stale`, rejecting the match alone is not
        enough — the corrupt entry would keep answering index probes
        (its recorded fingerprint and signatures are served without
        materializing) and fail every future scan the same way.  The
        eviction is journaled as ``entry_quarantined`` so recovery and
        the standby converge on the same repository.
        """
        event = self._evict(
            entry,
            "quarantined",
            defer_delete=entry.output_path in self._pinned_paths(),
        )
        if event is None:
            return  # already evicted by a concurrent scan
        with self._lock:
            self.quarantine_count += 1
        self._emit(event)
        self._emit(
            EntryQuarantined(
                entry_id=entry.entry_id,
                output_path=entry.output_path,
                reason=reason,
            )
        )
        if self.persistence is not None:
            self.persistence.note_quarantine(entry.entry_id, reason)
            self.persistence.flush()

    def _try_delta_rewrite(
        self,
        job: MapReduceJob,
        entry: RepositoryEntry,
        result,
        freshness: EntryFreshness,
        workflow: Workflow,
    ) -> bool:
        """Rewrite *job* to recompute only the appended tail of the
        matched entry's input (i2MapReduce-style, PAPERS.md).

        The entry's sub-plan must be an identity-preserving chain
        (:func:`repro.core.freshness.delta_chain`); the probe plan is
        then spliced to read ``UNION(stored output, chain(tail))`` and
        a refresh is queued for ``after_job`` to merge the side-stored
        delta rows into the entry.  Returns True on success; False
        tells the caller to condemn the entry and fall back to a full
        rerun — a typed :class:`DeltaFallback` records why.
        """

        def fallback(path: str, reason: str) -> bool:
            with self._lock:
                self.delta_fallback_count += 1
            self._emit(
                DeltaFallback(
                    job_id=job.job_id,
                    entry_id=entry.entry_id,
                    path=path,
                    reason=reason,
                )
            )
            return False

        path = min(freshness.appended)
        if not self.config.delta_enabled:
            return fallback(path, "delta-disabled")
        if len(job.plan.loads()) != 1:
            # splicing two loads into a multi-load probe would reorder
            # the interpreter's load streaming relative to the full
            # rerun — not provably byte-stable, so rerun instead
            return fallback(path, "multi-load-probe")
        chain = delta_chain(entry.plan)
        if chain is None:
            # GROUP/JOIN/LIMIT/multi-input shapes: f(old ++ tail) is
            # not f(old) ++ f(tail); this counter is the headroom a
            # keyed re-grouping delta model would unlock
            return fallback(path, "ineligible-chain")
        # a delta-eligible entry has exactly one load, hence exactly
        # one (appended) input path
        live = freshness.appended[path]
        recorded = entry.input_extents.get(path)
        if recorded is None:
            return fallback(path, "no-recorded-extent")
        if recorded.size > 0:
            boundary = self.dfs.read_range(path, recorded.size - 1, recorded.size)
            if boundary != b"\n":
                # the append glued bytes onto the recorded prefix's
                # unterminated last line: the tail is not a clean
                # record suffix of the grown file
                return fallback(path, "tail-boundary")
        with self._lock:
            claimed = entry.entry_id not in self._refreshing
            if claimed:
                self._refreshing.add(entry.entry_id)
        if not claimed:
            return fallback(path, "refresh-in-flight")
        delta_id = self.dfs.next_delta_id()
        tail_path = f"{DELTA_TMP_PREFIX}tail-{delta_id}"
        delta_path = f"{DELTA_TMP_PREFIX}out-{delta_id}"
        try:
            tail = self.dfs.read_range(path, recorded.size, live.size)
            self.dfs.write_file(tail_path, tail, overwrite=True)
            self.rewriter.rewrite_delta(
                job.plan,
                result,
                chain,
                stored_path=entry.output_path,
                stored_schema=entry.output_schema,
                tail_path=tail_path,
                tail_schema=entry.plan.loads()[0].schema,
                delta_path=delta_path,
            )
        except Exception:
            with self._lock:
                self._refreshing.discard(entry.entry_id)
            self._discard_file(tail_path)
            raise
        # the refreshed extent extends the recorded prefix checksum
        # over the tail incrementally — no O(file) re-hash needed —
        # so the grown input stays verifiable across a restart too
        merged_crc = (
            zlib.crc32(tail, recorded.crc) if recorded.crc is not None else None
        )
        refresh = _PendingDeltaRefresh(
            entry_id=entry.entry_id,
            output_path=entry.output_path,
            delta_path=delta_path,
            tail_path=tail_path,
            input_mtimes={path: live.mtime},
            input_extents={
                path: InputExtent(
                    mtime=live.mtime,
                    generation=live.generation,
                    birth=live.birth,
                    size=live.size,
                    crc=merged_crc,
                )
            },
            input_bytes_delta=live.size - recorded.size,
        )
        with self._lock:
            self._pending_refresh.setdefault(id(job), []).append(refresh)
        return True

    def _apply_refresh(
        self, job: MapReduceJob, refresh: _PendingDeltaRefresh, stats: JobStats
    ) -> None:
        """Merge one delta run into its entry's stored output.

        The job side-stored the tail branch's rows at ``delta_path``;
        append them onto the stored output — unless the job's own
        primary store already wrote the merged file there (the
        resubmission shape, where the probe's output path *is* the
        entry's output path) — then advance the entry's recorded
        input extents so the grown input now classifies fresh.
        """
        try:
            if not self.repository.has_entry(refresh.entry_id):
                return  # condemned while the job ran; a rerun re-registers
            delta_bytes = b""
            delta_records = 0
            if self.dfs.exists(refresh.delta_path):
                delta_bytes = self.dfs.read_file(refresh.delta_path)
                stat = stats.store_for_path(refresh.delta_path)
                if stat is not None:
                    delta_records = stat.records
            own_stores = {s.path for s in stats.stores if not s.side}
            if delta_bytes and refresh.output_path not in own_stores:
                self.dfs.append(refresh.output_path, delta_bytes)
            try:
                self.repository.refresh_entry(
                    refresh.entry_id,
                    input_mtimes=refresh.input_mtimes,
                    input_extents=refresh.input_extents,
                    input_bytes_delta=refresh.input_bytes_delta,
                    output_bytes_delta=len(delta_bytes),
                    output_records_delta=delta_records,
                )
            except Exception:
                return  # condemned mid-merge; the rerun re-registers
            with self._lock:
                self.delta_refresh_count += 1
            self._emit(
                EntryRefreshed(
                    job_id=job.job_id,
                    entry_id=refresh.entry_id,
                    output_path=refresh.output_path,
                    delta_bytes=len(delta_bytes),
                    delta_records=delta_records,
                )
            )
            if self.persistence is not None:
                # the refreshed extents must reach the journal before
                # a crash, or recovery would replay the pre-append
                # extents and re-run the delta against a merged output
                self.persistence.flush()
        finally:
            with self._lock:
                self._refreshing.discard(refresh.entry_id)
            self._discard_file(refresh.delta_path)
            self._discard_file(refresh.tail_path)

    # -- registration (components 2+3) ----------------------------------------------------

    def _register_sub_job(
        self, candidate: CandidateSubJob, stats: JobStats, workflow: Workflow
    ) -> None:
        store_stat = stats.store_for_path(candidate.store_path)
        if store_stat is None:
            return
        load_paths = [op.path for op in candidate.plan.loads()]
        if any(p.startswith(DELTA_TMP_PREFIX) for p in load_paths):
            # the plan reads delta scratch (an appended tail): that
            # file dies when the refresh lands, so the entry could
            # never be recomputed — don't register it
            self._discard_file(candidate.store_path)
            return
        if len(candidate.plan) <= 2:
            self._discard_file(candidate.store_path)
            return
        if self.repository.find_equivalent(candidate.plan) is not None:
            # Duplicate computation already stored: drop the new copy.
            self._discard_file(candidate.store_path)
            return
        input_bytes = sum(stats.load_bytes.get(p, 0) for p in load_paths)
        input_mtimes, input_extents = self._input_snapshot(load_paths)
        entry = RepositoryEntry(
            plan=candidate.plan,
            output_path=candidate.store_path,
            output_schema=candidate.output_schema,
            stats=EntryStats(
                input_bytes=input_bytes,
                output_bytes=store_stat.bytes,
                output_records=store_stat.records,
                exec_time_s=estimate_standalone_time(
                    self.cost_model,
                    input_bytes=input_bytes,
                    output_bytes=store_stat.bytes,
                    records=stats.input_records,
                ),
            ),
            anchor_kind=candidate.anchor_kind,
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=input_mtimes,
            input_extents=input_extents,
        )
        decision = self.selector.decide(entry)
        if not decision.keep:
            self._discard_file(candidate.store_path)
            self._emit(
                SubJobDiscarded(
                    output_path=candidate.store_path,
                    reason=decision.reason,
                    anchor_kind="sub-job",
                )
            )
            return
        # Atomic: a concurrent worker registering the same computation
        # loses the race here instead of storing a duplicate entry.
        # Entry insert and path ownership commit under one manager
        # lock, so an eviction pass can never observe the entry
        # without its kept path (which would orphan the stored file).
        with self._lock:
            entry, added = self.repository.add_if_absent(entry)
            if added:
                self.kept_paths.add(candidate.store_path)
                # protect the fresh output from a concurrent tenant's
                # eviction until this workflow (whose rescan passes may
                # re-match it) is over
                self._pin(workflow, candidate.store_path)
                if self.persistence is not None:
                    self.persistence.note_kept_path(candidate.store_path, True)
        if not added:
            self._discard_file(candidate.store_path)
            self._emit(
                SubJobDiscarded(
                    output_path=candidate.store_path,
                    reason=f"duplicate of {entry.entry_id} "
                    "(lost concurrent registration)",
                    anchor_kind="sub-job",
                )
            )
            return
        self._emit(
            SubJobStored(
                entry_id=entry.entry_id,
                output_path=candidate.store_path,
                anchor_kind=candidate.anchor_kind,
            )
        )

    def _register_whole_job(
        self, job: MapReduceJob, stats: JobStats, workflow: Workflow
    ) -> None:
        policy = self.config.register_whole_jobs
        if policy == "none":
            return
        if policy == "temporary-only" and not job.temporary:
            return
        primary = job.plan.primary_store()
        if primary is None:
            return
        clean_plan = job.plan.subplan_upto(primary)
        if len(clean_plan) <= 2:
            return  # trivial copy job: nothing worth storing
        if self.repository.find_equivalent(clean_plan) is not None:
            return
        load_paths = [op.path for op in clean_plan.loads()]
        if any(p.startswith(DELTA_TMP_PREFIX) for p in load_paths):
            # a delta-rewritten probe's own plan loads the appended
            # tail from delta scratch; it is not a recomputable query
            return
        sim_time = stats.sim.total_without_side_stores if stats.sim is not None else 0.0
        input_mtimes, input_extents = self._input_snapshot(load_paths)
        entry = RepositoryEntry(
            plan=clean_plan,
            output_path=primary.path,
            output_schema=primary.schema or job.plan.loads()[0].schema,
            stats=EntryStats(
                input_bytes=stats.input_bytes,
                output_bytes=stats.output_bytes,
                output_records=stats.output_records,
                exec_time_s=sim_time,
            ),
            anchor_kind="whole-job",
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=input_mtimes,
            input_extents=input_extents,
        )
        decision = self.selector.decide(entry)
        if not decision.keep:
            self._emit(
                SubJobDiscarded(
                    output_path=primary.path,
                    reason=decision.reason,
                    anchor_kind="whole-job",
                )
            )
            return
        with self._lock:
            entry, added = self.repository.add_if_absent(entry)
            if added and job.temporary:
                self.kept_paths.add(primary.path)
                # this workflow's later jobs load the temporary output;
                # a concurrent tenant's eviction must not delete it
                # out from under them mid-run
                self._pin(workflow, primary.path)
                if self.persistence is not None:
                    self.persistence.note_kept_path(primary.path, True)
        if not added:
            # A concurrent worker stored the same computation first;
            # like the sequential duplicate probe above, keep theirs.
            return
        self._emit(
            SubJobStored(
                entry_id=entry.entry_id,
                output_path=primary.path,
                anchor_kind="whole-job",
            )
        )

    def _input_snapshot(
        self, paths
    ) -> Tuple[Dict[str, int], Dict[str, InputExtent]]:
        """Record each existing input's mtime *and* extent at
        registration time — the freshness classifier compares both
        (the mtimes alone cannot tell an append from a rewrite)."""
        mtimes: Dict[str, int] = {}
        extents: Dict[str, InputExtent] = {}
        for path in paths:
            extent = self.dfs.input_extent(path, with_crc=True)
            if extent is None:
                continue
            mtimes[path] = extent.mtime
            extents[path] = extent
        return mtimes, extents

    # -- eviction (§5 rules 3-4) --------------------------------------------------------------

    def run_evictions(self) -> List[str]:
        """Apply all configured policies until fixpoint.

        Iterating matters for cascades: evicting an entry deletes its
        owned output file, which is another entry's *input* — Rule 4
        must then claim that dependent entry on the next pass (stale
        results never survive transitively).  The whole fixpoint runs
        under the manager lock: eviction is rare (once per workflow)
        and policies must see a stable repository while choosing
        victims.  Victims whose output an in-flight workflow was
        rewritten to read are condemned immediately (removed from the
        repository so no later job matches possibly-stale data) but
        their files outlive the reading workflow (see :meth:`_pin` and
        ``_deferred_deletes``).
        """
        evicted: List[str] = []
        events: List[EntryEvicted] = []
        with self._lock:
            changed = True
            while changed:
                changed = False
                pinned = self._pinned_paths()
                for policy in self.eviction_policies:
                    victims = policy.select_victims(
                        self.repository, self.dfs, self.clock
                    )
                    for victim in victims:
                        if victim.entry_id in evicted:
                            continue
                        # pinned: an in-flight workflow reads the
                        # file — condemn the entry now (it must not
                        # match again; it may be stale) but let the
                        # file outlive the reading workflow
                        event = self._evict(
                            victim,
                            policy.name,
                            defer_delete=victim.output_path in pinned,
                        )
                        if event is not None:
                            events.append(event)
                        evicted.append(victim.entry_id)
                        changed = True
        # emit after releasing the manager lock: bus subscribers run
        # callback code and may call back into the manager (events.py
        # promises they can do so without lock-order deadlocks)
        for event in events:
            self._emit(event)
        if evicted and self.persistence is not None:
            # evictions must hit the journal before their files are
            # reclaimed: a crash after the deletes but before a flush
            # would otherwise resurrect entries for vanished files
            self.persistence.flush()
        return evicted

    def _evict(
        self, entry: RepositoryEntry, reason: str, defer_delete: bool = False
    ) -> Optional[EntryEvicted]:
        """Remove one entry (and usually its owned file); returns the
        :class:`EntryEvicted` event for the caller to emit outside the
        eviction critical section, or None if the entry was gone.

        ``defer_delete`` keeps the owned file on disk (queued in
        ``_deferred_deletes``) because an in-flight workflow still
        reads it; the entry itself is removed unconditionally.
        """
        try:
            self.repository.remove(entry.entry_id)
        except Exception:
            return None
        with self._lock:
            owned = entry.output_path in self.kept_paths
            if owned:
                self.kept_paths.discard(entry.output_path)
                if self.persistence is not None:
                    self.persistence.note_kept_path(entry.output_path, False)
                if defer_delete:
                    self._deferred_deletes.add(entry.output_path)
        if owned and not defer_delete:
            self._discard_file(entry.output_path)
        return EntryEvicted(
            entry_id=entry.entry_id,
            policy=reason,
            output_path=entry.output_path,
        )

    def _discard_file(self, path: str) -> None:
        self.dfs.delete_if_exists(path)

    # -- reporting ---------------------------------------------------------------------------------

    #: event types whose rendered form the legacy string channel carried
    _LEGACY_EVENT_TYPES = (
        RewriteApplied,
        JobEliminated,
        SubJobDiscarded,
        EntryEvicted,
    )

    @classmethod
    def legacy_strings(cls, events: Sequence[ReStoreEvent]) -> List[str]:
        """Project typed events onto the pre-1.1 string log (which had
        no 'stored' lines — only rewrites, eliminations, discards, and
        evictions)."""
        return [
            event.render()
            for event in events
            if isinstance(event, cls._LEGACY_EVENT_TYPES)
        ]

    def __repr__(self) -> str:
        return (
            f"ReStoreManager(entries={len(self.repository)}, "
            f"rewrites={self.rewrite_count}, eliminations={self.elimination_count})"
        )
