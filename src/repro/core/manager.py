"""ReStoreManager: the paper's three components wired into the job
submission loop (§6.2).

For every job about to run: (1) the plan matcher and rewriter scans
the repository — repeatedly, restarting after every successful rewrite
— and rewrites the job to load stored outputs; (2) the sub-job
enumerator injects Split+Store instrumentation chosen by the active
heuristic; after execution, (3) the enumerated sub-job selector
decides which outputs stay in the repository, statistics are recorded,
and eviction policies run between workflows.

Every decision is published as a typed :class:`repro.events.ReStoreEvent`
on ``manager.events`` (an :class:`repro.events.EventBus`); the engine
collects them through the :class:`repro.mapreduce.runner.JobListener`
protocol's ``drain()``.  The legacy string channel
(:meth:`ReStoreManager.drain_events`) remains as a deprecated shim.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Union

from repro.core.enumerator import CandidateSubJob, SubJobEnumerator
from repro.core.eviction import EvictionPolicy, eviction_by_name
from repro.core.heuristics import Heuristic, heuristic_by_name
from repro.core.matcher import PlanMatcher
from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.core.rewriter import PlanRewriter
from repro.core.selector import Selector, selector_by_name
from repro.costmodel.model import CostModel, estimate_standalone_time
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import (
    EntryEvicted,
    EventBus,
    JobEliminated,
    MatchScanned,
    ReStoreEvent,
    RewriteApplied,
    SubJobDiscarded,
    SubJobStored,
)
from repro.mapreduce.job import MapReduceJob, Workflow
from repro.mapreduce.runner import JobListener
from repro.mapreduce.stats import JobStats
from repro.pig.physical.operators import POLoad


@dataclass
class ReStoreConfig:
    """Behavioural switches for the manager.

    ``heuristic``, ``selector``, and ``eviction_policies`` accept
    either plugin instances or registry names (``"aggressive"``,
    ``"rules"``, ``"time-window:4"``, ...) — names are resolved when a
    manager is built, so string-only configuration (CLI flags, JSON
    files via :meth:`from_dict`) reaches every policy knob.
    """

    heuristic: Union[str, Heuristic] = "aggressive"
    rewrite_enabled: bool = True
    inject_enabled: bool = True
    #: when True (default) the repository's fingerprint index prunes
    #: match candidates before the pairwise traversal; False restores
    #: the historical full scan (ablation / benchmark baseline) —
    #: decisions are identical either way, only the work differs
    indexed_matching: bool = True
    #: whole-job registration policy (§2.1 type 1): "all", "none", or
    #: "temporary-only".  The last registers only intermediate
    #: (workflow-internal) job outputs — it isolates sub-job reuse for
    #: a query's final result while still letting multi-job workflows
    #: chain through the repository: §3's "even jobs whose input is the
    #: output of other jobs that are also stored in the repository"
    #: requires consumers to be redirected to the stored (canonical)
    #: copy of their producer's output.
    register_whole_jobs: str = "all"
    selector: Union[str, Selector] = "keep-all"
    eviction_policies: List[Union[str, EvictionPolicy]] = field(
        default_factory=list
    )
    #: upper bound on rewrite rescans per job (paper: loop until no match)
    max_rewrite_passes: int = 20

    def resolve_heuristic(self) -> Heuristic:
        if isinstance(self.heuristic, Heuristic):
            return self.heuristic
        return heuristic_by_name(self.heuristic)

    def resolve_selector(
        self, cost_model: Optional[CostModel] = None
    ) -> Selector:
        if isinstance(self.selector, Selector):
            return self.selector
        return selector_by_name(self.selector, cost_model=cost_model)

    def resolve_eviction_policies(self) -> List[EvictionPolicy]:
        return [
            policy if isinstance(policy, EvictionPolicy)
            else eviction_by_name(policy)
            for policy in self.eviction_policies
        ]

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReStoreConfig":
        """Build a config from plain JSON-shaped data.

        Plugin fields stay as names and resolve lazily against the
        registries; unknown keys raise immediately so typos in config
        files surface at load time::

            ReStoreConfig.from_dict({
                "heuristic": "conservative",
                "selector": "rules",
                "eviction_policies": ["time-window:4", "input-modified"],
                "register_whole_jobs": "temporary-only",
            })
        """
        known = {
            "heuristic", "rewrite_enabled", "inject_enabled",
            "indexed_matching", "register_whole_jobs", "selector",
            "eviction_policies", "max_rewrite_passes",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ReStoreConfig keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(data)
        if "eviction_policies" in kwargs:
            kwargs["eviction_policies"] = list(kwargs["eviction_policies"])
        config = cls(**kwargs)
        # fail fast on unknown plugin names (the point of from_dict)
        config.resolve_heuristic()
        config.resolve_selector()
        config.resolve_eviction_policies()
        return config


@dataclass
class MatchPipelineTotals:
    """Cumulative match-pipeline telemetry across every job scanned."""

    jobs_scanned: int = 0
    passes: int = 0
    #: entries visible at scan time, summed over passes
    entries_seen: int = 0
    #: entries that survived fingerprint pruning (traversals attempted)
    candidates_examined: int = 0
    #: entries dismissed by the index without a pairwise traversal
    candidates_pruned: int = 0
    #: pairwise Algorithm-1 traversals actually run while matching
    traversals: int = 0

    @property
    def prune_ratio(self) -> float:
        """Fraction of the repository the index pruned away (0..1)."""
        if not self.entries_seen:
            return 0.0
        return self.candidates_pruned / self.entries_seen


class ReStoreManager(JobListener):
    """The ReStore system: repository + matcher/rewriter + enumerator."""

    def __init__(
        self,
        dfs: DistributedFileSystem,
        cost_model: Optional[CostModel] = None,
        repository: Optional[Repository] = None,
        config: Optional[ReStoreConfig] = None,
        event_bus: Optional[EventBus] = None,
    ):
        self.dfs = dfs
        self.cost_model = cost_model or CostModel()
        self.config = config or ReStoreConfig()
        self.matcher = PlanMatcher()
        self.rewriter = PlanRewriter()
        # explicit None check: an empty Repository is falsy (len == 0)
        self.repository = (
            repository if repository is not None else Repository(self.matcher)
        )
        self.enumerator = SubJobEnumerator(self.config.resolve_heuristic())
        self.selector = self.config.resolve_selector(self.cost_model)
        self.eviction_policies = self.config.resolve_eviction_policies()
        #: typed event fan-out; subscribe for live reuse telemetry
        self.events = event_bus or EventBus()
        #: DFS paths the engine must not delete during temp cleanup
        self.kept_paths: Set[str] = set()
        #: logical clock: one tick per workflow (drives eviction Rule 3)
        self.clock = 0
        self._pending: Dict[str, List[CandidateSubJob]] = {}
        self._pending_events: List[ReStoreEvent] = []
        # counters for reporting / tests
        self.rewrite_count = 0
        self.elimination_count = 0
        #: cumulative index/pruning telemetry (reporting, benchmarks)
        self.match_totals = MatchPipelineTotals()

    def _emit(self, event: ReStoreEvent) -> None:
        self.events.emit(event)
        self._pending_events.append(event)

    # -- JobListener hooks -----------------------------------------------------------

    def on_workflow_start(self, workflow: Workflow) -> None:
        self.clock += 1
        self.run_evictions()

    def before_job(self, job: MapReduceJob, workflow: Workflow) -> bool:
        if self.config.rewrite_enabled:
            self._match_and_rewrite(job, workflow)
        if job.eliminated_by is not None:
            return False
        if self.config.inject_enabled:
            self._pending[job.job_id] = self.enumerator.enumerate_and_inject(job)
        return True

    def after_job(self, job: MapReduceJob, stats: JobStats, workflow: Workflow) -> None:
        for candidate in self._pending.pop(job.job_id, []):
            self._register_sub_job(candidate, stats)
        self._register_whole_job(job, stats)

    def protected_paths(self) -> Set[str]:
        return set(self.kept_paths)

    def drain(self) -> List[ReStoreEvent]:
        events, self._pending_events = self._pending_events, []
        return events

    # -- matching & rewriting (component 1) -----------------------------------------------

    def _match_and_rewrite(self, job: MapReduceJob, workflow: Workflow) -> None:
        """Scan the repository; rewrite on the first match; rescan
        until no plan matches (paper §3).

        Each pass asks the repository for fingerprint-pruned
        candidates (the full ordered scan when ``indexed_matching`` is
        off); the expensive pairwise traversal only runs against those.
        A :class:`~repro.events.MatchScanned` telemetry event goes out
        on the bus when the scan completes.
        """
        scan = MatchScanned(job_id=job.job_id)
        try:
            for _ in range(self.config.max_rewrite_passes):
                matched = False
                candidates, pass_stats = self.repository.match_candidates(
                    job.plan, indexed=self.config.indexed_matching
                )
                scan.passes += 1
                scan.entries_total = pass_stats.entries_total
                scan.candidates += pass_stats.candidates
                scan.pruned += pass_stats.pruned
                for entry in candidates:
                    scan.traversals += 1
                    result = self.matcher.match(job.plan, entry.plan)
                    if result is None:
                        continue
                    if self._is_noop_match(result, entry):
                        continue
                    if result.whole_job:
                        scan.matches += 1
                        self._apply_whole_job(job, entry, workflow)
                        return
                    self.rewriter.rewrite_partial(
                        job.plan, result, entry.output_path, entry.output_schema
                    )
                    entry.mark_used(self.clock)
                    self.rewrite_count += 1
                    scan.matches += 1
                    self._emit(RewriteApplied(
                        job_id=job.job_id,
                        entry_id=entry.entry_id,
                        anchor_kind=entry.anchor_kind,
                        output_path=entry.output_path,
                    ))
                    matched = True
                    break
                if not matched:
                    return
        finally:
            self._record_scan(scan)

    def _record_scan(self, scan: MatchScanned) -> None:
        totals = self.match_totals
        totals.jobs_scanned += 1
        totals.passes += scan.passes
        totals.entries_seen += scan.entries_total * scan.passes
        totals.candidates_examined += scan.candidates
        totals.candidates_pruned += scan.pruned
        totals.traversals += scan.traversals
        if scan.entries_total:
            # Bus-only telemetry: the drain channel stays a pure
            # decision log, so legacy consumers see no new lines.
            self.events.emit(scan)

    @staticmethod
    def _is_noop_match(result, entry: RepositoryEntry) -> bool:
        """Reject rewrites that would only swap a Load for an identical
        Load (possible with trivial entries; avoids rewrite cycles)."""
        return (
            isinstance(result.frontier, POLoad)
            and result.frontier.path == entry.output_path
        )

    def _apply_whole_job(
        self, job: MapReduceJob, entry: RepositoryEntry, workflow: Workflow
    ) -> None:
        entry.mark_used(self.clock)
        if job.temporary:
            # Intermediate job: drop it, point consumers at the stored copy.
            job.eliminated_by = entry.entry_id
            others = [j for j in workflow.jobs if j is not job]
            self.rewriter.redirect_loads(others, job.output_path, entry.output_path)
            self.elimination_count += 1
            self._emit(JobEliminated(
                job_id=job.job_id,
                entry_id=entry.entry_id,
                output_path=entry.output_path,
                reason="redirected",
            ))
            return
        if entry.output_path == job.output_path and self.dfs.exists(entry.output_path):
            # Resubmission of the very same query: result already there.
            job.eliminated_by = entry.entry_id
            self.elimination_count += 1
            self._emit(JobEliminated(
                job_id=job.job_id,
                entry_id=entry.entry_id,
                output_path=entry.output_path,
                reason="already-stored",
            ))
            return
        # Final job writing elsewhere: degrade to a copy job.
        self.rewriter.rewrite_as_copy_job(job, entry.output_path, entry.output_schema)
        self.rewrite_count += 1
        self._emit(RewriteApplied(
            job_id=job.job_id,
            entry_id=entry.entry_id,
            anchor_kind=entry.anchor_kind,
            output_path=entry.output_path,
            whole_job=True,
        ))

    # -- registration (components 2+3) ----------------------------------------------------

    def _register_sub_job(self, candidate: CandidateSubJob, stats: JobStats) -> None:
        store_stat = stats.store_for_path(candidate.store_path)
        if store_stat is None:
            return
        if len(candidate.plan) <= 2:
            self._discard_file(candidate.store_path)
            return
        if self.repository.find_equivalent(candidate.plan) is not None:
            # Duplicate computation already stored: drop the new copy.
            self._discard_file(candidate.store_path)
            return
        load_paths = [op.path for op in candidate.plan.loads()]
        input_bytes = sum(stats.load_bytes.get(p, 0) for p in load_paths)
        entry = RepositoryEntry(
            plan=candidate.plan,
            output_path=candidate.store_path,
            output_schema=candidate.output_schema,
            stats=EntryStats(
                input_bytes=input_bytes,
                output_bytes=store_stat.bytes,
                output_records=store_stat.records,
                exec_time_s=estimate_standalone_time(
                    self.cost_model,
                    input_bytes=input_bytes,
                    output_bytes=store_stat.bytes,
                    records=stats.input_records,
                ),
            ),
            anchor_kind=candidate.anchor_kind,
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=self._mtimes(load_paths),
        )
        decision = self.selector.decide(entry)
        if not decision.keep:
            self._discard_file(candidate.store_path)
            self._emit(SubJobDiscarded(
                output_path=candidate.store_path,
                reason=decision.reason,
                anchor_kind="sub-job",
            ))
            return
        self.repository.add(entry)
        self.kept_paths.add(candidate.store_path)
        self._emit(SubJobStored(
            entry_id=entry.entry_id,
            output_path=candidate.store_path,
            anchor_kind=candidate.anchor_kind,
        ))

    def _register_whole_job(self, job: MapReduceJob, stats: JobStats) -> None:
        policy = self.config.register_whole_jobs
        if policy == "none":
            return
        if policy == "temporary-only" and not job.temporary:
            return
        primary = job.plan.primary_store()
        if primary is None:
            return
        clean_plan = job.plan.subplan_upto(primary)
        if len(clean_plan) <= 2:
            return  # trivial copy job: nothing worth storing
        if self.repository.find_equivalent(clean_plan) is not None:
            return
        load_paths = [op.path for op in clean_plan.loads()]
        sim_time = (
            stats.sim.total_without_side_stores if stats.sim is not None else 0.0
        )
        entry = RepositoryEntry(
            plan=clean_plan,
            output_path=primary.path,
            output_schema=primary.schema or job.plan.loads()[0].schema,
            stats=EntryStats(
                input_bytes=stats.input_bytes,
                output_bytes=stats.output_bytes,
                output_records=stats.output_records,
                exec_time_s=sim_time,
            ),
            anchor_kind="whole-job",
            created_at=self.clock,
            last_used_at=self.clock,
            input_mtimes=self._mtimes(load_paths),
        )
        decision = self.selector.decide(entry)
        if not decision.keep:
            self._emit(SubJobDiscarded(
                output_path=primary.path,
                reason=decision.reason,
                anchor_kind="whole-job",
            ))
            return
        self.repository.add(entry)
        if job.temporary:
            self.kept_paths.add(primary.path)
        self._emit(SubJobStored(
            entry_id=entry.entry_id,
            output_path=primary.path,
            anchor_kind="whole-job",
        ))

    def _mtimes(self, paths) -> Dict[str, int]:
        return {
            path: self.dfs.mtime(path) for path in paths if self.dfs.exists(path)
        }

    # -- eviction (§5 rules 3-4) --------------------------------------------------------------

    def run_evictions(self) -> List[str]:
        """Apply all configured policies until fixpoint.

        Iterating matters for cascades: evicting an entry deletes its
        owned output file, which is another entry's *input* — Rule 4
        must then claim that dependent entry on the next pass (stale
        results never survive transitively).
        """
        evicted: List[str] = []
        changed = True
        while changed:
            changed = False
            for policy in self.eviction_policies:
                victims = policy.select_victims(
                    self.repository, self.dfs, self.clock
                )
                for victim in victims:
                    if victim.entry_id in evicted:
                        continue
                    self._evict(victim, policy.name)
                    evicted.append(victim.entry_id)
                    changed = True
        return evicted

    def _evict(self, entry: RepositoryEntry, reason: str) -> None:
        try:
            self.repository.remove(entry.entry_id)
        except Exception:
            return
        if entry.output_path in self.kept_paths:
            self.kept_paths.discard(entry.output_path)
            self._discard_file(entry.output_path)
        self._emit(EntryEvicted(
            entry_id=entry.entry_id,
            policy=reason,
            output_path=entry.output_path,
        ))

    def _discard_file(self, path: str) -> None:
        self.dfs.delete_if_exists(path)

    # -- reporting ---------------------------------------------------------------------------------

    #: event types whose rendered form the legacy string channel carried
    _LEGACY_EVENT_TYPES = (
        RewriteApplied, JobEliminated, SubJobDiscarded, EntryEvicted,
    )

    @classmethod
    def legacy_strings(cls, events: Sequence[ReStoreEvent]) -> List[str]:
        """Project typed events onto the pre-1.1 string log (which had
        no 'stored' lines — only rewrites, eliminations, discards, and
        evictions)."""
        return [
            event.render() for event in events
            if isinstance(event, cls._LEGACY_EVENT_TYPES)
        ]

    def drain_events(self) -> List[str]:
        """Deprecated: use ``drain()`` for typed events, or subscribe
        to ``manager.events``."""
        warnings.warn(
            "ReStoreManager.drain_events() is deprecated; use drain() for "
            "typed events or subscribe to manager.events",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.legacy_strings(self.drain())

    def __repr__(self) -> str:
        return (
            f"ReStoreManager(entries={len(self.repository)}, "
            f"rewrites={self.rewrite_count}, eliminations={self.elimination_count})"
        )
