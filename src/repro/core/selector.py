"""Enumerated sub-job selection: which candidate outputs to *keep* (§5).

The paper stores everything in its experiments ("we store the outputs
of all candidate jobs and sub-jobs") but proposes Rules 1–2 as keep
criteria; both policies ship here.

* Rule 1 — keep only if the output is smaller than the input (reduces
  ``T_load`` in Equation 2).
* Rule 2 — keep only if the cost model predicts workflows reusing the
  output run faster than recomputing it (Equation 1/2 check: loading
  the stored result must beat executing the producing job).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.registry import PluginRegistry
from repro.core.repository import RepositoryEntry
from repro.costmodel.model import CostModel, estimate_standalone_time

#: name -> selector class; extend with ``SELECTORS.register``.  Every
#: registered factory must accept ``cost_model=`` (may ignore it) so
#: selectors resolved by name share the session's cost model.
SELECTORS = PluginRegistry("selector")


@dataclass
class KeepDecision:
    keep: bool
    reason: str


class Selector:
    """Decides whether a freshly produced output enters the repository."""

    name = "abstract"

    def decide(self, entry: RepositoryEntry) -> KeepDecision:
        raise NotImplementedError


@SELECTORS.register("keep-all", aliases=("all",))
class KeepAllSelector(Selector):
    """The paper's experimental configuration: store everything."""

    name = "keep-all"

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model  # unused; accepted for registry symmetry

    def decide(self, entry: RepositoryEntry) -> KeepDecision:
        return KeepDecision(True, "keep-all policy")


@SELECTORS.register("rules", aliases=("rule-based",))
class RuleBasedSelector(Selector):
    """Rules 1 and 2 of §5."""

    name = "rules"

    def __init__(self, cost_model: Optional[CostModel] = None):
        self.cost_model = cost_model or CostModel()

    def decide(self, entry: RepositoryEntry) -> KeepDecision:
        stats = entry.stats
        # Rule 1: output must be smaller than input.
        if stats.output_bytes >= stats.input_bytes:
            return KeepDecision(
                False,
                f"rule 1: output ({stats.output_bytes} B) is not smaller "
                f"than input ({stats.input_bytes} B)",
            )
        # Rule 2: reusing must be faster than recomputing.  Reuse cost
        # is a job that loads the stored output; recompute cost is the
        # producing job's estimated standalone time.
        reuse_time = estimate_standalone_time(
            self.cost_model,
            input_bytes=stats.output_bytes,
            output_bytes=0,
            records=stats.output_records,
        )
        recompute_time = stats.exec_time_s or estimate_standalone_time(
            self.cost_model,
            input_bytes=stats.input_bytes,
            output_bytes=stats.output_bytes,
            records=stats.output_records,
        )
        if reuse_time >= recompute_time:
            return KeepDecision(
                False,
                f"rule 2: reuse ({reuse_time:.1f}s) would not beat "
                f"recompute ({recompute_time:.1f}s)",
            )
        return KeepDecision(
            True,
            f"keeps {stats.input_bytes - stats.output_bytes} B of input "
            f"off future loads; saves ~{recompute_time - reuse_time:.1f}s",
        )


def selector_by_name(name: str, cost_model: Optional[CostModel] = None) -> Selector:
    """Resolve a selector by registry name, injecting ``cost_model``
    so Rule-2 estimates agree with the rest of the session."""
    return SELECTORS.create(name, cost_model=cost_model)
