"""A faithful port of the paper's Algorithm 1 (PairwisePlanTraversal).

The production matcher (``repro.core.matcher``) implements the same
containment semantics with an explicit mapping and backtracking; this
module transcribes the paper's pseudocode nearly line-by-line so the
two can be cross-checked (see ``tests/test_algorithm1.py``).

Pseudocode (paper §3):

    PairwisePlanTraversal(operator, succsPlan1, succsPlan2, seen, lastMatch)
     1: if succsPlan2 == φ: return lastMatch
     3: else if succsPlan1 == φ: return null
     6: for all succ ∈ succsPlan1:
     7:   if succ ∉ seen:
     8:     seen ← seen ∪ {succ}
     9:     equivOP ← findEquivalentOP(succ, succsPlan2)
    10:     if equivOP == null: continue
    13:     newSuccsPlan1 ← getSuccessors(succ)
    14:     newSuccsPlan2 ← getSuccs(equivOP)
    15:     retVal ← PairwisePlanTraversal(succ, newSuccsPlan1,
                                           newSuccsPlan2, seen, succ)
    16:     if retVal == null: return null
    19:     succsPlan2 ← succsPlan2 − {equivOP}
    20:     if succsPlan2 == φ: break
    27: return retVal

It is initially called with the Load operators of the input plan as
``succsPlan1`` and of the repository plan as ``succsPlan2``; the
repository plan is contained when all of its operators find equivalent
operators in the input plan.  As in the production matcher, the
repository plan's final Store is terminal (a store writes anywhere),
and Split tees on the input side are looked through.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.matcher import operators_equivalent
from repro.pig.physical.operators import PhysicalOperator, POSplit, POStore
from repro.pig.physical.plan import PhysicalPlan


class PairwisePlanTraversal:
    """The paper's recursive simultaneous traversal."""

    def __init__(self, input_plan: PhysicalPlan, repo_plan: PhysicalPlan):
        self.input_plan = input_plan
        self.repo_plan = repo_plan
        #: repository operators that found an equivalent (for the final
        #: "all operators of the plan in the repository have equivalent
        #: operators" containment check)
        self.matched_repo_ids: Set[int] = set()
        self.last_match: Optional[PhysicalOperator] = None

    # -- plan accessors (the pseudocode's helpers) -------------------------------

    def _successors_input(self, op: PhysicalOperator) -> List[PhysicalOperator]:
        """getSuccessors on the input plan, transparent through Splits."""
        out: List[PhysicalOperator] = []
        for succ in self.input_plan.successors(op):
            if isinstance(succ, POSplit):
                out.extend(self._successors_input(succ))
            else:
                out.append(succ)
        return out

    def _successors_repo(self, op: PhysicalOperator) -> List[PhysicalOperator]:
        """getSuccs on the repository plan; the final Store is terminal."""
        return [
            succ
            for succ in self.repo_plan.successors(op)
            if not isinstance(succ, POStore)
        ]

    @staticmethod
    def _find_equivalent(
        succ: PhysicalOperator, succs_plan2: List[PhysicalOperator]
    ) -> Optional[PhysicalOperator]:
        """findEquivalentOP (line 9): first signature-equivalent op."""
        for candidate in succs_plan2:
            if operators_equivalent(succ, candidate):
                return candidate
        return None

    # -- the algorithm --------------------------------------------------------------

    def traverse(
        self,
        succs_plan1: List[PhysicalOperator],
        succs_plan2: List[PhysicalOperator],
        seen: Set[int],
        last_match: Optional[PhysicalOperator],
    ) -> Optional[PhysicalOperator]:
        if not succs_plan2:  # line 1
            return last_match  # line 2
        if not succs_plan1:  # line 3
            return None  # line 4

        succs_plan2 = list(succs_plan2)
        ret_val: Optional[PhysicalOperator] = last_match
        for succ in succs_plan1:  # line 6
            if succ.op_id in seen:  # line 7
                continue
            seen.add(succ.op_id)  # line 8
            equiv_op = self._find_equivalent(succ, succs_plan2)  # line 9
            if equiv_op is None:  # line 10
                continue  # line 11
            self.matched_repo_ids.add(equiv_op.op_id)
            ret_val = self.traverse(  # line 15
                self._successors_input(succ),
                self._successors_repo(equiv_op),
                seen,
                succ,
            )
            if ret_val is None:  # line 16
                return None  # line 17
            succs_plan2.remove(equiv_op)  # line 19
            if not succs_plan2:  # line 20
                break  # line 21
        self.last_match = ret_val
        return ret_val  # line 27

    def run(self) -> Optional[PhysicalOperator]:
        """Initial call: both plans' Load operators (paper §3)."""
        result = self.traverse(
            list(self.input_plan.sources()),
            list(self.repo_plan.sources()),
            set(),
            None,
        )
        if result is None:
            return None
        # containment: every repo operator (Stores excluded) matched
        repo_ops = {
            op.op_id
            for op in self.repo_plan.operators
            if not isinstance(op, POStore)
        }
        if not repo_ops <= self.matched_repo_ids:
            return None
        return result


def algorithm1_contains(input_plan: PhysicalPlan, repo_plan: PhysicalPlan) -> bool:
    """True when *repo_plan* is contained in *input_plan* per the
    paper's Algorithm 1 (the reference semantics)."""
    return PairwisePlanTraversal(input_plan, repo_plan).run() is not None
