"""Sub-job enumeration and Store injection (paper §4, Figure 8).

For every physical operator the heuristic selects, the enumerator
splices a ``POSplit`` tee after it and hangs a side ``POStore`` off the
tee, so the operator's output is materialized while the original
pipeline continues unchanged.  Each injected store corresponds to a
*candidate sub-job*: a standalone plan from the job's Loads up to the
anchored operator plus a Store, registered in the repository after the
job executes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.heuristics import Heuristic, classify_operator
from repro.mapreduce.job import MapReduceJob
from repro.pig.physical.operators import (
    PhysicalOperator,
    POSplit,
    POStore,
)
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema

_CANDIDATE_COUNTER = itertools.count(1)


@dataclass
class CandidateSubJob:
    """One enumerated sub-job: its standalone plan and output location."""

    #: complete, independent job plan (Loads ... anchor ... Store) —
    #: "indistinguishable from other jobs in the repository" (§4)
    plan: PhysicalPlan
    store_path: str
    anchor_kind: str
    output_schema: Schema
    #: op id of the injected side store in the *running* job's plan
    injected_store_id: Optional[int] = None


class SubJobEnumerator:
    """Enumerates candidates and injects their Stores into a job."""

    def __init__(
        self,
        heuristic: Heuristic,
        path_prefix: str = "restore/subjob",
        id_allocator: Optional[Callable[[], int]] = None,
    ):
        self.heuristic = heuristic
        self.path_prefix = path_prefix.rstrip("/")
        #: hands out sub-job numbers.  The manager passes the DFS's
        #: allocator so paths are scoped to the shared filesystem —
        #: deterministic per fresh DFS (serial and service runs of the
        #: same stream produce identical store paths) yet collision-
        #: free between managers sharing one DFS.  The default keeps
        #: the legacy process-global numbering for standalone use.
        self._next_id = id_allocator or (lambda: next(_CANDIDATE_COUNTER))

    def _new_path(self) -> str:
        return f"{self.path_prefix}/sj{self._next_id():06d}"

    def enumerate_and_inject(self, job: MapReduceJob) -> List[CandidateSubJob]:
        """Instrument *job* in place; returns the injected candidates."""
        plan = job.plan
        candidates: List[CandidateSubJob] = []
        # Topological snapshot first: injection mutates the DAG.
        anchors = [
            op
            for op in plan.topo_order()
            if self.heuristic.should_materialize(op, plan)
        ]
        for anchor in anchors:
            candidate = self._inject_for(plan, anchor)
            if candidate is not None:
                candidates.append(candidate)
        if candidates:
            plan.validate()
        return candidates

    def _inject_for(
        self, plan: PhysicalPlan, anchor: PhysicalOperator
    ) -> Optional[CandidateSubJob]:
        if anchor.schema is None:
            return None
        successors = plan.successors(anchor)
        # If the output is already stored (anchor feeds a Store), the
        # whole-job candidate covers it; injecting would double-store.
        if any(isinstance(s, POStore) for s in successors):
            return None

        # The candidate's standalone plan is extracted *before* the tee
        # is spliced in, so it stays clean of instrumentation.  The
        # anchor's clone comes from the extraction's op-id mapping —
        # scanning sinks for a matching signature would pick an
        # arbitrary twin whenever two sinks compute the same thing.
        sub_plan, twins = plan.subplan_upto_mapped(anchor)
        store_path = self._new_path()
        sub_store = POStore(store_path, schema=anchor.schema)
        sub_anchor = twins[anchor.op_id]
        sub_plan.add(sub_store)
        sub_plan.connect(sub_anchor, sub_store)

        side_store = POStore(store_path, schema=anchor.schema, side=True)
        tee = self._tee_after(plan, anchor)
        plan.add(side_store)
        plan.connect(tee, side_store)

        return CandidateSubJob(
            plan=sub_plan,
            store_path=store_path,
            anchor_kind=classify_operator(anchor, plan),
            output_schema=anchor.schema,
            injected_store_id=side_store.op_id,
        )

    def _tee_after(self, plan: PhysicalPlan, anchor: PhysicalOperator) -> POSplit:
        """Reuse an existing tee after *anchor* or splice in a new one."""
        successors = plan.successors(anchor)
        for succ in successors:
            if isinstance(succ, POSplit):
                return succ
        tee = POSplit()
        tee.schema = anchor.schema
        plan.add(tee)
        for succ in list(plan.successors(anchor)):
            plan.disconnect(anchor, succ)
            plan.connect(tee, succ)
        plan.connect(anchor, tee)
        return tee
