"""Repository eviction policies (§5, Rules 3 and 4, plus a capacity
extension).

* Rule 3 — evict outputs not reused within a window of (logical) time.
* Rule 4 — evict outputs whose inputs were deleted or modified.
* Capacity (extension) — when a byte budget is configured, evict
  least-recently-used entries until the repository fits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.freshness import APPENDED, FRESH, classify_input, delta_upgradeable
from repro.core.registry import PluginRegistry
from repro.core.repository import Repository, RepositoryEntry
from repro.dfs.filesystem import DistributedFileSystem

#: name -> policy class; extend with ``EVICTION_POLICIES.register``
EVICTION_POLICIES = PluginRegistry("eviction policy")


class EvictionPolicy:
    """Returns the entries that should leave the repository now."""

    name = "abstract"

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        raise NotImplementedError

    @classmethod
    def from_spec(cls, arg: Optional[str]) -> "EvictionPolicy":
        """Build from the argument part of a ``name[:arg]`` CLI spec."""
        if arg is not None:
            raise ValueError(f"{cls.name} takes no argument, got {arg!r}")
        return cls()


@EVICTION_POLICIES.register("time-window", aliases=("window",))
class TimeWindowEviction(EvictionPolicy):
    """Rule 3: not reused within ``window`` logical ticks.

    Our logical clock advances once per executed workflow, so a window
    of N means "evict if N workflows ran without reusing this output"
    (Facebook's production analogue: results kept for seven days, §1).
    """

    name = "time-window"

    #: default window when built from a bare ``time-window`` spec
    DEFAULT_WINDOW = 7

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    @classmethod
    def from_spec(cls, arg: Optional[str]) -> "TimeWindowEviction":
        return cls(window=int(arg) if arg is not None else cls.DEFAULT_WINDOW)

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        victims = []
        for entry in repository:
            reference = max(entry.last_used_at, entry.created_at)
            if now - reference > self.window:
                victims.append(entry)
        return victims


@EVICTION_POLICIES.register("input-modified", aliases=("stale",))
class InputModifiedEviction(EvictionPolicy):
    """Rule 4: a source dataset was deleted or rewritten in place.

    Walks the repository's input-path index instead of every entry:
    each distinct source dataset is stat'ed exactly once, and only the
    entries registered under it are classified against its live
    extent (:mod:`repro.core.freshness`).  An input that merely *grew*
    by an append keeps the entry alive when its sub-plan is
    delta-upgradeable — the stored output is still an exact prefix of
    the recomputation and the matcher refreshes it incrementally on
    the next probe; evicting it would throw that prefix away.  Legacy
    entries without recorded extents classify any mtime movement as
    rewritten, preserving the old (conservative) behaviour.
    """

    name = "input-modified"

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        victim_ids = set()
        for path in repository.input_paths():
            live = dfs.input_extent(path)
            for entry in repository.entries_with_input(path):
                if entry.entry_id in victim_ids:
                    continue
                kind = classify_input(entry, path, live, dfs)
                if kind == FRESH:
                    continue
                if kind == APPENDED and delta_upgradeable(entry):
                    continue
                victim_ids.add(entry.entry_id)
        # report in repository (insertion) order, like the full scan did
        return [e for e in repository if e.entry_id in victim_ids]


@EVICTION_POLICIES.register("capacity", aliases=("lru",))
class CapacityEviction(EvictionPolicy):
    """Extension: keep total stored bytes under a budget (LRU order)."""

    name = "capacity"

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes

    @classmethod
    def from_spec(cls, arg: Optional[str]) -> "CapacityEviction":
        if arg is None:
            raise ValueError(
                "capacity eviction needs a byte budget, e.g. capacity:1048576"
            )
        return cls(capacity_bytes=int(arg))

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        excess = repository.total_stored_bytes - self.capacity_bytes
        if excess <= 0:
            return []
        by_lru = sorted(
            repository,
            key=lambda e: (max(e.last_used_at, e.created_at), e.entry_id),
        )
        victims: List[RepositoryEntry] = []
        freed = 0
        for entry in by_lru:
            if freed >= excess:
                break
            victims.append(entry)
            freed += entry.stats.output_bytes
        return victims


def eviction_by_name(spec: str) -> EvictionPolicy:
    """Build a policy from a ``name`` or ``name:arg`` spec string.

    Examples: ``time-window:4``, ``input-modified``, ``capacity:1048576``.
    """
    name, sep, arg = spec.partition(":")
    policy_cls = EVICTION_POLICIES.get(name)
    return policy_cls.from_spec(arg if sep else None)
