"""Repository eviction policies (§5, Rules 3 and 4, plus a capacity
extension).

* Rule 3 — evict outputs not reused within a window of (logical) time.
* Rule 4 — evict outputs whose inputs were deleted or modified.
* Capacity (extension) — when a byte budget is configured, evict
  least-recently-used entries until the repository fits.
"""

from __future__ import annotations

from typing import List

from repro.core.repository import Repository, RepositoryEntry
from repro.dfs.filesystem import DistributedFileSystem


class EvictionPolicy:
    """Returns the entries that should leave the repository now."""

    name = "abstract"

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        raise NotImplementedError


class TimeWindowEviction(EvictionPolicy):
    """Rule 3: not reused within ``window`` logical ticks.

    Our logical clock advances once per executed workflow, so a window
    of N means "evict if N workflows ran without reusing this output"
    (Facebook's production analogue: results kept for seven days, §1).
    """

    name = "time-window"

    def __init__(self, window: int):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        victims = []
        for entry in repository:
            reference = max(entry.last_used_at, entry.created_at)
            if now - reference > self.window:
                victims.append(entry)
        return victims


class InputModifiedEviction(EvictionPolicy):
    """Rule 4: a source dataset was deleted or has a newer mtime."""

    name = "input-modified"

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        victims = []
        for entry in repository:
            for path, recorded_mtime in entry.input_mtimes.items():
                if not dfs.exists(path) or dfs.mtime(path) > recorded_mtime:
                    victims.append(entry)
                    break
        return victims


class CapacityEviction(EvictionPolicy):
    """Extension: keep total stored bytes under a budget (LRU order)."""

    name = "capacity"

    def __init__(self, capacity_bytes: int):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity_bytes = capacity_bytes

    def select_victims(
        self, repository: Repository, dfs: DistributedFileSystem, now: int
    ) -> List[RepositoryEntry]:
        excess = repository.total_stored_bytes - self.capacity_bytes
        if excess <= 0:
            return []
        by_lru = sorted(
            repository,
            key=lambda e: (max(e.last_used_at, e.created_at), e.entry_id),
        )
        victims: List[RepositoryEntry] = []
        freed = 0
        for entry in by_lru:
            if freed >= excess:
                break
            victims.append(entry)
            freed += entry.stats.output_bytes
        return victims
