"""The append-only payload block store.

Repository metadata became crash-safe with the snapshot + journal
subsystem, but the bytes a matched entry actually *serves* — its DFS
output file — lived only in memory (mirrored, for the CLI, by a
best-effort ``.files/`` sidecar).  This module persists those payloads
natively, with exactly the journal's torn-tail discipline, so a
recovered entry is never served unless its output bytes are durable
and intact.

One block-store *generation* is a single append-only file of framed
segments::

    body length u32 | crc32(body) u32 | body
    body = path length u16 | path utf8 | payload bytes

Appends never rewrite earlier bytes, so a crash mid-append tears only
the tail: :meth:`BlockStore.scan` stops at the last intact frame,
:meth:`BlockStore.repair` truncates the tear in place, and a
checksummed-but-rotten segment mid-file is quarantined (skipped) when
an intact frame follows — the same three-way decision
:mod:`repro.persistence.journal` makes.

A :class:`SegmentRef` names one stored payload: ``(gen, offset,
length, crc)``, where ``offset``/``length`` frame the segment inside
generation ``gen``'s file and ``crc`` is the crc32 of the *payload
bytes themselves*, recorded by the persister before the write.  That
second checksum is deliberate: the frame CRC proves the segment is
internally consistent, the ref CRC proves it still holds the bytes
the repository thinks it does — catching substitution, length drift,
and corruption injected between read and write.  Refs travel through
``payload_stored`` journal records and the snapshot's ``payloads``
table; :func:`verify_ref` is the scrub's single integrity check.

Snapshot rotation compacts live payloads into generation ``gen+1``
and deletes the old file only after the snapshot + journal reset
committed, so every crash window leaves all referenced generations on
disk (see ``RepositoryPersister.take_snapshot``).
"""

from __future__ import annotations

import struct
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ReproError
from repro.faults import injector as faults
from repro.faults.injector import PartialWriteFault

#: segment body length, crc32(body)
_FRAME = struct.Struct(">II")
#: path length (the body's leading field)
_PATH_LEN = struct.Struct(">H")


class BlockStoreError(ReproError):
    """A block-store segment could not be encoded or decoded."""


@dataclass(frozen=True)
class SegmentRef:
    """One stored payload's durable address + content checksum."""

    gen: int
    offset: int
    length: int
    crc: int

    def to_list(self) -> List[int]:
        return [self.gen, self.offset, self.length, self.crc]

    @classmethod
    def from_list(cls, raw: Sequence[int]) -> "SegmentRef":
        if len(raw) != 4:
            raise BlockStoreError(f"malformed segment ref: {raw!r}")
        return cls(int(raw[0]), int(raw[1]), int(raw[2]), int(raw[3]))


def encode_segment(path: str, data: bytes) -> bytes:
    """Frame one payload segment (length-prefixed + checksummed)."""
    encoded_path = path.encode()
    if len(encoded_path) > 0xFFFF:
        raise BlockStoreError(f"path too long for a segment header: {path!r}")
    body = _PATH_LEN.pack(len(encoded_path)) + encoded_path + data
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


def _decode_body(body: bytes) -> Optional[Tuple[str, bytes]]:
    if len(body) < _PATH_LEN.size:
        return None
    (path_len,) = _PATH_LEN.unpack_from(body)
    start = _PATH_LEN.size
    if start + path_len > len(body):
        return None
    try:
        path = body[start : start + path_len].decode()
    except UnicodeDecodeError:
        return None
    return path, body[start + path_len :]


def _frame_intact(data: bytes, offset: int) -> bool:
    total = len(data)
    if total - offset < _FRAME.size:
        return False
    length, crc = _FRAME.unpack_from(data, offset)
    start = offset + _FRAME.size
    end = start + length
    return end <= total and zlib.crc32(data[start:end]) == crc


@dataclass
class BlockScan:
    """The result of decoding one generation's segment file.

    ``segments`` maps frame offset → ``(frame length, path, payload)``
    for every intact segment; ``clean_bytes`` is the longest prefix of
    intact frames, and anything past it is a torn tail from a crash
    mid-append.
    """

    segments: Dict[int, Tuple[int, str, bytes]] = field(default_factory=dict)
    clean_bytes: int = 0
    total_bytes: int = 0
    #: mid-file segments skipped over a CRC failure (bit rot with an
    #: intact continuation, not a tear)
    skipped: int = 0

    @property
    def torn(self) -> bool:
        return self.clean_bytes < self.total_bytes

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.clean_bytes


def decode_blockstore(data: bytes) -> BlockScan:
    """Decode every intact segment; stop (never raise) at a torn tail.

    The journal's scan discipline, applied to payloads: a checksum
    failure whose declared length lands on another intact frame is bit
    rot — quarantine the segment and resync; damage with no valid
    continuation is a torn tail and ends the scan.
    """
    scan = BlockScan(total_bytes=len(data))
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break  # torn payload
        body = data[start:end]
        decoded = None
        if zlib.crc32(body) == crc:
            decoded = _decode_body(body)
        if decoded is None:
            if end < total and _frame_intact(data, end):
                scan.skipped += 1
                offset = end  # quarantine the rotten segment, resync
                continue
            break  # no valid continuation: a genuine torn tail
        path, payload = decoded
        scan.segments[offset] = (end - offset, path, payload)
        offset = end
    scan.clean_bytes = offset
    return scan


def verify_ref(
    scan: BlockScan, ref: SegmentRef, path: str
) -> Optional[bytes]:
    """The scrub's integrity check: the payload bytes *ref* promises,
    or ``None`` when the segment is missing (torn away, never written),
    fails its checksum, drifted in length, or frames another path."""
    found = scan.segments.get(ref.offset)
    if found is None:
        return None
    length, stored_path, payload = found
    if length != ref.length or stored_path != path:
        return None
    if zlib.crc32(payload) != ref.crc:
        return None
    return payload


class BlockStore:
    """An append-only segment log of one generation over one storage
    backend (local file or simulated-DFS file)."""

    def __init__(self, storage, gen: int = 0) -> None:
        self.storage = storage
        self.gen = gen
        #: serializes offset reservation + append so concurrent
        #: captures (repository mutations vs kept-path commits) can
        #: never interleave their frames
        self._lock = threading.Lock()

    @property
    def location(self) -> str:
        return self.storage.location

    def append(self, path: str, data: bytes) -> SegmentRef:
        """Durably append one payload segment; returns its ref.

        Injection site ``blockstore.append``: a ``partial`` rule lands
        its prefix (a genuinely torn tail for the scrub to condemn and
        repair) before the failure surfaces; ``suppress`` models a
        lying disk — the ref is handed out but nothing was written,
        which is exactly what the recovery scrub exists to catch.
        """
        frame = encode_segment(path, data)
        with self._lock:
            offset = self.storage.size()
            try:
                written = faults.fire("blockstore.append", data=frame)
            except PartialWriteFault as fault:
                if fault.prefix:
                    self.storage.append(fault.prefix)
                raise
            if written is not None and len(written) > 0:
                self.storage.append(written)
        return SegmentRef(self.gen, offset, len(frame), zlib.crc32(data))

    def scan(self) -> BlockScan:
        data = self.storage.read() if self.storage.exists() else b""
        # injection site "blockstore.read": bit rot on the read-back
        # path (exercises segment quarantine / torn-tail truncation)
        data = faults.fire("blockstore.read", data=data)
        return decode_blockstore(data)

    def repair(self, scan: Optional[BlockScan] = None) -> int:
        """Truncate a torn tail in place; returns the bytes dropped."""
        if scan is None:
            scan = self.scan()
        if scan.torn:
            self.storage.truncate(scan.clean_bytes)
        return scan.torn_bytes

    def size(self) -> int:
        return self.storage.size()

    def __repr__(self) -> str:
        return f"BlockStore({self.location!r}, gen={self.gen}, bytes={self.size()})"


__all__ = [
    "BlockScan",
    "BlockStore",
    "BlockStoreError",
    "SegmentRef",
    "decode_blockstore",
    "encode_segment",
    "verify_ref",
]
