"""The append-only mutation journal.

Every repository mutation after the last snapshot lands here as one
framed record::

    length u32 | crc32 u32 | payload (compact JSON, ``length`` bytes)

The framing makes a mid-flush crash recoverable by construction: a
torn tail — an incomplete frame header, a payload shorter than its
declared length, or a payload whose checksum disagrees — stops the
scan at the last complete record.  Everything before the tear is
intact (appends never rewrite earlier bytes), so recovery replays the
clean prefix and truncates the tear instead of guessing at it.

Record payloads are JSON objects with a ``type`` field; the types the
persister writes (``entry_added``, ``entry_removed``, ``entry_used``,
``kept_path_added``, ``kept_path_removed``, ``counters``) are applied
by :class:`repro.persistence.durability.ReplayTarget`.  Unknown types
are preserved by the scan and skipped by replay, so old readers
tolerate journals written by newer code.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Mapping

from repro.exceptions import ReproError
from repro.faults import injector as faults
from repro.faults.injector import PartialWriteFault

#: payload length, crc32(payload)
_FRAME = struct.Struct(">II")


class JournalError(ReproError):
    """A journal could not be written or scanned."""


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record: its ``type`` plus the remaining
    payload fields."""

    type: str
    data: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        payload = dict(self.data)
        payload["type"] = self.type
        return payload

    @classmethod
    def from_payload(cls, payload: Mapping) -> "JournalRecord":
        data = dict(payload)
        rtype = data.pop("type", "")
        return cls(type=rtype, data=data)


def encode_record(payload: Mapping) -> bytes:
    """Frame one record payload (length-prefixed + checksummed)."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()
    return _FRAME.pack(len(body), zlib.crc32(body)) + body


@dataclass
class JournalScan:
    """The result of decoding a journal byte string.

    ``clean_bytes`` is the length of the longest prefix made of intact
    records; anything past it is a torn tail from a crash mid-append.
    """

    records: List[JournalRecord]
    clean_bytes: int
    total_bytes: int
    #: mid-journal records skipped over a CRC failure (quarantined:
    #: the frame length was intact and valid records follow, so one
    #: record was bit-rotted in place rather than the tail torn)
    skipped: int = 0

    @property
    def torn(self) -> bool:
        return self.clean_bytes < self.total_bytes

    @property
    def torn_bytes(self) -> int:
        return self.total_bytes - self.clean_bytes


def _frame_intact(data: bytes, offset: int) -> bool:
    """True when a complete, checksum-valid frame starts at *offset*."""
    total = len(data)
    if total - offset < _FRAME.size:
        return False
    length, crc = _FRAME.unpack_from(data, offset)
    start = offset + _FRAME.size
    end = start + length
    return end <= total and zlib.crc32(data[start:end]) == crc


def decode_journal(data: bytes) -> JournalScan:
    """Decode every intact record; stop (never raise) at a torn tail.

    A record whose checksum fails *mid*-journal — its declared length
    lands on another intact frame — is bit rot, not a tear: the bad
    record is quarantined (skipped, counted in ``skipped``) and the
    scan continues, so one flipped byte can never erase the intact
    suffix of the log.  Only damage with no valid continuation is
    treated as a torn tail.
    """
    records: List[JournalRecord] = []
    offset = 0
    skipped = 0
    total = len(data)
    while offset < total:
        if total - offset < _FRAME.size:
            break  # torn frame header
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            break  # torn payload
        body = data[start:end]
        payload = None
        if zlib.crc32(body) == crc:
            try:
                payload = json.loads(body.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = None  # checksummed garbage: a torn rewrite
        if payload is None:
            if end < total and _frame_intact(data, end):
                skipped += 1
                offset = end  # quarantine the rotten record, resync
                continue
            break  # no valid continuation: a genuine torn tail
        records.append(JournalRecord.from_payload(payload))
        offset = end
    return JournalScan(records, offset, total, skipped=skipped)


def read_journal(source) -> JournalScan:
    """Scan a journal from raw bytes or a storage backend."""
    if isinstance(source, (bytes, bytearray, memoryview)):
        return decode_journal(bytes(source))
    data = source.read() if source.exists() else b""
    return decode_journal(data)


class Journal:
    """An append-only record log over one storage backend."""

    def __init__(self, storage) -> None:
        self.storage = storage

    @property
    def location(self) -> str:
        return self.storage.location

    def append_payloads(self, payloads) -> int:
        """Append framed records for *payloads* in order; returns the
        bytes written (one storage append, so records from a single
        flush are contiguous)."""
        data = b"".join(encode_record(payload) for payload in payloads)
        if data:
            # injection site "journal.append": an OSError here is what
            # trips the persister's circuit breaker; a ``partial`` rule
            # lands its prefix first, leaving a genuinely torn tail for
            # the next scan to truncate; ``suppress`` models a lost
            # write (the flush claims success, nothing hit the medium)
            try:
                data = faults.fire("journal.append", data=data)
            except PartialWriteFault as fault:
                if fault.prefix:
                    self.storage.append(fault.prefix)
                raise
            if not data:
                return 0
            self.storage.append(data)
        return len(data)

    def scan(self) -> JournalScan:
        data = self.storage.read() if self.storage.exists() else b""
        # injection site "journal.read": bit rot on the read-back path
        # (exercises record quarantine / torn-tail truncation)
        data = faults.fire("journal.read", data=data)
        return decode_journal(data)

    def repair(self, scan: JournalScan = None) -> int:
        """Truncate a torn tail in place; returns the bytes dropped."""
        if scan is None:
            scan = self.scan()
        if scan.torn:
            self.storage.truncate(scan.clean_bytes)
        return scan.torn_bytes

    def reset(self) -> None:
        """Start a fresh epoch (called right after a snapshot commits:
        every journaled mutation is now folded into the snapshot)."""
        self.storage.truncate(0)

    def size(self) -> int:
        return self.storage.size()

    def __repr__(self) -> str:
        return f"Journal({self.location!r}, bytes={self.size()})"
