"""The versioned repository snapshot codec.

A snapshot is one self-validating byte string holding everything a
cold start needs to rebuild a :class:`~repro.core.repository.Repository`
in O(entries read) — **without re-registering a single plan**:

* every entry with its *derived* match metadata (whole-plan Merkle
  fingerprint, load-signature set, operator-signature multiset), so
  all three inverted indexes rebuild from recorded values instead of
  recomputing them from the plan graph;
* the incremental §3 subsumption order (scores, subsumption pairs,
  the sorted scan list, the pending set), so the first ordered scan
  after recovery pays zero matcher traversals;
* the entry-id and sequence counters, so post-recovery registrations
  can never collide with persisted ids;
* optionally the owning manager's kept-path set and eviction clock,
  and the DFS script/sub-job id floors.

Layout (version 2)::

    magic "RSNP" | version u8 | crc32 u32 | index_len u32 | body_len u32
    index (JSON) | cold blob (concatenated per-entry plan JSON)

Version 2 adds one entry-row column, ``input_extents`` (the per-input
identity/length fingerprints freshness classification compares).
Version-1 snapshots still load: their 15-element rows are recognised
by length and decode with empty extents, which the freshness layer
treats as legacy entries (any mtime movement classifies as
rewritten — conservative, never stale-serving).

Version 3 adds one *optional* top-level index key, ``payloads`` —
the block-store generation and the path → segment-ref table captured
at rotation time (see :mod:`repro.persistence.blockstore`).  The
entry rows are unchanged, so version-2 snapshots load as v3 with an
empty payload table (the recovery scrub treats their entries as
legacy: tolerated when the DFS already holds their bytes).

The CRC covers the whole body (index + cold blob): a half-written or
bit-rotted snapshot is rejected as a unit, never partially applied.
The *index* keeps each entry as a positional row of small scalars —
cheap to parse at 10k+ entries — while the serialized plan graph (the
bulk of the bytes) lives in the *cold blob*, referenced by offset.
Restored entries carry a :class:`LazyPlan` that serves fingerprints
and signatures from the recorded metadata and only parses + rebuilds
the real :class:`~repro.pig.physical.plan.PhysicalPlan` if a match
actually needs to traverse it.  That laziness is why cold start beats
rebuild-by-re-registration by an order of magnitude: most stored
plans are never looked at until they are genuine rewrite candidates.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.repository import EntryStats, Repository, RepositoryEntry
from repro.dfs.namenode import InputExtent
from repro.exceptions import ReproError
from repro.faults import injector as faults
from repro.pig.physical.plan import PhysicalPlan
from repro.relational.schema import Schema

SNAPSHOT_FORMAT = "restore-repo-snapshot"
SNAPSHOT_VERSION = 3

_MAGIC = b"RSNP"
#: magic, version, crc32(body), index length, total body length
_HEADER = struct.Struct(">4sBIII")

# positional entry-row columns, version 2 (order is part of the
# format; version-1 rows lack "input_extents" and are told apart by
# row length in _entry_from_row)
_COLUMNS = (
    "entry_id",
    "seq",
    "output_path",
    "anchor_kind",
    "created_at",
    "last_used_at",
    "use_count",
    "stats",  # [input_bytes, output_bytes, output_records, exec_time_s]
    "input_mtimes",
    "input_extents",  # {path: [mtime, generation, birth, size, crc]}
    "output_schema",
    "fingerprint",
    "load_sigs",
    "sig_counts",
    "cold_offset",  # plan JSON position in the cold blob
    "cold_length",
)


class SnapshotError(ReproError):
    """A snapshot could not be encoded, validated, or decoded."""


class LazyPlan:
    """A stand-in for a stored :class:`PhysicalPlan` that defers the
    graph rebuild until a match actually traverses it.

    Recovery needs every entry's fingerprint, load signatures, and
    signature multiset (they feed the inverted indexes and candidate
    pruning) but not the operator graph itself — Algorithm 1 only
    walks the plans of entries that survive pruning.  The proxy serves
    the recorded metadata instantly and materializes the real plan on
    first structural access, verifying that the rebuilt plan's
    fingerprint matches the recorded one (a mismatch means the
    snapshot and the plan codec disagree — corruption, not a cache
    miss).
    """

    __slots__ = ("_source", "_fingerprint", "_load_sigs", "_sig_counts", "_plan")

    def __init__(
        self,
        source,
        fingerprint: str,
        load_sigs: FrozenSet[str],
        sig_counts: Dict[str, int],
    ) -> None:
        #: plan dict, or a bytes-like JSON slice parsed on demand
        self._source = source
        self._fingerprint = fingerprint
        self._load_sigs = frozenset(load_sigs)
        self._sig_counts = dict(sig_counts)
        self._plan: Optional[PhysicalPlan] = None

    # -- the recorded metadata (no materialization) -------------------------------

    def fingerprint(self) -> str:
        return self._fingerprint

    def load_signature_set(self) -> FrozenSet[str]:
        return self._load_sigs

    def signature_counts(self) -> Dict[str, int]:
        return self._sig_counts

    def _plan_data(self) -> dict:
        if not isinstance(self._source, dict):
            try:
                self._source = json.loads(bytes(self._source).decode())
            except (UnicodeDecodeError, ValueError) as exc:
                raise SnapshotError(
                    f"stored plan {self._fingerprint!r} is not decodable "
                    f"JSON: {exc}"
                ) from exc
        return self._source

    def to_dict(self) -> dict:
        if self._plan is not None:
            return self._plan.to_dict()
        return self._plan_data()

    @property
    def materialized(self) -> bool:
        return self._plan is not None

    # -- everything else rebuilds the real plan -----------------------------------

    def materialize(self) -> PhysicalPlan:
        if self._plan is None:
            # injection site "snapshot.materialize": a fault here must
            # surface as a SnapshotError so the manager can quarantine
            # the entry instead of crashing the match scan
            try:
                faults.fire("snapshot.materialize")
            except OSError as exc:
                raise SnapshotError(
                    f"stored plan {self._fingerprint!r} unreadable: {exc}"
                ) from exc
            data = self._plan_data()
            try:
                plan = PhysicalPlan.from_dict(data)
            except SnapshotError:
                raise
            except Exception as exc:
                raise SnapshotError(
                    f"stored plan {self._fingerprint!r} failed to "
                    f"rebuild: {exc}"
                ) from exc
            rebuilt = plan.fingerprint()
            if rebuilt != self._fingerprint:
                raise SnapshotError(
                    "restored plan fingerprint mismatch: "
                    f"recorded {self._fingerprint!r}, rebuilt {rebuilt!r}"
                )
            self._plan = plan
        return self._plan

    def __getattr__(self, name: str):
        return getattr(self.materialize(), name)

    # dunders bypass __getattr__, so forward the ones PhysicalPlan has
    def __len__(self) -> int:
        return len(self.materialize())

    def __iter__(self):
        return iter(self.materialize())

    def __contains__(self, op) -> bool:
        return op in self.materialize()

    def __repr__(self) -> str:
        state = "materialized" if self._plan is not None else "lazy"
        return f"LazyPlan({self._fingerprint!r}, {state})"


def plan_derived(plan) -> dict:
    """The derived match metadata persisted alongside a plan."""
    return {
        "fingerprint": plan.fingerprint(),
        "load_sigs": sorted(plan.load_signature_set()),
        "sig_counts": dict(plan.signature_counts()),
    }


def entry_record(entry: RepositoryEntry) -> dict:
    """A self-contained dict form of *entry* (used by journal records;
    the snapshot index uses the positional row form instead)."""
    record = entry.to_dict()
    record["derived"] = plan_derived(entry.plan)
    return record


def entry_from_record(record: dict) -> RepositoryEntry:
    """Rebuild an entry from :func:`entry_record` output.

    With derived metadata present the plan comes back as a
    :class:`LazyPlan`; legacy records without it pay the eager
    :meth:`PhysicalPlan.from_dict` rebuild.
    """
    derived = record.get("derived")
    if derived is None:
        plan = PhysicalPlan.from_dict(record["plan"])
    else:
        plan = LazyPlan(
            record["plan"],
            derived["fingerprint"],
            frozenset(derived["load_sigs"]),
            {sig: int(n) for sig, n in derived["sig_counts"].items()},
        )
    stats = record.get("stats", {})
    return RepositoryEntry(
        plan=plan,
        output_path=record["output_path"],
        output_schema=Schema.from_dict(record["output_schema"]),
        stats=EntryStats(
            input_bytes=stats.get("input_bytes", 0),
            output_bytes=stats.get("output_bytes", 0),
            output_records=stats.get("output_records", 0),
            exec_time_s=stats.get("exec_time_s", 0.0),
        ),
        anchor_kind=record.get("anchor_kind", "whole-job"),
        created_at=record.get("created_at", 0),
        last_used_at=record.get("last_used_at", 0),
        use_count=record.get("use_count", 0),
        input_mtimes=dict(record.get("input_mtimes", {})),
        input_extents={
            path: InputExtent.from_list(extent)
            for path, extent in record.get("input_extents", {}).items()
        },
        entry_id=record.get("entry_id", ""),
    )


def _entry_row(
    entry: RepositoryEntry, seq: int, cold_offset: int, cold_length: int
) -> list:
    derived = plan_derived(entry.plan)
    stats = entry.stats
    return [
        entry.entry_id,
        seq,
        entry.output_path,
        entry.anchor_kind,
        entry.created_at,
        entry.last_used_at,
        entry.use_count,
        [
            stats.input_bytes,
            stats.output_bytes,
            stats.output_records,
            stats.exec_time_s,
        ],
        entry.input_mtimes,
        {
            path: extent.to_list()
            for path, extent in entry.input_extents.items()
        },
        entry.output_schema.to_dict(),
        derived["fingerprint"],
        derived["load_sigs"],
        derived["sig_counts"],
        cold_offset,
        cold_length,
    ]


def _entry_from_row(row: list, blob: memoryview) -> Tuple[RepositoryEntry, int]:
    if len(row) == len(_COLUMNS) - 1:
        # version-1 row: splice in an empty input_extents column, which
        # downgrades the entry to legacy (mtime-only) freshness checks
        row = row[:9] + [{}] + row[9:]
    (
        entry_id,
        seq,
        output_path,
        anchor_kind,
        created_at,
        last_used_at,
        use_count,
        stats,
        input_mtimes,
        input_extents,
        schema,
        fingerprint,
        load_sigs,
        sig_counts,
        cold_offset,
        cold_length,
    ) = row
    plan = LazyPlan(
        blob[cold_offset : cold_offset + cold_length],
        fingerprint,
        frozenset(load_sigs),
        sig_counts,
    )
    entry = RepositoryEntry(
        plan=plan,
        output_path=output_path,
        output_schema=Schema.from_dict(schema),
        stats=EntryStats(stats[0], stats[1], stats[2], stats[3]),
        anchor_kind=anchor_kind,
        created_at=created_at,
        last_used_at=last_used_at,
        use_count=use_count,
        input_mtimes=input_mtimes,
        input_extents={
            path: InputExtent.from_list(extent)
            for path, extent in input_extents.items()
        },
        entry_id=entry_id,
    )
    return entry, seq


class RepositorySnapshot:
    """One decoded (or freshly captured) repository snapshot.

    ``payload`` is the index dict; entry plan graphs live in the
    ``cold`` blob and are referenced by offset from each entry row.
    """

    def __init__(self, payload: dict, cold: bytes = b"") -> None:
        if payload.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotError(
                f"not a repository snapshot: format={payload.get('format')!r}"
            )
        version = payload.get("version")
        if not isinstance(version, int) or version < 1:
            raise SnapshotError(f"bad snapshot version: {version!r}")
        if version > SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version} is newer than this reader "
                f"(max {SNAPSHOT_VERSION})"
            )
        self.payload = payload
        self.cold = cold

    # -- capture ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        repository: Repository,
        *,
        kept_paths=None,
        clock: Optional[int] = None,
        dfs_ids: Optional[dict] = None,
        payloads: Optional[dict] = None,
    ) -> "RepositorySnapshot":
        """A point-in-time snapshot of *repository* (and optionally the
        manager/DFS state that travels with it), taken atomically
        under the repository lock."""
        with repository.locked():
            state = repository.snapshot_state()
            entries = repository.entries()
            seq = state.pop("seq")
            rows: List[list] = []
            blob = bytearray()
            for entry in entries:
                body = json.dumps(
                    entry.plan.to_dict(), separators=(",", ":")
                ).encode()
                rows.append(
                    _entry_row(entry, seq[entry.entry_id], len(blob), len(body))
                )
                blob.extend(body)
        state["entries"] = rows
        payload = {
            "format": SNAPSHOT_FORMAT,
            "version": SNAPSHOT_VERSION,
            "repository": state,
        }
        if kept_paths is not None or clock is not None:
            payload["manager"] = {
                "kept_paths": sorted(kept_paths or ()),
                "clock": int(clock or 0),
            }
        if dfs_ids:
            payload["dfs"] = dict(dfs_ids)
        if payloads is not None:
            # {"gen": N, "refs": {path: [gen, offset, length, crc]}} —
            # the block-store table the recovery scrub verifies against
            payload["payloads"] = payloads
        return cls(payload, bytes(blob))

    # -- codec --------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        index = json.dumps(self.payload, separators=(",", ":")).encode()
        body = index + self.cold
        header = _HEADER.pack(
            _MAGIC, SNAPSHOT_VERSION, zlib.crc32(body), len(index), len(body)
        )
        return header + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "RepositorySnapshot":
        if len(data) < _HEADER.size:
            raise SnapshotError("snapshot truncated: header incomplete")
        magic, version, crc, index_len, body_len = _HEADER.unpack_from(data)
        if magic != _MAGIC:
            raise SnapshotError(f"bad snapshot magic: {magic!r}")
        if version > SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version} is newer than this reader"
            )
        body = data[_HEADER.size : _HEADER.size + body_len]
        if len(body) != body_len or index_len > body_len:
            raise SnapshotError("snapshot truncated: body incomplete")
        if zlib.crc32(body) != crc:
            raise SnapshotError("snapshot checksum mismatch")
        payload = json.loads(body[:index_len].decode())
        return cls(payload, bytes(body[index_len:]))

    # -- views --------------------------------------------------------------------

    @property
    def repository_state(self) -> dict:
        return self.payload.get("repository", {})

    @property
    def entry_rows(self) -> list:
        return self.repository_state.get("entries", [])

    @property
    def manager_state(self) -> dict:
        return self.payload.get("manager", {})

    @property
    def dfs_state(self) -> dict:
        return self.payload.get("dfs", {})

    @property
    def payload_state(self) -> dict:
        """The block-store table (empty for pre-v3 snapshots)."""
        return self.payload.get("payloads", {})

    def __len__(self) -> int:
        return len(self.entry_rows)

    # -- restore ------------------------------------------------------------------

    def restore_repository(
        self, *, matcher=None, n_shards: Optional[int] = None
    ) -> Repository:
        """Rebuild the repository: every inverted index and the full §3
        order, in one pass over the recorded rows."""
        state = dict(self.repository_state)
        rows = state.pop("entries", [])
        blob = memoryview(self.cold)
        entries: List[RepositoryEntry] = []
        seqs: Dict[str, int] = {}
        for row in rows:
            entry, seq = _entry_from_row(row, blob)
            entries.append(entry)
            seqs[entry.entry_id] = seq
        return Repository.from_persisted_state(
            entries, seqs, state, matcher=matcher, n_shards=n_shards
        )

    def __repr__(self) -> str:
        return (
            f"RepositorySnapshot(entries={len(self)}, "
            f"cold_bytes={len(self.cold)})"
        )
