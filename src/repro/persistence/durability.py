"""Live durability wiring: the persister, replay, and crash recovery.

:class:`RepositoryPersister` attaches to a running
:class:`~repro.core.manager.ReStoreManager` and journals every
repository mutation as it commits (entry add/evict via the
repository's mutation listeners, reuse statistics via the manager
bus, kept-path commits via manager hooks), rotating snapshots at a
configurable interval.  :func:`recover` is the other half: load the
snapshot, replay the clean journal prefix, truncate any torn tail,
and push the restored id floors back into the DFS so nothing ever
collides with persisted state.

Crash-safety argument, in one place:

* the journal is written *before* the crash window matters — default
  ``flush_every=1`` is write-through, so a mutation is durable the
  moment the repository lock that committed it is released;
* a snapshot commits (capture + write + journal reset) while holding
  the manager and repository locks, so no mutation can fall between
  "folded into the snapshot" and "journaled for replay";
* a crash *between* snapshot write and journal reset merely leaves
  already-folded records in the journal — replay is idempotent (a
  same-id re-add replaces and re-integrates to the identical order,
  a remove of a missing entry is a no-op, usage stats and counter
  floors merge by max), so applying them twice equals applying them
  once;
* entry payloads are appended to the block store *before* the
  ``entry_added`` record is journaled, and the post-recovery scrub
  (:class:`_PayloadScrub`) refuses to serve any entry whose payload
  segment is missing, corrupt, or length-drifted — the metadata may
  over-promise after a torn write, but recovery can never over-serve.
"""

from __future__ import annotations

import re
import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.repository import Repository
from repro.events import (
    EntryQuarantined,
    EventBus,
    JobEliminated,
    JournalAppended,
    PersistenceDegraded,
    PersistenceRecovered,
    RewriteApplied,
    SnapshotTaken,
)
from repro.faults import injector as faults
from repro.persistence.blockstore import (
    BlockScan,
    BlockStore,
    BlockStoreError,
    SegmentRef,
    verify_ref,
)
from repro.persistence.journal import Journal, JournalRecord
from repro.persistence.snapshot import (
    RepositorySnapshot,
    entry_from_record,
    entry_record,
)
from repro.persistence.storage import DFSStorage, LocalStorage


@dataclass
class PersistenceConfig:
    """Where and how repository state is persisted.

    The default backend is the simulated DFS (repository metadata is
    just another replicated file on the cluster it indexes, as in the
    paper's deployment); ``backend="local"`` writes real files so the
    CLI can carry state across process invocations.
    """

    snapshot_path: str = "restore/repository.snapshot"
    journal_path: str = "restore/repository.journal"
    #: "dfs" or "local"
    backend: str = "dfs"
    #: journal records between automatic snapshot rotations
    #: (0 = snapshot only when explicitly requested)
    snapshot_interval: int = 0
    #: seconds between timer-driven rotations under a live service
    #: (0 = no timer; rotation still happens at workflow boundaries
    #: via ``snapshot_interval``); a timer rotation that fails aborts
    #: without touching the journal, like any other rotation
    snapshot_interval_s: float = 0.0
    #: base path of the payload block store (generation files append
    #: ``.g<N>``); defaults to ``snapshot_path + ".blocks"``
    blockstore_path: Optional[str] = None
    #: buffered records per journal write; 1 (default) is write-through
    flush_every: int = 1
    #: circuit breaker: while journal writes are failing, only every
    #: N-th flush attempt probes storage again (the rest buffer in
    #: memory instantly instead of eating an I/O error each)
    probe_every: int = 3

    @property
    def blockstore_base(self) -> str:
        return self.blockstore_path or self.snapshot_path + ".blocks"

    def blockstore_file(self, gen: int) -> str:
        return f"{self.blockstore_base}.g{gen}"

    def _storage(self, path: str, dfs):
        if self.backend == "local":
            return LocalStorage(path)
        if self.backend != "dfs":
            raise ValueError(f"unknown persistence backend: {self.backend!r}")
        if dfs is None:
            raise ValueError("the 'dfs' persistence backend needs a filesystem")
        return DFSStorage(dfs, path)

    def snapshot_storage(self, dfs=None):
        return self._storage(self.snapshot_path, dfs)

    def journal_storage(self, dfs=None):
        return self._storage(self.journal_path, dfs)

    def blockstore_storage(self, dfs=None, gen: int = 0):
        return self._storage(self.blockstore_file(gen), dfs)


@dataclass
class RecoveredState:
    """Everything :func:`recover` (or a standby promotion) hands back."""

    repository: Repository
    kept_paths: Set[str] = field(default_factory=set)
    clock: int = 0
    #: DFS id floors ({"next_script_id": ..., "next_subjob_id": ...})
    id_floors: Dict[str, int] = field(default_factory=dict)
    #: entries that came from the snapshot itself
    snapshot_entries: int = 0
    #: clean journal records replayed on top
    journal_records: int = 0
    #: bytes of torn journal tail truncated (0 = clean shutdown)
    journal_torn_bytes: int = 0
    #: mid-journal records quarantined for failing their checksum
    journal_skipped: int = 0
    #: path → raw segment ref ([gen, offset, length, crc]) for every
    #: payload the scrub verified (the persister resumes dedup from
    #: these)
    payload_refs: Dict[str, list] = field(default_factory=dict)
    #: block-store generation new appends continue into
    blockstore_gen: int = 0
    #: payloads written back into the DFS from the block store
    payloads_restored: int = 0
    #: (entry_id, output_path, reason) per entry the scrub condemned —
    #: already removed from the repository and journaled as
    #: ``entry_quarantined``; the caller emits the events
    payloads_condemned: List[Tuple[str, str, str]] = field(default_factory=list)
    #: kept paths the scrub dropped (bytes unrecoverable)
    kept_paths_condemned: List[str] = field(default_factory=list)
    #: entries tolerated without a payload ref (pre-block-store state
    #: whose output bytes were still present, or no DFS to check)
    payloads_legacy: int = 0


class ReplayTarget:
    """Mutable state a journal replay folds records into.

    Used by crash recovery and by the standby replica; both need the
    same semantics, so they live in one place.  Replay is idempotent:
    every handler is a no-op or a max-merge when its effect is already
    present.
    """

    def __init__(
        self,
        repository: Repository,
        kept_paths=None,
        clock: int = 0,
        id_floors: Optional[Dict[str, int]] = None,
        payloads: Optional[dict] = None,
    ) -> None:
        self.repository = repository
        self.kept_paths: Set[str] = set(kept_paths or ())
        self.clock = int(clock)
        self.id_floors: Dict[str, int] = {"next_script_id": 1, "next_subjob_id": 1}
        for key, value in (id_floors or {}).items():
            self.id_floors[key] = max(self.id_floors.get(key, 1), int(value))
        #: path → raw block-store segment ref; seeded from the
        #: snapshot's payload table, extended by ``payload_stored``
        #: journal records
        payloads = payloads or {}
        self.payload_refs: Dict[str, list] = {
            path: list(ref) for path, ref in payloads.get("refs", {}).items()
        }
        self.payload_gen = int(payloads.get("gen", 0))

    def apply(self, record: JournalRecord) -> None:
        data = record.data
        if record.type == "entry_added":
            self.repository.add(entry_from_record(data["entry"]))
        elif record.type == "entry_refreshed":
            # delta merge: the record carries the entry's full
            # post-refresh state; a same-id add replaces in place
            # (idempotent on replay, no-op ordering hazards)
            self.repository.add(entry_from_record(data["entry"]))
        elif record.type in ("entry_removed", "entry_quarantined"):
            # quarantine is an eviction with a recorded reason: replay
            # treats both as an idempotent remove
            entry_id = data["entry_id"]
            if self.repository.has_entry(entry_id):
                self.repository.remove(entry_id)
        elif record.type == "entry_used":
            entry_id = data["entry_id"]
            if self.repository.has_entry(entry_id):
                entry = self.repository.get(entry_id)
                entry.use_count = max(entry.use_count, data.get("use_count", 0))
                entry.last_used_at = max(
                    entry.last_used_at, data.get("last_used_at", 0)
                )
            self.clock = max(self.clock, data.get("clock", 0))
        elif record.type == "kept_path_added":
            self.kept_paths.add(data["path"])
        elif record.type == "kept_path_removed":
            self.kept_paths.discard(data["path"])
        elif record.type == "payload_stored":
            # a later ref for the same path supersedes (refresh /
            # re-capture); replaying twice lands on the same ref
            self.payload_refs[data["path"]] = list(data["ref"])
            self.payload_gen = max(self.payload_gen, int(data["ref"][0]))
        elif record.type == "counters":
            for key in ("next_script_id", "next_subjob_id"):
                if key in data:
                    self.id_floors[key] = max(self.id_floors[key], int(data[key]))
            self.clock = max(self.clock, data.get("clock", 0))
        # unknown types: skipped (journals from newer writers)

    def apply_all(self, records) -> int:
        count = 0
        for record in records:
            self.apply(record)
            count += 1
        return count


#: id-bearing paths a repository entry can reference: enumerator
#: sub-job outputs and script-scoped temp outputs
_SUBJOB_PATH = re.compile(r"(?:^|/)sj(\d+)$")
_SCRIPT_PREFIX = re.compile(r"^tmp/s(\d+)(?:/|$)")


def derive_id_floors(repository: Repository) -> Dict[str, int]:
    """Id floors recoverable from restored entry paths alone — the
    belt-and-braces path when no ``counters`` record survived the
    crash (the floors only ever max-merge, so over-approximating from
    paths is always safe)."""
    script, subjob = 0, 0
    for entry in repository.entries():
        match = _SUBJOB_PATH.search(entry.output_path)
        if match:
            subjob = max(subjob, int(match.group(1)))
        match = _SCRIPT_PREFIX.match(entry.output_path)
        if match:
            script = max(script, int(match.group(1)))
    return {"next_script_id": script + 1, "next_subjob_id": subjob + 1}


#: sentinel distinguishing "no ref recorded" from "ref malformed"
_NO_REF = object()


class _PayloadScrub:
    """The post-recovery payload integrity pass.

    Every restored entry (and kept path) is checked against the block
    store before it can ever be served:

    * a recorded ref whose segment is missing, checksum-mismatched, or
      length-drifted **condemns** the entry — removed from the
      repository, journaled as ``entry_quarantined`` so the decision
      replays idempotently, surfaced for the caller to emit
      :class:`~repro.events.EntryQuarantined`;
    * an intact ref restores its bytes into the DFS when the file is
      absent (the warm-start path: payloads come back natively);
    * an entry with **no** ref is legacy (pre-block-store state): it
      is tolerated when its output bytes are already present — or when
      there is no DFS to check against — and condemned when a DFS is
      given and the bytes are gone, which is exactly the stale-output
      hazard the scrub exists to close.
    """

    def __init__(self, config: PersistenceConfig, dfs, journal: Journal):
        self.config = config
        self.dfs = dfs
        self.journal = journal
        self.restored = 0
        self.legacy = 0
        self.condemned: List[Tuple[str, str, str]] = []
        self.kept_condemned: List[str] = []
        self._scans: Dict[int, BlockScan] = {}

    def _scan_gen(self, gen: int) -> BlockScan:
        scan = self._scans.get(gen)
        if scan is None:
            store = BlockStore(self.config.blockstore_storage(self.dfs, gen), gen)
            scan = store.scan()
            if scan.torn:
                try:
                    store.repair(scan)
                except OSError:
                    pass  # repair is advisory; the scan already excludes the tear
            self._scans[gen] = scan
        return scan

    def _check(self, path: str, refs: Dict[str, list]):
        """``(ok, payload_or_None, reason)`` for one referenced path."""
        raw = refs.get(path, _NO_REF)
        if raw is _NO_REF:
            if self.dfs is None or self.dfs.exists(path):
                self.legacy += 1
                return True, None, ""
            return False, None, "no payload segment recorded and output bytes missing"
        try:
            ref = SegmentRef.from_list(raw)
        except (BlockStoreError, TypeError, ValueError):
            return False, None, f"malformed payload segment ref {raw!r}"
        payload = verify_ref(self._scan_gen(ref.gen), ref, path)
        if payload is None:
            return (
                False,
                None,
                f"payload segment missing or corrupt "
                f"(gen {ref.gen}, offset {ref.offset})",
            )
        return True, payload, ""

    def run(self, target: ReplayTarget) -> None:
        refs = target.payload_refs
        for entry in list(target.repository.entries()):
            ok, payload, reason = self._check(entry.output_path, refs)
            if not ok:
                self.condemned.append((entry.entry_id, entry.output_path, reason))
                continue
            self._restore(entry.output_path, payload)
        for path in sorted(target.kept_paths):
            ok, payload, _ = self._check(path, refs)
            if not ok:
                self.kept_condemned.append(path)
                continue
            self._restore(path, payload)
        for entry_id, path, _ in self.condemned:
            if target.repository.has_entry(entry_id):
                target.repository.remove(entry_id)
            refs.pop(path, None)
        for path in self.kept_condemned:
            target.kept_paths.discard(path)
            refs.pop(path, None)
        self._journal_condemnations()

    def _restore(self, path: str, payload: Optional[bytes]) -> None:
        if payload is None or self.dfs is None or self.dfs.exists(path):
            return
        self.dfs.write_file(path, payload)
        self.restored += 1

    def _journal_condemnations(self) -> None:
        """Make the scrub's verdicts durable: an ``entry_quarantined``
        replays as an idempotent remove, so the next recovery reaches
        the same state without re-deriving it — and a degraded journal
        merely defers that (the scrub re-derives identically)."""
        records = [
            {
                "type": "entry_quarantined",
                "entry_id": entry_id,
                "reason": f"payload-scrub: {reason}",
            }
            for entry_id, _, reason in self.condemned
        ]
        records.extend(
            {"type": "kept_path_removed", "path": path}
            for path in self.kept_condemned
        )
        if not records:
            return
        try:
            self.journal.append_payloads(records)
        except OSError:
            pass


def recover(
    config: PersistenceConfig, dfs=None, *, matcher=None
) -> RecoveredState:
    """Rebuild repository + manager state from snapshot and journal.

    Loads the snapshot (if any), replays every intact journal record
    on top, truncates a torn tail in place, scrubs every restored
    entry's payload against the block store (see :class:`_PayloadScrub`
    — intact bytes are written back into *dfs*, condemned entries are
    removed and journaled), and derives/merges the id and clock
    floors.  When *dfs* is given the id floors are pushed into it
    immediately via :meth:`ensure_id_floor`.
    """
    snapshot_storage = config.snapshot_storage(dfs)
    journal = Journal(config.journal_storage(dfs))
    snapshot_entries = 0
    if snapshot_storage.exists() and snapshot_storage.size() > 0:
        # injection site "snapshot.read": corruption here must surface
        # as a SnapshotError, never as silent partial state
        data = faults.fire("snapshot.read", data=snapshot_storage.read())
        snapshot = RepositorySnapshot.from_bytes(data)
        repository = snapshot.restore_repository(matcher=matcher)
        snapshot_entries = len(snapshot)
        manager_state = snapshot.manager_state
        target = ReplayTarget(
            repository,
            kept_paths=manager_state.get("kept_paths", ()),
            clock=manager_state.get("clock", 0),
            id_floors=snapshot.dfs_state,
            payloads=snapshot.payload_state,
        )
    else:
        target = ReplayTarget(Repository(matcher=matcher))
    scan = journal.scan()
    replayed = target.apply_all(scan.records)
    if scan.torn:
        journal.repair(scan)
    scrub = _PayloadScrub(config, dfs, journal)
    scrub.run(target)
    for key, value in derive_id_floors(target.repository).items():
        target.id_floors[key] = max(target.id_floors.get(key, 1), value)
    for entry in target.repository.entries():
        target.clock = max(target.clock, entry.created_at, entry.last_used_at)
    if dfs is not None:
        dfs.ensure_id_floor(**target.id_floors)
    blockstore_gen = target.payload_gen
    for raw in target.payload_refs.values():
        blockstore_gen = max(blockstore_gen, int(raw[0]))
    return RecoveredState(
        repository=target.repository,
        kept_paths=target.kept_paths,
        clock=target.clock,
        id_floors=target.id_floors,
        snapshot_entries=snapshot_entries,
        journal_records=replayed,
        journal_torn_bytes=scan.torn_bytes,
        journal_skipped=scan.skipped,
        payload_refs=dict(target.payload_refs),
        blockstore_gen=blockstore_gen,
        payloads_restored=scrub.restored,
        payloads_condemned=scrub.condemned,
        kept_paths_condemned=scrub.kept_condemned,
        payloads_legacy=scrub.legacy,
    )


def announce_scrub_condemnations(manager, recovered: RecoveredState) -> None:
    """Surface the recovery scrub's verdicts on a live manager.

    The repository removals and ``entry_quarantined`` journal records
    already happened inside :func:`recover`; this bumps the manager's
    quarantine counter and emits one
    :class:`~repro.events.EntryQuarantined` per condemned entry so
    operators and the service stats see them like any match-time
    quarantine.
    """
    if not recovered.payloads_condemned:
        return
    with manager.locked():
        manager.quarantine_count += len(recovered.payloads_condemned)
    for entry_id, output_path, reason in recovered.payloads_condemned:
        manager.events.emit(
            EntryQuarantined(
                entry_id=entry_id,
                output_path=output_path,
                reason=f"payload-scrub: {reason}",
            )
        )


class RepositoryPersister:
    """Journals live mutations and rotates snapshots for one manager.

    Wiring (all detachable via :meth:`close`):

    * repository mutation listeners — ``entry_added``/``entry_removed``
      records are built *under the repository lock* (correctness over
      cost: the entry cannot change or vanish mid-serialization) and
      buffered; with the default write-through config the buffer
      drains to storage before the mutating call returns;
    * the manager bus — ``RewriteApplied``/``JobEliminated`` update an
      entry's reuse statistics, journaled as ``entry_used`` records
      (max-merged on replay);
    * manager hooks — kept-path commits journal inline, and workflow
      boundaries flush + write a ``counters`` record when the DFS id
      state or clock moved + rotate the snapshot when the configured
      interval has elapsed.

    Lock order: manager → repository → buffer → io → dfs.  The
    persister's own :class:`EventBus` (``events``) carries
    :class:`JournalAppended`/:class:`SnapshotTaken` so standby
    replicas never touch the manager bus.
    """

    def __init__(
        self,
        manager,
        config: PersistenceConfig,
        *,
        dfs=None,
        recovered: Optional[RecoveredState] = None,
    ) -> None:
        self.manager = manager
        self.repository = manager.repository
        self.config = config
        self.dfs = dfs if dfs is not None else manager.dfs
        #: persister-scoped bus: JournalAppended / SnapshotTaken
        self.events = EventBus()
        self.snapshot_storage = config.snapshot_storage(self.dfs)
        self.journal = Journal(config.journal_storage(self.dfs))
        #: payload block store; *recovered* (from :func:`recover` or a
        #: standby promotion) resumes the generation and the ref table
        #: so unchanged payloads are not re-appended
        gen = recovered.blockstore_gen if recovered is not None else 0
        self.blockstore = BlockStore(
            config.blockstore_storage(self.dfs, gen), gen
        )
        self._payload_refs: Dict[str, SegmentRef] = {}
        if recovered is not None:
            for path, raw in recovered.payload_refs.items():
                try:
                    self._payload_refs[path] = SegmentRef.from_list(raw)
                except (BlockStoreError, TypeError, ValueError):
                    continue
        self._buffer: List[dict] = []
        self._buffer_lock = threading.Lock()
        #: serializes journal writes so flushed batches stay in order
        self._io_lock = threading.Lock()
        #: records drained from the buffer but not yet durably written
        #: (non-empty only while the circuit breaker is open)
        self._backlog: List[dict] = []
        #: circuit breaker over journal/snapshot writes: open = storage
        #: is failing, records accumulate in ``_backlog`` and only
        #: every ``probe_every``-th flush attempt touches storage
        self._breaker_open = False
        self._breaker_failures = 0
        self._probe_countdown = 0
        self.breaker_trips = 0
        self.breaker_recoveries = 0
        self._records_since_snapshot = 0
        self._last_counters: Optional[dict] = None
        self._closed = False
        self._unsubscribes = [
            self.repository.subscribe_mutations(self._on_mutation),
            self.manager.events.subscribe(
                self._on_usage, event_types=(RewriteApplied, JobEliminated)
            ),
        ]
        manager.persistence = self
        #: timer-driven rotation (satellite of the payload-durability
        #: work): a daemon thread rotates the snapshot every
        #: ``snapshot_interval_s`` seconds of wall clock while records
        #: have accumulated, so a service that never reaches a workflow
        #: boundary still bounds its replay window
        self._timer_stop = threading.Event()
        self._timer: Optional[threading.Thread] = None
        if config.snapshot_interval_s > 0:
            self._timer = threading.Thread(
                target=self._timer_loop,
                name="persister-snapshot-timer",
                daemon=True,
            )
            self._timer.start()

    def _timer_loop(self) -> None:
        while not self._timer_stop.wait(self.config.snapshot_interval_s):
            if self._closed:
                break
            try:
                if self._records_since_snapshot > 0:
                    self.take_snapshot()
            except Exception:
                # rotation failures already report via the breaker /
                # events; the timer itself must never die of one
                continue

    # -- record sources -----------------------------------------------------------

    def _on_mutation(self, kind: str, entry) -> None:
        if kind == "added":
            self._capture_payload(entry.output_path)
            payload = {"type": "entry_added", "entry": entry_record(entry)}
        elif kind == "refreshed":
            # the full post-refresh entry state (extents, stats):
            # replay re-adds it over the original entry_added record;
            # re-capture first — refreshed outputs may hold new bytes
            self._capture_payload(entry.output_path)
            payload = {"type": "entry_refreshed", "entry": entry_record(entry)}
        elif kind == "removed":
            payload = {"type": "entry_removed", "entry_id": entry.entry_id}
        else:
            return
        self._enqueue(payload)

    def _capture_payload(self, path: str) -> None:
        """Persist *path*'s DFS bytes into the block store and journal
        the segment ref, best-effort.

        A failure here (storage error, file not yet written) leaves
        the entry's metadata journaled without a usable ref — the
        recovery scrub then refuses to serve it instead of serving
        stale or missing bytes, so skipping is always safe.  Unchanged
        bytes (same crc32 as the recorded ref) are not re-appended.
        """
        if self._closed or self.dfs is None:
            return
        try:
            if not self.dfs.exists(path):
                return
            data = self.dfs.read_file(path)
        except OSError:
            return
        existing = self._payload_refs.get(path)
        if existing is not None and existing.crc == zlib.crc32(data):
            return
        try:
            ref = self.blockstore.append(path, data)
        except OSError:
            return
        self._payload_refs[path] = ref
        self._enqueue(
            {"type": "payload_stored", "path": path, "ref": ref.to_list()}
        )

    def _on_usage(self, event) -> None:
        entry_id = event.entry_id
        if not entry_id or not self.repository.has_entry(entry_id):
            return
        entry = self.repository.get(entry_id)
        self._enqueue(
            {
                "type": "entry_used",
                "entry_id": entry_id,
                "use_count": entry.use_count,
                "last_used_at": entry.last_used_at,
                "clock": self.manager.clock,
            }
        )

    def note_quarantine(self, entry_id: str, reason: str) -> None:
        """Called by the manager (under its lock) when an entry is
        quarantined for corruption; replayed as an idempotent remove."""
        self._enqueue(
            {
                "type": "entry_quarantined",
                "entry_id": entry_id,
                "reason": reason,
            }
        )

    def note_kept_path(self, path: str, added: bool) -> None:
        """Called by the manager (under its lock) when a stored output
        enters or leaves the kept-path set."""
        if added:
            self._capture_payload(path)
        self._enqueue(
            {
                "type": "kept_path_added" if added else "kept_path_removed",
                "path": path,
            }
        )

    def note_workflow_end(self) -> None:
        """Workflow boundary: persist moved counters, drain the buffer,
        rotate the snapshot if the interval has elapsed."""
        self._journal_counters_if_moved()
        self.flush()
        self.maybe_snapshot()

    def _journal_counters_if_moved(self) -> None:
        counters = dict(self.dfs.id_state())
        counters["clock"] = self.manager.clock
        if counters != self._last_counters:
            self._last_counters = counters
            self._enqueue({"type": "counters", **counters})

    # -- writing ------------------------------------------------------------------

    def _enqueue(self, payload: dict) -> None:
        if self._closed:
            return
        with self._buffer_lock:
            self._buffer.append(payload)
            due = len(self._buffer) >= max(1, self.config.flush_every)
        if due:
            self.flush()

    def flush(self, *, force: bool = False) -> int:
        """Write pending records to the journal; returns the number of
        records durably written.

        Storage failures open the circuit breaker instead of
        propagating: the records stay staged in ``_backlog`` (nothing
        is lost from the in-memory view), a
        :class:`PersistenceDegraded` event announces the degraded mode,
        and while open only every ``probe_every``-th flush attempt
        probes storage again (*force* bypasses the gating — used on
        close).  The first successful probe drains the whole backlog in
        order and emits :class:`PersistenceRecovered`.
        """
        pending: List = []
        written = 0
        with self._io_lock:
            with self._buffer_lock:
                if self._buffer:
                    self._backlog.extend(self._buffer)
                    self._buffer = []
            if not self._backlog:
                return 0
            if self._breaker_open and not force:
                self._probe_countdown -= 1
                if self._probe_countdown > 0:
                    return 0  # buffered in memory; not yet time to probe
                self._probe_countdown = max(1, self.config.probe_every)
            batch = list(self._backlog)
            try:
                nbytes = self.journal.append_payloads(batch)
            except OSError as exc:
                self._breaker_failures += 1
                if not self._breaker_open:
                    self._breaker_open = True
                    self.breaker_trips += 1
                    self._probe_countdown = max(1, self.config.probe_every)
                    pending.append(
                        PersistenceDegraded(
                            path=self.journal.location,
                            error=str(exc),
                            buffered=len(batch),
                        )
                    )
            else:
                self._backlog.clear()
                self._records_since_snapshot += len(batch)
                written = len(batch)
                if self._breaker_open:
                    self._breaker_open = False
                    self.breaker_recoveries += 1
                    pending.append(
                        PersistenceRecovered(
                            path=self.journal.location,
                            flushed=len(batch),
                            failures=self._breaker_failures,
                        )
                    )
                    self._breaker_failures = 0
                pending.append(
                    JournalAppended(
                        path=self.journal.location,
                        records=len(batch),
                        bytes=nbytes,
                    )
                )
        for event in pending:  # emitted outside the io lock
            self.events.emit(event)
        return written

    @property
    def breaker_open(self) -> bool:
        return self._breaker_open

    @property
    def buffered_records(self) -> int:
        """Records staged in memory but not yet durably journaled."""
        with self._buffer_lock:
            return len(self._buffer) + len(self._backlog)

    @property
    def records_since_snapshot(self) -> int:
        return self._records_since_snapshot

    def maybe_snapshot(self) -> bool:
        interval = self.config.snapshot_interval
        if interval > 0 and self._records_since_snapshot >= interval:
            self.take_snapshot()
            return True
        return False

    def take_snapshot(self) -> Optional[SnapshotTaken]:
        """Capture + write a snapshot and reset the journal, atomically
        with respect to mutations (manager and repository locks held
        through the whole rotation).

        The rotation also *compacts the block store*: every live
        payload (entry outputs + kept paths still holding DFS bytes)
        is re-appended into generation ``gen+1``, the snapshot records
        the fresh ref table, and superseded generation files are
        deleted only after the journal reset committed — so at every
        crash point all referenced segments are still on disk.

        A crash after the snapshot write but before the reset leaves
        already-folded records in the journal; replay is idempotent,
        so the next recovery converges to the same state.

        A storage failure (including a partial write torn into the
        new generation) aborts the rotation *without* touching the
        journal, the staged records, or the live ref table (nothing
        folded, nothing lost), trips the circuit breaker, and returns
        ``None``; the half-written generation file is debris the next
        rotation truncates.
        """
        pending: List = []
        event: Optional[SnapshotTaken] = None
        with self.manager.locked():
            with self.repository.locked():
                live = {
                    entry.output_path for entry in self.repository.entries()
                }
                live.update(self.manager.kept_paths)
                new_gen = self.blockstore.gen + 1
                new_store = BlockStore(
                    self.config.blockstore_storage(self.dfs, new_gen), new_gen
                )
                new_refs: Dict[str, SegmentRef] = {}
                with self._io_lock:
                    try:
                        if new_store.storage.exists():
                            # debris from an earlier aborted rotation
                            new_store.storage.truncate(0)
                        for path in sorted(live):
                            if self.dfs is None or not self.dfs.exists(path):
                                continue  # nothing durable to carry over
                            new_refs[path] = new_store.append(
                                path, self.dfs.read_file(path)
                            )
                        snapshot = RepositorySnapshot.capture(
                            self.repository,
                            kept_paths=self.manager.kept_paths,
                            clock=self.manager.clock,
                            dfs_ids=self.dfs.id_state(),
                            payloads={
                                "gen": new_gen,
                                "refs": {
                                    path: ref.to_list()
                                    for path, ref in new_refs.items()
                                },
                            },
                        )
                        data = snapshot.to_bytes()
                        # injection site "snapshot.write": rotation I/O
                        faults.fire("snapshot.write")
                        self.snapshot_storage.write(data)
                        self.journal.reset()
                    except OSError as exc:
                        self._breaker_failures += 1
                        if not self._breaker_open:
                            self._breaker_open = True
                            self.breaker_trips += 1
                            self._probe_countdown = max(
                                1, self.config.probe_every
                            )
                            pending.append(
                                PersistenceDegraded(
                                    path=self.snapshot_storage.location,
                                    error=str(exc),
                                    buffered=self.buffered_records,
                                )
                            )
                    else:
                        old_gen = self.blockstore.gen
                        self.blockstore = new_store
                        self._payload_refs = new_refs
                        # superseded generations: safe to drop only now
                        # (snapshot + journal reset are durable, so no
                        # surviving ref can point into them); deletion
                        # is best-effort and also sweeps stragglers
                        # from older aborted rotations
                        for gen in range(max(0, old_gen - 2), new_gen):
                            try:
                                self.config.blockstore_storage(
                                    self.dfs, gen
                                ).delete()
                            except OSError:
                                pass
                        with self._buffer_lock:
                            # staged records were captured in the snapshot
                            self._buffer.clear()
                        self._backlog.clear()
                        self._records_since_snapshot = 0
                        if self._breaker_open:
                            self._breaker_open = False
                            self.breaker_recoveries += 1
                            pending.append(
                                PersistenceRecovered(
                                    path=self.snapshot_storage.location,
                                    flushed=0,
                                    failures=self._breaker_failures,
                                )
                            )
                            self._breaker_failures = 0
                        event = SnapshotTaken(
                            path=self.snapshot_storage.location,
                            entries=len(snapshot),
                            bytes=len(data),
                        )
                        pending.append(event)
        for item in pending:  # emitted outside every lock
            self.events.emit(item)
        return event

    def close(self, *, snapshot: bool = False) -> None:
        """Detach from the manager, flushing (and optionally
        snapshotting) first; idempotent."""
        if self._closed:
            return
        self._timer_stop.set()
        if self._timer is not None and self._timer.is_alive():
            self._timer.join(timeout=5.0)
        self._timer = None
        self._journal_counters_if_moved()
        # force past the breaker's probe gating: closing is the last
        # chance to drain the backlog to storage
        self.flush(force=True)
        if snapshot:
            self.take_snapshot()
        self._closed = True
        for unsubscribe in self._unsubscribes:
            unsubscribe()
        self._unsubscribes = []
        if getattr(self.manager, "persistence", None) is self:
            self.manager.persistence = None

    def __repr__(self) -> str:
        state = "degraded" if self._breaker_open else "ok"
        return (
            f"RepositoryPersister(journal={self.journal.location!r}, "
            f"snapshot={self.snapshot_storage.location!r}, "
            f"pending={len(self._buffer) + len(self._backlog)}, "
            f"breaker={state})"
        )
