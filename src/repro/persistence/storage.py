"""Byte-blob storage backends for snapshots and journals.

The codec layers above (:mod:`repro.persistence.snapshot`,
:mod:`repro.persistence.journal`) work on opaque byte strings; this
module supplies the two places those bytes can live:

* :class:`DFSStorage` — a file inside the simulated DFS, mirroring the
  paper's deployment where the repository metadata is just another
  replicated file on the cluster it indexes;
* :class:`LocalStorage` — a real file on the local filesystem, so the
  CLI can carry repository state across separate ``python -m repro``
  process invocations.

Both expose the same small surface: ``exists``/``size``/``read`` for
recovery, ``write`` for snapshot rotation (full replace), ``append``
for journal records, and ``truncate`` for repairing a torn journal
tail.  Individual operations are atomic at the backend's granularity
(one DFS call under its lock; one file syscall), which is all the
framing layers need — they tolerate torn *tails*, not torn records.

:class:`LocalStorage` is additionally *durable* at each operation:
appends, truncates, and the snapshot's write-temp-then-rename all
fsync the file (and, for the rename, its directory) before returning.
Without the fsync after ``truncate`` a crash right after torn-tail
repair could resurrect the very tail the repair removed; without the
fsyncs around the rename a crash could publish a snapshot whose bytes
never reached the platter.
"""

from __future__ import annotations

import os
import pathlib

from repro.faults import injector as faults


def _fsync_fileobj(handle) -> None:
    """Flush + fsync one open file (injection site "storage.fsync")."""
    handle.flush()
    faults.fire("storage.fsync")
    os.fsync(handle.fileno())


def _fsync_dir(path: pathlib.Path) -> None:
    """fsync a directory so a rename inside it is durable; platforms
    that cannot open directories simply skip (the rename itself is
    still atomic — durability degrades, correctness does not)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        faults.fire("storage.fsync")
        os.fsync(fd)
    finally:
        os.close(fd)


class LocalStorage:
    """Snapshot/journal bytes in a real file on the local filesystem."""

    def __init__(self, path) -> None:
        self.path = pathlib.Path(path)

    @property
    def location(self) -> str:
        return str(self.path)

    def exists(self) -> bool:
        return self.path.exists()

    def size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def read(self) -> bytes:
        return self.path.read_bytes()

    def write(self, data: bytes) -> None:
        """Replace the whole file: write-temp, fsync the temp, rename
        over the target, fsync the directory — a crash at any point
        leaves either the old complete file or the new complete file,
        and the survivor is on stable storage."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(data)
            _fsync_fileobj(handle)
        tmp.replace(self.path)
        _fsync_dir(self.path.parent)

    def append(self, data: bytes) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "ab") as handle:
            handle.write(data)
            _fsync_fileobj(handle)

    def truncate(self, length: int) -> None:
        if not self.path.exists():
            if length == 0:
                return
            raise FileNotFoundError(str(self.path))
        with open(self.path, "r+b") as handle:
            handle.truncate(length)
            # fsync-after-truncate: torn-tail repair must not be
            # resurrectable by a crash right after it
            _fsync_fileobj(handle)

    def delete(self) -> None:
        self.path.unlink(missing_ok=True)

    def __repr__(self) -> str:
        return f"LocalStorage({str(self.path)!r})"


class DFSStorage:
    """Snapshot/journal bytes as a file in the simulated DFS."""

    def __init__(self, dfs, path: str) -> None:
        self.dfs = dfs
        self.path = path

    @property
    def location(self) -> str:
        return self.path

    def exists(self) -> bool:
        return self.dfs.exists(self.path)

    def size(self) -> int:
        return self.dfs.file_size(self.path) if self.exists() else 0

    def read(self) -> bytes:
        return self.dfs.read_file(self.path)

    def write(self, data: bytes) -> None:
        self.dfs.write_file(self.path, data, overwrite=True)

    def append(self, data: bytes) -> None:
        self.dfs.append(self.path, data)

    def truncate(self, length: int) -> None:
        # the DFS has no in-place truncate: rewrite the clean prefix
        current = self.read() if self.exists() else b""
        self.dfs.write_file(self.path, current[:length], overwrite=True)

    def delete(self) -> None:
        self.dfs.delete_if_exists(self.path)

    def __repr__(self) -> str:
        return f"DFSStorage({self.path!r})"
