"""The warm in-memory standby replica.

A :class:`StandbyReplica` keeps a second, independent repository (plus
kept-path set and counters) continuously caught up with the primary by
tailing the primary persister's storage:

* on :class:`~repro.events.JournalAppended` it reads the journal from
  its tracked byte offset and applies every newly intact record;
* on :class:`~repro.events.SnapshotTaken` it rebases — reloads the
  fresh snapshot and restarts tailing from journal offset zero.

Both arrive on the **persister's own bus**, never the manager bus, so
the replica adds zero coupling to the live reuse pipeline; it touches
only its own repository, so no lock ordering with the primary exists
to get wrong.

:meth:`promote` turns the replica into the authoritative state: it
flushes the primary's buffer, catches up through the final record,
and returns a :class:`~repro.persistence.durability.RecoveredState` —
by construction containing every mutation the primary ever journaled,
i.e. **zero lost reuse opportunities**.
"""

from __future__ import annotations

import threading

from repro.core.repository import Repository
from repro.events import JournalAppended, SnapshotTaken
from repro.persistence.durability import (
    RecoveredState,
    ReplayTarget,
    derive_id_floors,
)
from repro.persistence.journal import decode_journal
from repro.persistence.snapshot import RepositorySnapshot


class StandbyReplica:
    """Tails a primary :class:`RepositoryPersister` into a warm replica."""

    def __init__(self, persister, *, matcher=None) -> None:
        self.persister = persister
        self._matcher = matcher
        self._lock = threading.RLock()
        self._target: ReplayTarget = ReplayTarget(Repository(matcher=matcher))
        #: journal bytes already applied (always a record boundary)
        self._offset = 0
        self._snapshot_entries = 0
        self.records_applied = 0
        self._unsubscribe = persister.events.subscribe(self._on_event)
        # events that fired before the subscription are covered here:
        # rebase reads whatever snapshot + journal already exist
        self.rebase()

    # -- event tailing ------------------------------------------------------------

    def _on_event(self, event) -> None:
        if isinstance(event, SnapshotTaken):
            self.rebase()
        elif isinstance(event, JournalAppended):
            self.catch_up()

    def rebase(self) -> None:
        """Reload from the current snapshot, then replay the journal
        from the top (after a snapshot rotation the journal restarts
        at offset zero)."""
        with self._lock:
            storage = self.persister.snapshot_storage
            if storage.exists() and storage.size() > 0:
                snapshot = RepositorySnapshot.from_bytes(storage.read())
                manager_state = snapshot.manager_state
                self._target = ReplayTarget(
                    snapshot.restore_repository(matcher=self._matcher),
                    kept_paths=manager_state.get("kept_paths", ()),
                    clock=manager_state.get("clock", 0),
                    id_floors=snapshot.dfs_state,
                    payloads=snapshot.payload_state,
                )
                self._snapshot_entries = len(snapshot)
            else:
                self._target = ReplayTarget(Repository(matcher=self._matcher))
                self._snapshot_entries = 0
            self._offset = 0
            self._catch_up_locked()

    def catch_up(self) -> int:
        """Apply every intact journal record past the tracked offset;
        returns how many were applied."""
        with self._lock:
            return self._catch_up_locked()

    def _catch_up_locked(self) -> int:
        storage = self.persister.journal.storage
        data = storage.read() if storage.exists() else b""
        if len(data) < self._offset:
            # the journal shrank under us: a snapshot rotation we have
            # not processed yet (its event is in flight) — restart from
            # the beginning; offsets are record boundaries either way
            self._offset = 0
        scan = decode_journal(data[self._offset :])
        applied = self._target.apply_all(scan.records)
        self._offset += scan.clean_bytes
        self.records_applied += applied
        return applied

    # -- promotion ----------------------------------------------------------------

    def promote(self) -> RecoveredState:
        """Make this replica the authoritative state.

        Drains the primary's buffer first, then catches up through the
        last journaled record, so nothing the primary committed is
        missing: zero lost reuse opportunities.  The flush is forced
        past the circuit breaker's probe gating — promotion is the last
        chance to drain a backlog the breaker parked in memory.
        """
        try:
            self.persister.flush(force=True)
        except TypeError:  # pre-breaker persisters (tests stub them)
            self.persister.flush()
        with self._lock:
            self._catch_up_locked()
            target = self._target
            for key, value in derive_id_floors(target.repository).items():
                target.id_floors[key] = max(target.id_floors.get(key, 1), value)
            for entry in target.repository.entries():
                target.clock = max(
                    target.clock, entry.created_at, entry.last_used_at
                )
            blockstore_gen = target.payload_gen
            for raw in target.payload_refs.values():
                blockstore_gen = max(blockstore_gen, int(raw[0]))
            return RecoveredState(
                repository=target.repository,
                kept_paths=set(target.kept_paths),
                clock=target.clock,
                id_floors=dict(target.id_floors),
                snapshot_entries=self._snapshot_entries,
                journal_records=self.records_applied,
                payload_refs={
                    path: list(ref)
                    for path, ref in target.payload_refs.items()
                },
                blockstore_gen=blockstore_gen,
            )

    def close(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    # -- views --------------------------------------------------------------------

    @property
    def repository(self) -> Repository:
        return self._target.repository

    @property
    def kept_paths(self):
        return set(self._target.kept_paths)

    def __len__(self) -> int:
        return len(self._target.repository)

    def __repr__(self) -> str:
        return (
            f"StandbyReplica(entries={len(self)}, "
            f"records_applied={self.records_applied})"
        )
