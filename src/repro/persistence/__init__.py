"""Durable repository persistence: snapshot + journal + recovery.

A shared ReStore service cannot rebuild its repository from scratch on
every restart (the N=10k build already costs seconds and grows
linearly), and the whole value of the system — stored sub-job outputs
reused across submissions days apart — evaporates if a crash loses the
index of what is stored.  This package makes the repository durable
and fast to recover:

* :mod:`repro.persistence.snapshot` — a versioned codec that
  serializes every repository entry *with* its derived match metadata
  (plan fingerprint, load signatures, signature multiset), the
  incremental §3 subsumption order, and the entry-id counter, so a
  cold start rebuilds all inverted indexes in O(entries read) without
  re-registering a single plan;
* :mod:`repro.persistence.journal` — an append-only journal of every
  post-snapshot mutation (entry add/evict, kept-path commit, reuse
  statistics) in checksummed, length-prefixed records, so a torn tail
  from a mid-flush crash is detected and truncated, never replayed;
* :mod:`repro.persistence.durability` — the live wiring: a
  :class:`RepositoryPersister` journals mutations as they commit,
  rotates snapshots, and exposes crash :func:`recover`;
* :mod:`repro.persistence.standby` — an in-memory warm standby that
  tails the journal via the persister's :class:`~repro.events.EventBus`
  and can be promoted with zero lost reuse opportunities.

Quick start::

    from repro import ReStoreSession
    from repro.persistence import PersistenceConfig

    durable = PersistenceConfig(
        snapshot_path="restore/repo.snap",
        journal_path="restore/repo.journal",
    )
    with ReStoreSession(persistence=durable) as session:
        session.run("A = load 'data/users' as (name); store A into 'out';")
    # process dies ... a later session warm-starts from the snapshot:
    with ReStoreSession(dfs=session.dfs, persistence=durable) as again:
        ...  # repository, kept paths, and id counters all restored
"""

from repro.persistence.durability import (
    PersistenceConfig,
    RecoveredState,
    RepositoryPersister,
    recover,
)
from repro.persistence.journal import (
    JournalError,
    JournalRecord,
    read_journal,
)
from repro.persistence.snapshot import (
    RepositorySnapshot,
    SnapshotError,
)
from repro.persistence.standby import StandbyReplica

__all__ = [
    "JournalError",
    "JournalRecord",
    "PersistenceConfig",
    "RecoveredState",
    "RepositoryPersister",
    "RepositorySnapshot",
    "SnapshotError",
    "StandbyReplica",
    "read_journal",
    "recover",
]
