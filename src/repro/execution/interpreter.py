"""Push-based interpreter for job physical plans.

Executes one MapReduce job's plan over real rows: map branches run
from each POLoad to the shuffle (or straight to stores for map-only
jobs), the shuffle buffer sorts and groups, and the reduce segment
runs from POPackage to the stores.  All byte/record counters that the
cost model and ReStore statistics need are collected on the way.

Three data planes share this interpreter:

* the **batched plane** (default) reads inputs through the DFS
  typed-dataset cache and streams ``List[Row]`` chunks of
  ``batch_size`` rows through *batch handlers* compiled per operator:
  filters run compiled predicates inside one list comprehension per
  chunk, foreach runs precompiled projection closures, split tees
  forward the same chunk object to every branch, and the shuffle
  decorates whole chunks in one pass
  (:meth:`~repro.mapreduce.shuffle.ShuffleBuffer.add_batch`) — one
  Python call per operator per *chunk* instead of per row;
* the **fast plane** (``batch_size=0``) keeps the typed-dataset cache
  and lazy serialization but dispatches one compiled closure call per
  row per operator (the PR-4 behaviour, kept as the batching ablation
  baseline);
* the **legacy plane** (``fast_data_plane=False``) re-parses text at
  every edge and dispatches per row, exactly as before.

Both fast tiers additionally hand :meth:`write_rows` a *payload
source* for pass-through stores (a store fed only by a load, possibly
through split tees — the shape of whole-job copy rewrites and
load-teeing side stores), letting the DFS clone the producer's
serialized payload instead of rendering the same text twice
(``payload_reuse`` knob).

Every counter a :class:`~repro.mapreduce.stats.JobStats` carries and
every byte the DFS accounts is value-identical between the planes —
the ``exec_sim`` benchmark gate and the differential tests hold all
three planes to byte-identical outputs and decisions.
"""

from __future__ import annotations

import time
from collections import defaultdict
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence

from repro.dfs.filesystem import DistributedFileSystem
from repro.exceptions import ExecutionError, PlanError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import ShuffleBuffer
from repro.mapreduce.stats import JobStats, StoreStat
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POFRJoin,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
    POUnion,
)
from repro.relational.compiled import (
    compile_filter_list,
    compile_key,
    compile_projection,
)
from repro.relational.tuples import (
    Bag,
    Row,
    deserialize_row,
    iter_data_lines,
    serialize_row,
)

#: a compiled row handler: (row, source operator) -> None
Handler = Callable[[Row, Optional[PhysicalOperator]], None]

#: a compiled chunk handler: (rows, source operator) -> None
BatchHandler = Callable[[Sequence[Row], Optional[PhysicalOperator]], None]

#: chunk size of the batched plane; 0 falls back to per-row dispatch
DEFAULT_BATCH_SIZE = 1024


class JobInterpreter:
    """Executes one job plan against the DFS and reports statistics."""

    def __init__(
        self,
        job: MapReduceJob,
        dfs: DistributedFileSystem,
        n_reduce_tasks: int = 8,
        fast_data_plane: bool = True,
        batch_size: int = DEFAULT_BATCH_SIZE,
        payload_reuse: bool = True,
    ):
        self.job = job
        self.plan = job.plan
        self.dfs = dfs
        self.n_reduce_tasks = max(1, n_reduce_tasks)
        self.fast_data_plane = fast_data_plane
        self.batch_size = max(0, batch_size)
        self.payload_reuse = payload_reuse
        self._shuffle: Optional[ShuffleBuffer] = None
        self._store_lines: Dict[int, List[str]] = defaultdict(list)
        self._store_rows: Dict[int, List[Row]] = defaultdict(list)
        self._limit_counts: Dict[int, int] = defaultdict(int)
        #: POFRJoin op_id -> [probe rows, build rows]
        self._frjoin_buffers: Dict[int, List[List[Row]]] = defaultdict(lambda: [[], []])
        self._op_records = 0
        self._map_output_records = 0
        self._reduce_phase_ids: set = set()
        #: POLocalRearrange op_id -> null-key policy (join semantics)
        self._null_key_policy: Dict[int, str] = {}
        self._null_counter = 0
        #: op_id -> compiled handler / successor handler list (fast plane)
        self._handlers: Dict[int, Handler] = {}
        self._succ_handlers: Dict[int, List[Handler]] = {}
        #: op_id -> compiled chunk handler / successor list (batched plane)
        self._batch_handlers: Dict[int, BatchHandler] = {}
        self._succ_batch_handlers: Dict[int, List[BatchHandler]] = {}
        #: decided in :meth:`run` once null-key policies are known
        self._batching = False
        #: id(row) -> serialized width, merged from every load's pinned
        #: dataset (batched plane); rows reaching the shuffle untouched
        #: skip re-sizing.  ``_memo_keepalive`` pins the source row
        #: tuples so the ids stay unambiguous for this job's lifetime.
        self._size_memo: Dict[int, int] = {}
        self._memo_keepalive: List[tuple] = []

    # -- public ------------------------------------------------------------------

    def run(self) -> JobStats:
        started = time.perf_counter()
        self.plan.validate()
        stats = JobStats(job_id=self.job.job_id, name=self.job.conf.name)

        gr = self.plan.global_rearrange()
        if gr is not None:
            package = self._package_after(gr)
            # ORDER BY: a single reduce partition gives the total order
            # (stands in for Pig's sample+range-partition sort pair).
            n_partitions = 1 if package.mode == "sort" else self.n_reduce_tasks
            self._shuffle = ShuffleBuffer(n_partitions)
            self._reduce_phase_ids = self.plan.downstream_closure(gr)
            self._configure_null_key_policy(package)
        self._batching = (
            self.fast_data_plane and self.batch_size > 0 and self._batch_safe()
        )

        # Map phase: stream every load's rows through its branch.
        for load in self.plan.loads():
            if load.schema is None:
                raise ExecutionError(f"load without schema: {load!r}")
            if self.fast_data_plane:
                # cached typed read: a matching pinned dataset skips
                # text parsing (and byte materialization) entirely
                rows = self.dfs.read_rows(load.path, load.schema)
                rows_read = len(rows)
                if self._batching:
                    if self._shuffle is not None:
                        # the memo only feeds shuffle wire accounting;
                        # map-only jobs must not pay for building it
                        memo, keepalive = self.dfs.row_size_memo(
                            load.path, load.schema
                        )
                        if memo:
                            self._size_memo.update(memo)
                            self._memo_keepalive.append(keepalive)
                    handlers = self._batch_handlers_after(load)
                    for chunk in self._chunks(rows):
                        for handler in handlers:
                            handler(chunk, load)
                else:
                    handlers = self._handlers_after(load)
                    for row in rows:
                        for handler in handlers:
                            handler(row, load)
            else:
                rows_read = 0
                for line in iter_data_lines(self.dfs.read_text(load.path)):
                    row = deserialize_row(line, load.schema)
                    rows_read += 1
                    self._forward(load, row)
            stats.load_bytes[load.path] = self.dfs.file_size(load.path)
            stats.input_records += rows_read

        # Map-side joins: all inputs are buffered once the loads drain.
        self._finalize_frjoins()

        # Reduce phase.
        if gr is not None:
            package = self._package_after(gr)
            if self._batching:
                self._run_reduce_batched(package, stats)
            else:
                for key, branch_rows in self._shuffle.all_groups():
                    stats.reduce_groups += 1
                    for row in self._package_rows(package, key, branch_rows):
                        self._op_records += 1
                        self._forward(package, row)
            stats.shuffle_records = self._shuffle.records
            stats.shuffle_bytes = self._shuffle.bytes

        # Flush stores.
        for store in self.plan.stores():
            if self.fast_data_plane:
                rows = self._store_rows.get(store.op_id, [])
                status = self.dfs.write_rows(
                    store.path,
                    rows,
                    store.schema,
                    overwrite=True,
                    source=self._source_hint(store),
                    reuse_payload=self.payload_reuse,
                    # the batched plane sizes columns and owns its
                    # flush rows outright (nothing can mutate them
                    # after this call), so the defensive snapshot is
                    # skipped; batch_size=0 keeps PR-4's per-row write
                    columnar=self._batching,
                    snapshot=not self._batching,
                )
                store_bytes, store_records = status.size, len(rows)
            else:
                lines = self._store_lines.get(store.op_id, [])
                text = "".join(line + "\n" for line in lines)
                self.dfs.write_file(store.path, text, overwrite=True)
                store_bytes, store_records = len(text.encode()), len(lines)
            stats.stores.append(
                StoreStat(
                    path=store.path,
                    bytes=store_bytes,
                    records=store_records,
                    phase="reduce" if store.op_id in self._reduce_phase_ids else "map",
                    side=store.side,
                )
            )

        stats.map_output_records = self._map_output_records
        stats.op_records = self._op_records
        stats.wall_seconds = time.perf_counter() - started
        return stats

    # -- row routing -------------------------------------------------------------------

    def _forward(self, op: PhysicalOperator, row: Row) -> None:
        if self.fast_data_plane:
            for handler in self._handlers_after(op):
                handler(row, op)
        else:
            for succ in self.plan.successors(op):
                self._process(succ, row, source=op)

    # -- batched dispatch (batched plane) ----------------------------------------------

    def _batch_safe(self) -> bool:
        """Whether chunk-at-a-time forwarding is output-identical here.

        The one piece of cross-operator order-sensitive state is the
        null-isolation counter: a split tee feeding *two* isolating
        rearranges would number their null keys row-major on the
        per-row plane but chunk-major on the batched plane, reordering
        the isolated singleton groups.  With at most one isolating
        rearrange every consumer sees rows in stream order on both
        planes, so numbering is identical; plans beyond that (full
        self outer joins) fall back to per-row dispatch.
        """
        isolating = sum(
            1 for policy in self._null_key_policy.values() if policy == "isolate"
        )
        return isolating <= 1

    def _chunks(self, rows: Sequence[Row]) -> List[Sequence[Row]]:
        batch = self.batch_size
        if len(rows) <= batch:
            return [rows] if rows else []
        return [rows[start : start + batch] for start in range(0, len(rows), batch)]

    def _run_reduce_batched(self, package: POPackage, stats: JobStats) -> None:
        """Stream package output through batch handlers, chunk-wise.

        Group outputs are tiny (one row per group for GROUP/DISTINCT),
        so rows accumulate across groups until a chunk fills — the
        reduce tail (foreach → store) then runs batch-at-a-time just
        like the map side.  ``op_records`` moves once per package
        output row, exactly as the per-row loop moves it.
        """
        handlers = self._batch_handlers_after(package)
        batch = self.batch_size
        buffer: List[Row] = []
        for key, branch_rows in self._shuffle.all_groups():
            stats.reduce_groups += 1
            buffer.extend(self._package_rows(package, key, branch_rows))
            if len(buffer) >= batch:
                self._op_records += len(buffer)
                for handler in handlers:
                    handler(buffer, package)
                buffer = []
        if buffer:
            self._op_records += len(buffer)
            for handler in handlers:
                handler(buffer, package)

    def _batch_handlers_after(self, op: PhysicalOperator) -> List[BatchHandler]:
        handlers = self._succ_batch_handlers.get(op.op_id)
        if handlers is None:
            handlers = [self._compile_batch(succ) for succ in self.plan.successors(op)]
            self._succ_batch_handlers[op.op_id] = handlers
        return handlers

    def _compile_batch(self, op: PhysicalOperator) -> BatchHandler:
        """One chunk handler per operator.

        Counter semantics mirror :meth:`_process` exactly — every
        operator visit moves ``op_records`` once per row on all three
        planes — but the per-row work runs inside one call per chunk:
        filters evaluate a compiled predicate in a list comprehension,
        foreach maps a precompiled projection, rearranges decorate the
        whole chunk via :meth:`ShuffleBuffer.add_batch`, and tees
        forward the same chunk object to every branch.
        """
        handler = self._batch_handlers.get(op.op_id)
        if handler is not None:
            return handler
        successors = self.plan.successors(op)
        if isinstance(op, POFilter) and len(successors) == 1:
            inner = self._compile_batch(successors[0])
            filter_rows = compile_filter_list(op.predicate)

            def handler(rows, source, _op=op, _inner=inner, _filter=filter_rows):
                self._op_records += len(rows)
                out = _filter(rows)
                if out:
                    _inner(out, _op)

        elif isinstance(op, POForEach) and len(successors) == 1:
            inner = self._compile_batch(successors[0])
            project = compile_projection(op.exprs, op.flattens)
            if project is not None:

                def handler(rows, source, _op=op, _inner=inner, _project=project):
                    self._op_records += len(rows)
                    _inner([_project(row) for row in rows], _op)

            else:
                # FLATTEN expands cross products: row-at-a-time
                # expansion, chunk-at-a-time forwarding

                def handler(rows, source, _op=op, _inner=inner):
                    self._op_records += len(rows)
                    out: List[Row] = []
                    extend = out.extend
                    for row in rows:
                        extend(self._foreach_rows(_op, row))
                    if out:
                        _inner(out, _op)

        elif isinstance(op, POLocalRearrange):
            handler = self._compile_batch_rearrange(op)
        elif isinstance(op, POStore):
            extend_rows = self._store_rows[op.op_id].extend

            def handler(rows, source, _extend=extend_rows):
                self._op_records += len(rows)
                _extend(rows)

        elif isinstance(op, (POSplit, POUnion)):
            inner_handlers = None  # bound lazily: successors compile on demand

            def handler(rows, source, _op=op):
                nonlocal inner_handlers
                self._op_records += len(rows)
                if inner_handlers is None:
                    inner_handlers = self._batch_handlers_after(_op)
                for inner in inner_handlers:
                    inner(rows, _op)

        elif isinstance(op, POLimit):

            def handler(rows, source, _op=op):
                self._op_records += len(rows)
                taken = self._limit_counts[_op.op_id]
                if taken >= _op.n:
                    return
                out = rows[: _op.n - taken] if _op.n - taken < len(rows) else rows
                self._limit_counts[_op.op_id] += len(out)
                for inner in self._batch_handlers_after(_op):
                    inner(out, _op)

        elif isinstance(op, POFRJoin):

            def handler(rows, source, _op=op):
                self._op_records += len(rows)
                branch = self._frjoin_branch(_op, source)
                self._frjoin_buffers[_op.op_id][branch].extend(rows)

        else:

            def handler(rows, source, _op=op):
                for row in rows:
                    self._process(_op, row, source=source)

        self._batch_handlers[op.op_id] = handler
        return handler

    def _compile_batch_rearrange(self, op: POLocalRearrange) -> BatchHandler:
        """A chunk handler decorating the shuffle in one pass.

        The null-key policy is fixed before the map phase starts
        (:meth:`_configure_null_key_policy` runs before any handler
        compiles), so each policy gets its own specialized loop.
        """
        key_of = compile_key(op.key_exprs)
        branch = op.branch
        policy = self._null_key_policy.get(op.op_id, "keep")
        if policy == "keep":

            def handler(rows, source, _key_of=key_of, _branch=branch):
                self._op_records += len(rows)
                # C-level when the key compiles to an itemgetter
                keys = list(map(_key_of, rows))
                self._shuffle.add_batch(
                    _branch, keys, rows, self._wire_total(rows)
                )
                self._map_output_records += len(rows)

        elif policy == "drop":

            def handler(rows, source, _key_of=key_of, _branch=branch):
                self._op_records += len(rows)
                keys, kept = [], []
                for row in rows:
                    key = _key_of(row)
                    if _is_null_key(key):
                        continue  # Pig: null keys never match in inner joins
                    keys.append(key)
                    kept.append(row)
                self._shuffle.add_batch(
                    _branch, keys, kept, self._wire_total(kept)
                )
                self._map_output_records += len(kept)

        else:  # isolate: outer-preserved rows survive, unmatched

            def handler(rows, source, _key_of=key_of, _branch=branch):
                self._op_records += len(rows)
                keys = []
                for row in rows:
                    key = _key_of(row)
                    if _is_null_key(key):
                        self._null_counter += 1
                        key = ("__null__", self._null_counter)
                    keys.append(key)
                self._shuffle.add_batch(
                    _branch, keys, rows, self._wire_total(rows)
                )
                self._map_output_records += len(rows)

        return handler

    def _wire_total(self, rows) -> Optional[int]:
        """Summed memoized widths for a chunk, or None on any miss
        (rows built by foreach/package are not in any load's memo)."""
        memo = self._size_memo
        if not memo:
            return None
        sizes = list(map(memo.get, map(id, rows)))
        if None in sizes:
            return None
        return sum(sizes)

    # -- payload reuse / subset sizing (fast tiers) ------------------------------------

    #: operators that forward row *objects* unchanged: a store whose
    #: ancestry up to a single load crosses only these receives a
    #: subset of the load's row stream by identity (splits and unions
    #: forward everything; filters and limits drop rows but never
    #: rebuild them)
    _IDENTITY_OPS = (POSplit, POFilter, POLimit, POUnion)

    def _source_hint(self, store: POStore) -> Optional[str]:
        """The load path this store's rows identity-descend from.

        Feeds :meth:`write_rows`'s two source fast paths: a *pure*
        pass-through (splits only — the shape of whole-job copy
        rewrites and load-teeing side stores) clones the producer's
        serialized payload, and a *filtered* descent (the shape of
        injected filter side stores) sizes the subset in one columnar
        pass.  The returned path is only a hint: ``write_rows``
        verifies row identity against the source's pinned dataset
        before using either path.
        """
        if not self.fast_data_plane:
            return None
        schema = store.schema
        if schema is None:
            return None
        op: PhysicalOperator = store
        while True:
            preds = self.plan.predecessors(op)
            if len(preds) != 1:
                return None
            pred = preds[0]
            if isinstance(pred, POLoad):
                if (
                    pred.schema is not None
                    and pred.schema.fingerprint() == schema.fingerprint()
                ):
                    return pred.path
                return None
            if not isinstance(pred, self._IDENTITY_OPS):
                return None
            op = pred

    # -- compiled dispatch (fast plane) ------------------------------------------------

    def _handlers_after(self, op: PhysicalOperator) -> List[Handler]:
        handlers = self._succ_handlers.get(op.op_id)
        if handlers is None:
            handlers = [self._compile(succ) for succ in self.plan.successors(op)]
            self._succ_handlers[op.op_id] = handlers
        return handlers

    def _compile(self, op: PhysicalOperator) -> Handler:
        """One closure per operator, fusing straight-line map segments.

        Filter→foreach chains with single successors collapse into
        nested closures — one Python call per row per segment instead
        of the per-operator isinstance dispatch.  Counter increments
        mirror :meth:`_process` exactly: ``op_records`` moves once per
        operator visit on both planes.
        """
        handler = self._handlers.get(op.op_id)
        if handler is not None:
            return handler
        successors = self.plan.successors(op)
        if isinstance(op, POFilter) and len(successors) == 1:
            inner = self._compile(successors[0])
            predicate_eval = op.predicate.eval

            def handler(row, source, _op=op, _inner=inner):
                self._op_records += 1
                if bool(predicate_eval(row)):
                    _inner(row, _op)

        elif isinstance(op, POForEach) and len(successors) == 1:
            inner = self._compile(successors[0])

            def handler(row, source, _op=op, _inner=inner):
                self._op_records += 1
                for out in self._foreach_rows(_op, row):
                    _inner(out, _op)

        elif isinstance(op, POLocalRearrange):
            shuffle_add = None  # bound lazily: the buffer exists by first row

            def handler(row, source, _op=op):
                nonlocal shuffle_add
                self._op_records += 1
                key = _op.make_key(row)
                if _is_null_key(key):
                    policy = self._null_key_policy.get(_op.op_id, "keep")
                    if policy == "drop":
                        return  # Pig: null keys never match in inner joins
                    if policy == "isolate":
                        self._null_counter += 1
                        key = ("__null__", self._null_counter)
                if shuffle_add is None:
                    shuffle_add = self._shuffle.add
                shuffle_add(key, _op.branch, row)
                self._map_output_records += 1

        elif isinstance(op, POStore):
            append_row = self._store_rows[op.op_id].append

            def handler(row, source, _append=append_row):
                self._op_records += 1
                _append(row)

        elif isinstance(op, (POSplit, POUnion)):
            inner_handlers = None  # bound lazily: successors compile on demand

            def handler(row, source, _op=op):
                nonlocal inner_handlers
                self._op_records += 1
                if inner_handlers is None:
                    inner_handlers = self._handlers_after(_op)
                for inner in inner_handlers:
                    inner(row, _op)

        else:

            def handler(row, source, _op=op):
                self._process(_op, row, source=source)

        self._handlers[op.op_id] = handler
        return handler

    def _process(
        self,
        op: PhysicalOperator,
        row: Row,
        source: Optional[PhysicalOperator] = None,
    ) -> None:
        self._op_records += 1
        if isinstance(op, POFRJoin):
            branch = self._frjoin_branch(op, source)
            self._frjoin_buffers[op.op_id][branch].append(row)
        elif isinstance(op, POFilter):
            if bool(op.predicate.eval(row)):
                self._forward(op, row)
        elif isinstance(op, POForEach):
            for out in self._foreach_rows(op, row):
                self._forward(op, out)
        elif isinstance(op, POLocalRearrange):
            key = op.make_key(row)
            if _is_null_key(key):
                policy = self._null_key_policy.get(op.op_id, "keep")
                if policy == "drop":
                    return  # Pig: null keys never match in inner joins
                if policy == "isolate":
                    # outer-preserved side: the row survives, unmatched
                    self._null_counter += 1
                    key = ("__null__", self._null_counter)
            self._shuffle.add(key, op.branch, row)
            self._map_output_records += 1
        elif isinstance(op, POStore):
            if self.fast_data_plane:
                self._store_rows[op.op_id].append(row)
            else:
                self._store_lines[op.op_id].append(serialize_row(row))
        elif isinstance(op, (POSplit, POUnion)):
            self._forward(op, row)
        elif isinstance(op, POLimit):
            if self._limit_counts[op.op_id] < op.n:
                self._limit_counts[op.op_id] += 1
                self._forward(op, row)
        elif isinstance(op, (POGlobalRearrange, POPackage, POLoad)):
            raise ExecutionError(f"operator {op!r} cannot appear mid-pipeline")
        else:
            raise PlanError(f"interpreter cannot execute {op!r}")

    def _configure_null_key_policy(self, package: POPackage) -> None:
        """Pig join semantics for null keys: dropped on inner sides,
        preserved-but-unmatched on outer-preserved sides; GROUP and
        COGROUP keep nulls (they form their own group)."""
        if package.mode != "join":
            return
        for gr in self.plan.predecessors(package):
            for lr in self.plan.predecessors(gr):
                if isinstance(lr, POLocalRearrange):
                    preserved = (
                        lr.branch < len(package.outer_flags)
                        and package.outer_flags[lr.branch]
                    )
                    self._null_key_policy[lr.op_id] = (
                        "isolate" if preserved else "drop"
                    )

    # -- fragment-replicate join ------------------------------------------------------------

    def _frjoin_branch(self, op: POFRJoin, source: Optional[PhysicalOperator]) -> int:
        preds = self.plan.predecessors(op)
        if source is not None:
            for branch, pred in enumerate(preds):
                if pred.op_id == source.op_id:
                    return branch
        raise ExecutionError("frjoin received a row from an unknown input")

    def _finalize_frjoins(self) -> None:
        """Hash-join buffered inputs; topological order chains joins."""
        for op in self.plan.topo_order():
            if not isinstance(op, POFRJoin):
                continue
            probe_rows, build_rows = self._frjoin_buffers[op.op_id]
            table: Dict[object, List[Row]] = defaultdict(list)
            for row in build_rows:
                key = op.make_key(1, row)
                if not _is_null_key(key):
                    table[key].append(row)
            if self._batching:
                out: List[Row] = []
                for row in probe_rows:
                    key = op.make_key(0, row)
                    if _is_null_key(key):
                        continue
                    for match in table.get(key, ()):
                        self._op_records += 1
                        out.append(tuple(row) + tuple(match))
                handlers = self._batch_handlers_after(op)
                for chunk in self._chunks(out):
                    for handler in handlers:
                        handler(chunk, op)
                continue
            for row in probe_rows:
                key = op.make_key(0, row)
                if _is_null_key(key):
                    continue
                for match in table.get(key, ()):
                    self._op_records += 1
                    self._forward(op, tuple(row) + tuple(match))

    # -- foreach ----------------------------------------------------------------------------

    def _foreach_rows(self, op: POForEach, row: Row):
        """Evaluate a FOREACH, expanding FLATTEN cross products."""
        scalar_or_items = []
        for expr, flatten in zip(op.exprs, op.flattens):
            value = expr.eval(row)
            if flatten:
                items = _as_flatten_items(value)
                if not items:
                    return  # flatten of an empty bag drops the row
                scalar_or_items.append(("flat", items))
            else:
                if isinstance(value, list):
                    value = Bag(v if isinstance(v, tuple) else (v,) for v in value)
                scalar_or_items.append(("scalar", value))

        flat_groups = [items for tag, items in scalar_or_items if tag == "flat"]
        if not flat_groups:
            yield tuple(value for _, value in scalar_or_items)
            return
        for combo in product(*flat_groups):
            out: List = []
            flat_index = 0
            for tag, value in scalar_or_items:
                if tag == "flat":
                    out.extend(combo[flat_index])
                    flat_index += 1
                else:
                    out.append(value)
            yield tuple(out)

    # -- package -----------------------------------------------------------------------------

    def _package_after(self, gr: POGlobalRearrange) -> POPackage:
        succs = self.plan.successors(gr)
        if len(succs) != 1 or not isinstance(succs[0], POPackage):
            raise PlanError("global rearrange must feed exactly one package")
        return succs[0]

    def _package_rows(self, package: POPackage, key, branch_rows: Dict[int, List[Row]]):
        mode = package.mode
        if mode == "group":
            yield (key, Bag(branch_rows.get(0, [])))
            return
        if mode == "distinct":
            first_branch = min(branch_rows)
            yield branch_rows[first_branch][0]
            return
        if mode == "sort":
            for row in branch_rows.get(0, []):
                yield row
            return
        # cogroup / join: one bag per declared input branch
        bags = [Bag(branch_rows.get(i, [])) for i in range(package.n_inputs)]
        if mode == "join":
            for i, bag in enumerate(bags):
                if len(bag) == 0:
                    preserved_elsewhere = any(
                        package.outer_flags[j] and len(bags[j]) > 0
                        for j in range(package.n_inputs)
                        if j != i
                    )
                    if preserved_elsewhere:
                        bags[i] = Bag([self._null_row_for_branch(package, i)])
                    else:
                        return  # inner-join semantics: drop the key
        yield (key, *bags)

    def _null_row_for_branch(self, package: POPackage, branch: int) -> Row:
        """All-null padding tuple for outer joins."""
        if package.schema is not None and branch + 1 < len(package.schema):
            inner = package.schema[branch + 1].inner
            if inner is not None:
                return tuple([None] * len(inner))
        raise ExecutionError(
            "outer join requires package schema with inner bag schemas"
        )


def _is_null_key(key) -> bool:
    """A join key is null when any component is null (SQL semantics)."""
    if key is None:
        return True
    if isinstance(key, tuple):
        return any(k is None for k in key)
    return False


def _as_flatten_items(value) -> List[tuple]:
    """Normalize a flattened value into a list of field tuples."""
    if value is None:
        return []
    if isinstance(value, Bag):
        return [tuple(r) for r in value]
    if isinstance(value, list):
        return [v if isinstance(v, tuple) else (v,) for v in value]
    if isinstance(value, tuple):
        return [value]
    return [(value,)]
