"""Push-based interpreter for job physical plans.

Executes one MapReduce job's plan over real rows: map branches run
from each POLoad to the shuffle (or straight to stores for map-only
jobs), the shuffle buffer sorts and groups, and the reduce segment
runs from POPackage to the stores.  All byte/record counters that the
cost model and ReStore statistics need are collected on the way.

Two data planes share this interpreter:

* the **fast plane** (default) reads inputs through the DFS
  typed-dataset cache, writes stores as typed rows
  (:meth:`~repro.dfs.filesystem.DistributedFileSystem.write_rows`),
  and routes rows through *compiled* per-operator handlers — straight
  -line map segments (filter/foreach chains) fuse into closures that
  skip the isinstance dispatch entirely;
* the **legacy plane** (``fast_data_plane=False``) re-parses text at
  every edge and dispatches per row, exactly as before.

Every counter a :class:`~repro.mapreduce.stats.JobStats` carries and
every byte the DFS accounts is value-identical between the planes —
the ``exec_sim`` benchmark gate and the differential tests hold both
planes to byte-identical outputs and decisions.
"""

from __future__ import annotations

import time
from collections import defaultdict
from itertools import product
from typing import Callable, Dict, List, Optional

from repro.dfs.filesystem import DistributedFileSystem
from repro.exceptions import ExecutionError, PlanError
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.shuffle import ShuffleBuffer
from repro.mapreduce.stats import JobStats, StoreStat
from repro.pig.physical.operators import (
    PhysicalOperator,
    POFilter,
    POForEach,
    POFRJoin,
    POGlobalRearrange,
    POLimit,
    POLoad,
    POLocalRearrange,
    POPackage,
    POSplit,
    POStore,
    POUnion,
)
from repro.relational.tuples import (
    Bag,
    Row,
    deserialize_row,
    iter_data_lines,
    serialize_row,
)

#: a compiled row handler: (row, source operator) -> None
Handler = Callable[[Row, Optional[PhysicalOperator]], None]


class JobInterpreter:
    """Executes one job plan against the DFS and reports statistics."""

    def __init__(
        self,
        job: MapReduceJob,
        dfs: DistributedFileSystem,
        n_reduce_tasks: int = 8,
        fast_data_plane: bool = True,
    ):
        self.job = job
        self.plan = job.plan
        self.dfs = dfs
        self.n_reduce_tasks = max(1, n_reduce_tasks)
        self.fast_data_plane = fast_data_plane
        self._shuffle: Optional[ShuffleBuffer] = None
        self._store_lines: Dict[int, List[str]] = defaultdict(list)
        self._store_rows: Dict[int, List[Row]] = defaultdict(list)
        self._limit_counts: Dict[int, int] = defaultdict(int)
        #: POFRJoin op_id -> [probe rows, build rows]
        self._frjoin_buffers: Dict[int, List[List[Row]]] = defaultdict(lambda: [[], []])
        self._op_records = 0
        self._map_output_records = 0
        self._reduce_phase_ids: set = set()
        #: POLocalRearrange op_id -> null-key policy (join semantics)
        self._null_key_policy: Dict[int, str] = {}
        self._null_counter = 0
        #: op_id -> compiled handler / successor handler list (fast plane)
        self._handlers: Dict[int, Handler] = {}
        self._succ_handlers: Dict[int, List[Handler]] = {}

    # -- public ------------------------------------------------------------------

    def run(self) -> JobStats:
        started = time.perf_counter()
        self.plan.validate()
        stats = JobStats(job_id=self.job.job_id, name=self.job.conf.name)

        gr = self.plan.global_rearrange()
        if gr is not None:
            package = self._package_after(gr)
            # ORDER BY: a single reduce partition gives the total order
            # (stands in for Pig's sample+range-partition sort pair).
            n_partitions = 1 if package.mode == "sort" else self.n_reduce_tasks
            self._shuffle = ShuffleBuffer(n_partitions)
            self._reduce_phase_ids = self.plan.downstream_closure(gr)
            self._configure_null_key_policy(package)

        # Map phase: stream every load's rows through its branch.
        for load in self.plan.loads():
            if load.schema is None:
                raise ExecutionError(f"load without schema: {load!r}")
            if self.fast_data_plane:
                # cached typed read: a matching pinned dataset skips
                # text parsing (and byte materialization) entirely
                rows = self.dfs.read_rows(load.path, load.schema)
                rows_read = len(rows)
                handlers = self._handlers_after(load)
                for row in rows:
                    for handler in handlers:
                        handler(row, load)
            else:
                rows_read = 0
                for line in iter_data_lines(self.dfs.read_text(load.path)):
                    row = deserialize_row(line, load.schema)
                    rows_read += 1
                    self._forward(load, row)
            stats.load_bytes[load.path] = self.dfs.file_size(load.path)
            stats.input_records += rows_read

        # Map-side joins: all inputs are buffered once the loads drain.
        self._finalize_frjoins()

        # Reduce phase.
        if gr is not None:
            package = self._package_after(gr)
            for key, branch_rows in self._shuffle.all_groups():
                stats.reduce_groups += 1
                for row in self._package_rows(package, key, branch_rows):
                    self._op_records += 1
                    self._forward(package, row)
            stats.shuffle_records = self._shuffle.records
            stats.shuffle_bytes = self._shuffle.bytes

        # Flush stores.
        for store in self.plan.stores():
            if self.fast_data_plane:
                rows = self._store_rows.get(store.op_id, [])
                status = self.dfs.write_rows(
                    store.path, rows, store.schema, overwrite=True
                )
                store_bytes, store_records = status.size, len(rows)
            else:
                lines = self._store_lines.get(store.op_id, [])
                text = "".join(line + "\n" for line in lines)
                self.dfs.write_file(store.path, text, overwrite=True)
                store_bytes, store_records = len(text.encode()), len(lines)
            stats.stores.append(
                StoreStat(
                    path=store.path,
                    bytes=store_bytes,
                    records=store_records,
                    phase="reduce" if store.op_id in self._reduce_phase_ids else "map",
                    side=store.side,
                )
            )

        stats.map_output_records = self._map_output_records
        stats.op_records = self._op_records
        stats.wall_seconds = time.perf_counter() - started
        return stats

    # -- row routing -------------------------------------------------------------------

    def _forward(self, op: PhysicalOperator, row: Row) -> None:
        if self.fast_data_plane:
            for handler in self._handlers_after(op):
                handler(row, op)
        else:
            for succ in self.plan.successors(op):
                self._process(succ, row, source=op)

    # -- compiled dispatch (fast plane) ------------------------------------------------

    def _handlers_after(self, op: PhysicalOperator) -> List[Handler]:
        handlers = self._succ_handlers.get(op.op_id)
        if handlers is None:
            handlers = [self._compile(succ) for succ in self.plan.successors(op)]
            self._succ_handlers[op.op_id] = handlers
        return handlers

    def _compile(self, op: PhysicalOperator) -> Handler:
        """One closure per operator, fusing straight-line map segments.

        Filter→foreach chains with single successors collapse into
        nested closures — one Python call per row per segment instead
        of the per-operator isinstance dispatch.  Counter increments
        mirror :meth:`_process` exactly: ``op_records`` moves once per
        operator visit on both planes.
        """
        handler = self._handlers.get(op.op_id)
        if handler is not None:
            return handler
        successors = self.plan.successors(op)
        if isinstance(op, POFilter) and len(successors) == 1:
            inner = self._compile(successors[0])
            predicate_eval = op.predicate.eval

            def handler(row, source, _op=op, _inner=inner):
                self._op_records += 1
                if bool(predicate_eval(row)):
                    _inner(row, _op)

        elif isinstance(op, POForEach) and len(successors) == 1:
            inner = self._compile(successors[0])

            def handler(row, source, _op=op, _inner=inner):
                self._op_records += 1
                for out in self._foreach_rows(_op, row):
                    _inner(out, _op)

        elif isinstance(op, POLocalRearrange):
            shuffle_add = None  # bound lazily: the buffer exists by first row

            def handler(row, source, _op=op):
                nonlocal shuffle_add
                self._op_records += 1
                key = _op.make_key(row)
                if _is_null_key(key):
                    policy = self._null_key_policy.get(_op.op_id, "keep")
                    if policy == "drop":
                        return  # Pig: null keys never match in inner joins
                    if policy == "isolate":
                        self._null_counter += 1
                        key = ("__null__", self._null_counter)
                if shuffle_add is None:
                    shuffle_add = self._shuffle.add
                shuffle_add(key, _op.branch, row)
                self._map_output_records += 1

        elif isinstance(op, POStore):
            append_row = self._store_rows[op.op_id].append

            def handler(row, source, _append=append_row):
                self._op_records += 1
                _append(row)

        elif isinstance(op, (POSplit, POUnion)):
            inner_handlers = None  # bound lazily: successors compile on demand

            def handler(row, source, _op=op):
                nonlocal inner_handlers
                self._op_records += 1
                if inner_handlers is None:
                    inner_handlers = self._handlers_after(_op)
                for inner in inner_handlers:
                    inner(row, _op)

        else:

            def handler(row, source, _op=op):
                self._process(_op, row, source=source)

        self._handlers[op.op_id] = handler
        return handler

    def _process(
        self,
        op: PhysicalOperator,
        row: Row,
        source: Optional[PhysicalOperator] = None,
    ) -> None:
        self._op_records += 1
        if isinstance(op, POFRJoin):
            branch = self._frjoin_branch(op, source)
            self._frjoin_buffers[op.op_id][branch].append(row)
        elif isinstance(op, POFilter):
            if bool(op.predicate.eval(row)):
                self._forward(op, row)
        elif isinstance(op, POForEach):
            for out in self._foreach_rows(op, row):
                self._forward(op, out)
        elif isinstance(op, POLocalRearrange):
            key = op.make_key(row)
            if _is_null_key(key):
                policy = self._null_key_policy.get(op.op_id, "keep")
                if policy == "drop":
                    return  # Pig: null keys never match in inner joins
                if policy == "isolate":
                    # outer-preserved side: the row survives, unmatched
                    self._null_counter += 1
                    key = ("__null__", self._null_counter)
            self._shuffle.add(key, op.branch, row)
            self._map_output_records += 1
        elif isinstance(op, POStore):
            if self.fast_data_plane:
                self._store_rows[op.op_id].append(row)
            else:
                self._store_lines[op.op_id].append(serialize_row(row))
        elif isinstance(op, (POSplit, POUnion)):
            self._forward(op, row)
        elif isinstance(op, POLimit):
            if self._limit_counts[op.op_id] < op.n:
                self._limit_counts[op.op_id] += 1
                self._forward(op, row)
        elif isinstance(op, (POGlobalRearrange, POPackage, POLoad)):
            raise ExecutionError(f"operator {op!r} cannot appear mid-pipeline")
        else:
            raise PlanError(f"interpreter cannot execute {op!r}")

    def _configure_null_key_policy(self, package: POPackage) -> None:
        """Pig join semantics for null keys: dropped on inner sides,
        preserved-but-unmatched on outer-preserved sides; GROUP and
        COGROUP keep nulls (they form their own group)."""
        if package.mode != "join":
            return
        for gr in self.plan.predecessors(package):
            for lr in self.plan.predecessors(gr):
                if isinstance(lr, POLocalRearrange):
                    preserved = (
                        lr.branch < len(package.outer_flags)
                        and package.outer_flags[lr.branch]
                    )
                    self._null_key_policy[lr.op_id] = (
                        "isolate" if preserved else "drop"
                    )

    # -- fragment-replicate join ------------------------------------------------------------

    def _frjoin_branch(self, op: POFRJoin, source: Optional[PhysicalOperator]) -> int:
        preds = self.plan.predecessors(op)
        if source is not None:
            for branch, pred in enumerate(preds):
                if pred.op_id == source.op_id:
                    return branch
        raise ExecutionError("frjoin received a row from an unknown input")

    def _finalize_frjoins(self) -> None:
        """Hash-join buffered inputs; topological order chains joins."""
        for op in self.plan.topo_order():
            if not isinstance(op, POFRJoin):
                continue
            probe_rows, build_rows = self._frjoin_buffers[op.op_id]
            table: Dict[object, List[Row]] = defaultdict(list)
            for row in build_rows:
                key = op.make_key(1, row)
                if not _is_null_key(key):
                    table[key].append(row)
            for row in probe_rows:
                key = op.make_key(0, row)
                if _is_null_key(key):
                    continue
                for match in table.get(key, ()):
                    self._op_records += 1
                    self._forward(op, tuple(row) + tuple(match))

    # -- foreach ----------------------------------------------------------------------------

    def _foreach_rows(self, op: POForEach, row: Row):
        """Evaluate a FOREACH, expanding FLATTEN cross products."""
        scalar_or_items = []
        for expr, flatten in zip(op.exprs, op.flattens):
            value = expr.eval(row)
            if flatten:
                items = _as_flatten_items(value)
                if not items:
                    return  # flatten of an empty bag drops the row
                scalar_or_items.append(("flat", items))
            else:
                if isinstance(value, list):
                    value = Bag(v if isinstance(v, tuple) else (v,) for v in value)
                scalar_or_items.append(("scalar", value))

        flat_groups = [items for tag, items in scalar_or_items if tag == "flat"]
        if not flat_groups:
            yield tuple(value for _, value in scalar_or_items)
            return
        for combo in product(*flat_groups):
            out: List = []
            flat_index = 0
            for tag, value in scalar_or_items:
                if tag == "flat":
                    out.extend(combo[flat_index])
                    flat_index += 1
                else:
                    out.append(value)
            yield tuple(out)

    # -- package -----------------------------------------------------------------------------

    def _package_after(self, gr: POGlobalRearrange) -> POPackage:
        succs = self.plan.successors(gr)
        if len(succs) != 1 or not isinstance(succs[0], POPackage):
            raise PlanError("global rearrange must feed exactly one package")
        return succs[0]

    def _package_rows(self, package: POPackage, key, branch_rows: Dict[int, List[Row]]):
        mode = package.mode
        if mode == "group":
            yield (key, Bag(branch_rows.get(0, [])))
            return
        if mode == "distinct":
            first_branch = min(branch_rows)
            yield branch_rows[first_branch][0]
            return
        if mode == "sort":
            for row in branch_rows.get(0, []):
                yield row
            return
        # cogroup / join: one bag per declared input branch
        bags = [Bag(branch_rows.get(i, [])) for i in range(package.n_inputs)]
        if mode == "join":
            for i, bag in enumerate(bags):
                if len(bag) == 0:
                    preserved_elsewhere = any(
                        package.outer_flags[j] and len(bags[j]) > 0
                        for j in range(package.n_inputs)
                        if j != i
                    )
                    if preserved_elsewhere:
                        bags[i] = Bag([self._null_row_for_branch(package, i)])
                    else:
                        return  # inner-join semantics: drop the key
        yield (key, *bags)

    def _null_row_for_branch(self, package: POPackage, branch: int) -> Row:
        """All-null padding tuple for outer joins."""
        if package.schema is not None and branch + 1 < len(package.schema):
            inner = package.schema[branch + 1].inner
            if inner is not None:
                return tuple([None] * len(inner))
        raise ExecutionError(
            "outer join requires package schema with inner bag schemas"
        )


def _is_null_key(key) -> bool:
    """A join key is null when any component is null (SQL semantics)."""
    if key is None:
        return True
    if isinstance(key, tuple):
        return any(k is None for k in key)
    return False


def _as_flatten_items(value) -> List[tuple]:
    """Normalize a flattened value into a list of field tuples."""
    if value is None:
        return []
    if isinstance(value, Bag):
        return [tuple(r) for r in value]
    if isinstance(value, list):
        return [v if isinstance(v, tuple) else (v,) for v in value]
    if isinstance(value, tuple):
        return [value]
    return [(value,)]
