"""Row-level execution of physical plans inside simulated MR tasks."""

from repro.execution.interpreter import JobInterpreter

__all__ = ["JobInterpreter"]
