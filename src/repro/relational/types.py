"""Data types for the relational substrate.

Pig models tuples of typed fields.  We support the scalar types used by
PigMix (int, long, float, double, chararray) plus the nested bag/tuple
types produced by GROUP/COGROUP.  Values travel through the engine as
plain Python objects; this module centralizes parsing, casting and
text serialization (the PigStorage format: tab-separated fields, bags
rendered as ``{(f1,f2),(f1,f2)}``).
"""

from __future__ import annotations

import enum
from typing import Any

from repro.exceptions import SchemaError


class DataType(enum.Enum):
    """Scalar and nested field types, mirroring Pig's type system."""

    INT = "int"
    LONG = "long"
    FLOAT = "float"
    DOUBLE = "double"
    CHARARRAY = "chararray"
    BOOLEAN = "boolean"
    BYTEARRAY = "bytearray"
    TUPLE = "tuple"
    BAG = "bag"

    @property
    def is_numeric(self) -> bool:
        return self in _NUMERIC

    @property
    def is_nested(self) -> bool:
        return self in (DataType.TUPLE, DataType.BAG)

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        try:
            return cls(name.lower())
        except ValueError:
            raise SchemaError(f"unknown data type: {name!r}") from None


_NUMERIC = frozenset({DataType.INT, DataType.LONG, DataType.FLOAT, DataType.DOUBLE})

_PYTHON_TYPES = {
    DataType.INT: int,
    DataType.LONG: int,
    DataType.FLOAT: float,
    DataType.DOUBLE: float,
    DataType.CHARARRAY: str,
    DataType.BOOLEAN: bool,
    DataType.BYTEARRAY: str,
}


def python_type(dtype: DataType) -> type:
    """Return the Python type used to represent *dtype* values."""
    if dtype.is_nested:
        return tuple if dtype is DataType.TUPLE else list
    return _PYTHON_TYPES[dtype]


def cast_value(value: Any, dtype: DataType) -> Any:
    """Cast *value* to *dtype*, returning ``None`` unchanged.

    Mirrors Pig's permissive casts: numeric strings cast to numbers,
    numbers widen/narrow between int and float.
    """
    if value is None:
        return None
    if dtype is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            return value.strip().lower() in ("true", "1")
        return bool(value)
    if dtype.is_nested:
        return value
    target = _PYTHON_TYPES[dtype]
    if isinstance(value, target) and not (target is int and isinstance(value, bool)):
        return value
    try:
        if target is int and isinstance(value, str):
            # Pig parses "3.0" as a double then narrows; accept both forms.
            return int(float(value)) if "." in value else int(value)
        return target(value)
    except (TypeError, ValueError):
        raise SchemaError(f"cannot cast {value!r} to {dtype.value}") from None


def parse_text(text: str, dtype: DataType) -> Any:
    """Parse one PigStorage field into a typed value.

    Empty text parses to ``None`` (Pig's null), matching how PigStorage
    round-trips missing values.
    """
    if text == "":
        return None
    if dtype is DataType.BAG:
        return parse_bag(text)
    if dtype is DataType.TUPLE:
        return parse_tuple(text)
    return cast_value(text, dtype)


def format_value(value: Any) -> str:
    """Serialize a field value in PigStorage text form."""
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        # repr keeps round-trip precision while staying compact for
        # common values (1.5 rather than 1.50000...).
        return repr(value)
    if isinstance(value, (list,)):
        return format_bag(value)
    if isinstance(value, tuple):
        return format_tuple(value)
    return str(value)


def format_tuple(row: tuple) -> str:
    return "(" + ",".join(format_value(v) for v in row) + ")"


def format_bag(bag: list) -> str:
    return "{" + ",".join(format_tuple(t) for t in bag) + "}"


def parse_tuple(text: str) -> tuple:
    """Parse ``(a,b,c)`` into a tuple of strings (untyped fields).

    Nested bag/tuple values are parsed recursively.  Field typing for
    nested data is applied by callers that know the inner schema.
    """
    if not (text.startswith("(") and text.endswith(")")):
        raise SchemaError(f"malformed tuple text: {text!r}")
    return tuple(_split_nested(text[1:-1]))


def parse_bag(text: str) -> list:
    """Parse ``{(a,b),(c,d)}`` into a list of tuples."""
    if not (text.startswith("{") and text.endswith("}")):
        raise SchemaError(f"malformed bag text: {text!r}")
    inner = text[1:-1]
    if not inner:
        return []
    parts = _split_nested(inner)
    return [
        part if isinstance(part, tuple) else parse_tuple(part)
        for part in parts
    ]


def _split_nested(text: str) -> list:
    """Split on commas not enclosed in parentheses or braces."""
    parts: list = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch in "({":
            depth += 1
            current.append(ch)
        elif ch in ")}":
            depth -= 1
            current.append(ch)
        elif ch == "," and depth == 0:
            parts.append(_finish_part("".join(current)))
            current = []
        else:
            current.append(ch)
    if current or parts:
        parts.append(_finish_part("".join(current)))
    return parts


def _finish_part(part: str):
    part = part.strip()
    if part.startswith("("):
        return parse_tuple(part)
    if part.startswith("{"):
        return parse_bag(part)
    return part
