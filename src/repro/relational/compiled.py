"""Expression compilation: closures that evaluate like ``expr.eval``.

The batched data plane processes chunks of rows with one Python call
per operator per chunk; what remains per-row is the expression work
itself.  Walking an :class:`~repro.relational.expressions.Expression`
tree costs one method call plus attribute chasing per node per row —
``compile_expression`` pays that walk once, at operator-compile time,
and returns a closure graph with every child pre-bound, so evaluating
a predicate or projection is a single call into straight-line code.

The contract is strict value-identity: for every expression *e* and
row *r*, ``compile_expression(e)(r) == e.eval(r)`` (including ``None``
propagation, short-circuit semantics, and live ``SCALAR_FUNCTIONS``
lookup so UDF re-registration behaves exactly as interpreted
evaluation does).  The batch-vs-row differential tests hold the two
paths to byte-identical outputs; an unknown :class:`Expression`
subclass simply falls back to its bound ``eval``.
"""

from __future__ import annotations

import zlib
from operator import itemgetter
from typing import Any, Callable

from repro.relational.expressions import (
    _BINOPS,
    AGGREGATE_FUNCTIONS,
    SCALAR_FUNCTIONS,
    AggCall,
    BagField,
    BagStar,
    BinaryOp,
    Column,
    Const,
    Expression,
    FuncCall,
    RowSample,
    UnaryOp,
)
from repro.relational.tuples import Bag, Row

#: a compiled expression: row -> value, semantics of Expression.eval
CompiledExpr = Callable[[Row], Any]


def compile_expression(expr: Expression) -> CompiledExpr:
    """A closure computing exactly ``expr.eval`` (see module docs)."""
    if type(expr) is Column:
        return itemgetter(expr.index)
    if type(expr) is Const:
        value = expr.value
        return lambda row: value
    if type(expr) is BinaryOp:
        return _compile_binary(expr)
    if type(expr) is UnaryOp:
        return _compile_unary(expr)
    if type(expr) is FuncCall:
        # the function is looked up per call, like FuncCall.eval, so
        # register_udf/unregister_udf between compile and eval behave
        # identically on both planes
        args = tuple(compile_expression(a) for a in expr.args)
        name = expr.name.upper()

        def run_func(row, _args=args, _name=name):
            return SCALAR_FUNCTIONS[_name](*(a(row) for a in _args))

        return run_func
    if type(expr) is AggCall:
        # aggregates are a closed builtin set (register_udf refuses
        # collisions), so the function binds at compile time
        fn = AGGREGATE_FUNCTIONS[expr.name.upper()]
        arg = compile_expression(expr.arg)

        def run_agg(row, _fn=fn, _arg=arg):
            return _fn(_arg(row))

        return run_agg
    if type(expr) is BagField:
        return _compile_bagfield(expr)
    if type(expr) is BagStar:
        index = expr.bag_index

        def run_bagstar(row, _i=index):
            bag = row[_i]
            if bag is None:
                return []
            return list(bag)

        return run_bagstar
    if type(expr) is RowSample:
        threshold = expr.fraction * 1_000_000
        crc32 = zlib.crc32

        def run_sample(row, _t=threshold, _crc=crc32):
            return _crc(repr(row).encode()) % 1_000_000 < _t

        return run_sample
    # unknown subclass (user extension): interpreted evaluation
    return expr.eval


def _compile_binary(expr: BinaryOp) -> CompiledExpr:
    op = expr.op
    if op not in ("and", "or"):
        # the dominant predicate shapes — column vs constant and
        # column vs column — skip the child closures entirely
        fn = _BINOPS[op]
        if (
            type(expr.left) is Column
            and type(expr.right) is Const
            and expr.right.value is not None
        ):

            def run_col_const(
                row, _i=expr.left.index, _c=expr.right.value, _fn=fn
            ):
                a = row[_i]
                if a is None:
                    return None
                return _fn(a, _c)

            return run_col_const
        if type(expr.left) is Column and type(expr.right) is Column:

            def run_col_col(row, _i=expr.left.index, _j=expr.right.index, _fn=fn):
                a = row[_i]
                b = row[_j]
                if a is None or b is None:
                    return None
                return _fn(a, b)

            return run_col_col
    left = compile_expression(expr.left)
    right = compile_expression(expr.right)
    if op == "and":

        def run_and(row, _l=left, _r=right):
            return bool(_l(row)) and bool(_r(row))

        return run_and
    if op == "or":

        def run_or(row, _l=left, _r=right):
            return bool(_l(row)) or bool(_r(row))

        return run_or
    fn = _BINOPS[op]

    def run_bin(row, _l=left, _r=right, _fn=fn):
        a = _l(row)
        if a is None:
            # match eval: both operands are always evaluated
            _r(row)
            return None
        b = _r(row)
        if b is None:
            return None
        return _fn(a, b)

    return run_bin


def _compile_unary(expr: UnaryOp) -> CompiledExpr:
    operand = compile_expression(expr.operand)
    op = expr.op
    if op == "not":

        def run_not(row, _o=operand):
            value = _o(row)
            return None if value is None else not bool(value)

        return run_not
    if op == "neg":

        def run_neg(row, _o=operand):
            value = _o(row)
            return None if value is None else -value

        return run_neg
    if op == "isnull":
        return lambda row, _o=operand: _o(row) is None
    if op == "notnull":
        return lambda row, _o=operand: _o(row) is not None
    # unreachable for well-formed trees; keep eval's error behaviour
    return expr.eval


def _compile_bagfield(expr: BagField) -> CompiledExpr:
    bag_index = expr.bag_index
    field_index = expr.field_index

    def run_bagfield(row, _b=bag_index, _f=field_index):
        bag = row[_b]
        if bag is None:
            return []
        if isinstance(bag, Bag):
            return bag.project(_f)
        return [r[_f] for r in bag]

    return run_bagfield


#: comparison operators whose results are plain bools, eligible for
#: inline filter code generation
_CMP_SOURCE = {
    "==": "==",
    "!=": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def compile_filter_list(predicate: Expression):
    """A chunk filter ``rows -> [row for row in rows if <pred>]``.

    The dominant predicate shape — ``column <cmp> constant`` — is
    generated as an *inline* comprehension condition, removing even
    the one compiled-closure call per row.  Truthiness matches
    ``bool(predicate.eval(row))`` exactly: a null column makes eval
    return None (falsy) and the generated ``is not None and ...``
    conjunction False.  Every other shape filters through the compiled
    closure.
    """
    if (
        type(predicate) is BinaryOp
        and predicate.op in _CMP_SOURCE
        and type(predicate.left) is Column
        and type(predicate.right) is Const
        and predicate.right.value is not None
    ):
        index = predicate.left.index
        source = (
            "lambda _c: lambda rows: [row for row in rows "
            f"if row[{index}] is not None and row[{index}] "
            f"{_CMP_SOURCE[predicate.op]} _c]"
        )
        return eval(source)(predicate.right.value)  # noqa: S307 - static source
    compiled = compile_expression(predicate)

    def filter_rows(rows, _pred=compiled):
        return [row for row in rows if _pred(row)]

    return filter_rows


def compile_projection(exprs, flattens) -> CompiledExpr | None:
    """A closure mapping one row to one FOREACH output row.

    Only the non-FLATTEN case compiles (one input row, exactly one
    output row); FLATTEN expands cross products and stays on the
    interpreted per-row path.  Mirrors the scalar branch of
    ``JobInterpreter._foreach_rows``: a bare ``list`` result (a
    projected bag field) is wrapped into a :class:`Bag` of tuples.
    """
    if any(flattens):
        return None
    compiled = tuple(compile_expression(e) for e in exprs)

    def project(row, _exprs=compiled):
        out = []
        for expr in _exprs:
            value = expr(row)
            if isinstance(value, list):
                value = Bag(v if isinstance(v, tuple) else (v,) for v in value)
            out.append(value)
        return tuple(out)

    return project


def compile_key(key_exprs) -> CompiledExpr:
    """A closure computing ``POLocalRearrange.make_key`` exactly."""
    if len(key_exprs) == 1:
        return compile_expression(key_exprs[0])
    compiled = tuple(compile_expression(e) for e in key_exprs)

    def make_key(row, _exprs=compiled):
        return tuple(e(row) for e in _exprs)

    return make_key
