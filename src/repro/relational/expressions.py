"""Expression trees evaluated over rows.

Expressions are built by the logical-plan builder with all field
references *resolved to positions*, so evaluation never consults a
schema and — crucially for ReStore — two queries that compute the same
thing over the same inputs produce identical expression fingerprints
even when their Pig aliases differ.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, Tuple

from repro.exceptions import ExpressionError
from repro.relational.tuples import Bag, Row


class Expression:
    """Base class: something evaluable against one row."""

    def eval(self, row: Row) -> Any:
        raise NotImplementedError

    def fingerprint(self) -> tuple:
        """A hashable canonical form used for operator equivalence."""
        raise NotImplementedError

    def references(self) -> frozenset:
        """Indexes of the input fields this expression reads."""
        raise NotImplementedError

    def to_dict(self) -> dict:
        raise NotImplementedError

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Expression)
            and self.fingerprint() == other.fingerprint()
        )

    def __hash__(self) -> int:
        return hash(self.fingerprint())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.fingerprint()!r})"


@dataclass(frozen=True, eq=False)
class Column(Expression):
    """A positional reference to one input field.

    ``name`` is carried for readable plan rendering only; it does not
    participate in equivalence (aliases differ across queries).
    """

    index: int
    name: str = ""

    def eval(self, row: Row) -> Any:
        return row[self.index]

    def fingerprint(self) -> tuple:
        return ("col", self.index)

    def references(self) -> frozenset:
        return frozenset((self.index,))

    def to_dict(self) -> dict:
        return {"kind": "col", "index": self.index, "name": self.name}


@dataclass(frozen=True, eq=False)
class Const(Expression):
    value: Any = None

    def eval(self, row: Row) -> Any:
        return self.value

    def fingerprint(self) -> tuple:
        return ("const", type(self.value).__name__, self.value)

    def references(self) -> frozenset:
        return frozenset()

    def to_dict(self) -> dict:
        return {"kind": "const", "value": self.value}


_BINOPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b not in (0, 0.0) else None,
    "%": lambda a, b: a % b if b not in (0, 0.0) else None,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True, eq=False)
class BinaryOp(Expression):
    op: str
    left: Expression = None
    right: Expression = None

    def __post_init__(self):
        if self.op not in _BINOPS and self.op not in ("and", "or"):
            raise ExpressionError(f"unknown binary operator {self.op!r}")

    def eval(self, row: Row) -> Any:
        if self.op == "and":
            return bool(self.left.eval(row)) and bool(self.right.eval(row))
        if self.op == "or":
            return bool(self.left.eval(row)) or bool(self.right.eval(row))
        a = self.left.eval(row)
        b = self.right.eval(row)
        if a is None or b is None:
            return None
        return _BINOPS[self.op](a, b)

    def fingerprint(self) -> tuple:
        return ("bin", self.op, self.left.fingerprint(), self.right.fingerprint())

    def references(self) -> frozenset:
        return self.left.references() | self.right.references()

    def to_dict(self) -> dict:
        return {
            "kind": "bin",
            "op": self.op,
            "left": self.left.to_dict(),
            "right": self.right.to_dict(),
        }


@dataclass(frozen=True, eq=False)
class UnaryOp(Expression):
    op: str
    operand: Expression = None

    def eval(self, row: Row) -> Any:
        value = self.operand.eval(row)
        if self.op == "not":
            return None if value is None else not bool(value)
        if self.op == "neg":
            return None if value is None else -value
        if self.op == "isnull":
            return value is None
        if self.op == "notnull":
            return value is not None
        raise ExpressionError(f"unknown unary operator {self.op!r}")

    def fingerprint(self) -> tuple:
        return ("un", self.op, self.operand.fingerprint())

    def references(self) -> frozenset:
        return self.operand.references()

    def to_dict(self) -> dict:
        return {"kind": "un", "op": self.op, "operand": self.operand.to_dict()}


# -- scalar functions ----------------------------------------------------------

def _null_safe(fn: Callable) -> Callable:
    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapper


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "CONCAT": _null_safe(lambda a, b: str(a) + str(b)),
    "UPPER": _null_safe(lambda a: str(a).upper()),
    "LOWER": _null_safe(lambda a: str(a).lower()),
    "SUBSTRING": _null_safe(lambda s, i, j: str(s)[int(i):int(j)]),
    "STRSPLIT": _null_safe(lambda s, sep: tuple(str(s).split(str(sep)))),
    "SIZE": lambda a: None if a is None else len(a),
    "ABS": _null_safe(abs),
    "ROUND": _null_safe(lambda a: int(round(a))),
    "FLOOR": _null_safe(math.floor),
    "CEIL": _null_safe(math.ceil),
    "LOG": _null_safe(lambda a: math.log(a) if a > 0 else None),
}


def register_udf(name: str, fn: Callable, null_safe: bool = True) -> None:
    """Register a Python scalar UDF usable from Pig Latin.

    The function is called positionally with the evaluated arguments.
    With ``null_safe`` (the default, matching most Pig builtins) any
    None argument short-circuits to None.  UDFs must be deterministic:
    their results may be materialized in the ReStore repository and
    reused by later queries.
    """
    key = name.upper()
    if key in AGGREGATE_FUNCTIONS:
        raise ExpressionError(f"{name!r} collides with an aggregate builtin")
    SCALAR_FUNCTIONS[key] = _null_safe(fn) if null_safe else fn


def unregister_udf(name: str) -> None:
    """Remove a previously registered UDF (no-op for builtins' sake is
    not attempted: removing a builtin is allowed but discouraged)."""
    SCALAR_FUNCTIONS.pop(name.upper(), None)


@dataclass(frozen=True, eq=False)
class FuncCall(Expression):
    """A scalar builtin applied to argument expressions."""

    name: str
    args: Tuple[Expression, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "args", tuple(self.args))
        if self.name.upper() not in SCALAR_FUNCTIONS:
            raise ExpressionError(f"unknown scalar function {self.name!r}")

    def eval(self, row: Row) -> Any:
        fn = SCALAR_FUNCTIONS[self.name.upper()]
        return fn(*(a.eval(row) for a in self.args))

    def fingerprint(self) -> tuple:
        return ("func", self.name.upper()) + tuple(a.fingerprint() for a in self.args)

    def references(self) -> frozenset:
        out: frozenset = frozenset()
        for a in self.args:
            out = out | a.references()
        return out

    def to_dict(self) -> dict:
        return {
            "kind": "func",
            "name": self.name.upper(),
            "args": [a.to_dict() for a in self.args],
        }


# -- aggregates over bags -------------------------------------------------------

def _agg_sum(values):
    values = [v for v in values if v is not None]
    return sum(values) if values else None


def _agg_avg(values):
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else None


def _agg_min(values):
    values = [v for v in values if v is not None]
    return min(values) if values else None


def _agg_max(values):
    values = [v for v in values if v is not None]
    return max(values) if values else None


def _agg_count(values):
    return sum(1 for v in values if v is not None)


AGGREGATE_FUNCTIONS: Dict[str, Callable] = {
    "SUM": _agg_sum,
    "AVG": _agg_avg,
    "MIN": _agg_min,
    "MAX": _agg_max,
    "COUNT": _agg_count,
    "COUNT_STAR": len,
}


@dataclass(frozen=True, eq=False)
class BagField(Expression):
    """``C.est_revenue`` — one field of every tuple in a grouped bag.

    Evaluates to the list of field values; only meaningful as the
    argument of an :class:`AggCall` or FLATTEN.
    """

    bag_index: int
    field_index: int
    name: str = ""

    def eval(self, row: Row):
        bag = row[self.bag_index]
        if bag is None:
            return []
        return bag.project(self.field_index) if isinstance(bag, Bag) else [
            r[self.field_index] for r in bag
        ]

    def fingerprint(self) -> tuple:
        return ("bagfield", self.bag_index, self.field_index)

    def references(self) -> frozenset:
        return frozenset((self.bag_index,))

    def to_dict(self) -> dict:
        return {
            "kind": "bagfield",
            "bag_index": self.bag_index,
            "field_index": self.field_index,
        }


@dataclass(frozen=True, eq=False)
class BagStar(Expression):
    """``C`` or ``C.*`` — all tuples of a grouped bag (for COUNT)."""

    bag_index: int

    def eval(self, row: Row):
        bag = row[self.bag_index]
        if bag is None:
            return []
        return list(bag)

    def fingerprint(self) -> tuple:
        return ("bagstar", self.bag_index)

    def references(self) -> frozenset:
        return frozenset((self.bag_index,))

    def to_dict(self) -> dict:
        return {"kind": "bagstar", "bag_index": self.bag_index}


@dataclass(frozen=True, eq=False)
class AggCall(Expression):
    """An aggregate (SUM/AVG/MIN/MAX/COUNT) over a bag expression."""

    name: str
    arg: Expression = None

    def __post_init__(self):
        if self.name.upper() not in AGGREGATE_FUNCTIONS:
            raise ExpressionError(f"unknown aggregate function {self.name!r}")

    def eval(self, row: Row) -> Any:
        values = self.arg.eval(row)
        return AGGREGATE_FUNCTIONS[self.name.upper()](values)

    def fingerprint(self) -> tuple:
        return ("agg", self.name.upper(), self.arg.fingerprint())

    def references(self) -> frozenset:
        return self.arg.references()

    def to_dict(self) -> dict:
        return {"kind": "agg", "name": self.name.upper(), "arg": self.arg.to_dict()}


@dataclass(frozen=True, eq=False)
class RowSample(Expression):
    """Deterministic row sampling predicate (Pig's SAMPLE).

    Keeps a row when a content-stable hash of the whole row falls under
    the fraction — deterministic across runs, so sampled sub-jobs are
    reusable like any other stored result.
    """

    fraction: float = 0.1

    def eval(self, row: Row) -> bool:
        import zlib

        bucket = zlib.crc32(repr(row).encode()) % 1_000_000
        return bucket < self.fraction * 1_000_000

    def fingerprint(self) -> tuple:
        return ("rowsample", round(self.fraction, 9))

    def references(self) -> frozenset:
        return frozenset()

    def to_dict(self) -> dict:
        return {"kind": "rowsample", "fraction": self.fraction}


# -- serialization --------------------------------------------------------------

def expression_from_dict(data: dict) -> Expression:
    """Inverse of ``Expression.to_dict`` for repository persistence."""
    kind = data["kind"]
    if kind == "col":
        return Column(data["index"], data.get("name", ""))
    if kind == "const":
        return Const(data["value"])
    if kind == "bin":
        return BinaryOp(
            data["op"],
            expression_from_dict(data["left"]),
            expression_from_dict(data["right"]),
        )
    if kind == "un":
        return UnaryOp(data["op"], expression_from_dict(data["operand"]))
    if kind == "func":
        return FuncCall(
            data["name"], tuple(expression_from_dict(a) for a in data["args"])
        )
    if kind == "bagfield":
        return BagField(data["bag_index"], data["field_index"])
    if kind == "bagstar":
        return BagStar(data["bag_index"])
    if kind == "agg":
        return AggCall(data["name"], expression_from_dict(data["arg"]))
    if kind == "rowsample":
        return RowSample(data["fraction"])
    raise ExpressionError(f"unknown expression kind {kind!r}")
