"""Relational substrate: types, schemas, rows, bags and expressions."""

from repro.relational.expressions import (
    AggCall,
    BagField,
    BagStar,
    BinaryOp,
    Column,
    Const,
    Expression,
    FuncCall,
    RowSample,
    UnaryOp,
    expression_from_dict,
    register_udf,
    unregister_udf,
)
from repro.relational.schema import FieldSchema, Schema
from repro.relational.tuples import (
    Bag,
    Row,
    deserialize_row,
    deserialize_rows,
    serialize_row,
    serialize_rows,
)
from repro.relational.types import DataType, cast_value, format_value, parse_text

__all__ = [
    "AggCall",
    "Bag",
    "BagField",
    "BagStar",
    "BinaryOp",
    "Column",
    "Const",
    "DataType",
    "Expression",
    "FieldSchema",
    "FuncCall",
    "Row",
    "RowSample",
    "Schema",
    "UnaryOp",
    "cast_value",
    "deserialize_row",
    "deserialize_rows",
    "expression_from_dict",
    "format_value",
    "parse_text",
    "register_udf",
    "serialize_row",
    "unregister_udf",
    "serialize_rows",
]
