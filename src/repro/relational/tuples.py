"""Row and bag representations plus PigStorage (de)serialization.

Rows are plain Python tuples — cheap, hashable, and directly usable as
shuffle keys.  :class:`Bag` wraps the lists of tuples produced by
GROUP/COGROUP so downstream code can ask for sizes and samples without
caring about the underlying container.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Iterator, List, Tuple

from repro.relational.schema import Schema
from repro.relational.types import DataType, format_tuple, format_value, parse_text

Row = Tuple


class Bag:
    """A collection of rows grouped under one key.

    Pig bags are unordered multisets; we preserve arrival order for
    determinism (important for reproducible experiments and tests).
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Iterable[Row] = ()):
        self._rows: List[Row] = list(rows)

    def append(self, row: Row) -> None:
        self._rows.append(row)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, Bag):
            return self._rows == other._rows
        if isinstance(other, list):
            return self._rows == other
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(repr(r) for r in self._rows[:3])
        suffix = ", ..." if len(self._rows) > 3 else ""
        return f"Bag([{preview}{suffix}], n={len(self._rows)})"

    @property
    def rows(self) -> List[Row]:
        return self._rows

    def project(self, index: int) -> List:
        """Extract one field from every row (used by aggregates)."""
        getter = _ITEMGETTERS[index] if 0 <= index < 16 else itemgetter(index)
        return list(map(getter, self._rows))


def serialize_row(row: Row) -> str:
    """Render a row as one PigStorage line (tab-separated fields)."""
    return "\t".join(_serialize_field(v) for v in row)


def serialized_row_size(row: Row) -> int:
    """``len(serialize_row(row))`` without building the joined line.

    The shuffle accounts map-output wire bytes per record and the
    zero-copy write path accounts store bytes per file; both need the
    serialized length, neither needs the text.  Strings and nulls (the
    bulk of PigMix traffic) contribute their length without any
    allocation; numbers render just the one field; bags and tuples
    recurse structurally instead of building the nested text.  Must
    stay value-identical to the serialized length —
    ``tests/test_shuffle.py`` and the Hypothesis properties assert the
    equality.
    """
    if not row:
        return 0
    total = len(row) - 1  # the tab separators
    for value in row:
        if value is None:
            continue
        kind = type(value)
        # the scalar cases are inlined: this runs once per shuffle
        # record and once per stored row, and the dispatch hop through
        # _field_size/format_value_size was measurable in exec_sim
        if kind is str:
            total += len(value)
        elif kind is int:
            total += len(str(value))
        elif kind is float:
            total += len(repr(value))
        elif kind is bool:
            total += 4 if value else 5
        else:
            total += _field_size(value)
    return total


def serialized_rows_size(rows) -> int:
    """``sum(serialized_row_size(r) for r in rows)`` — columnar.

    The batched shuffle accounts a whole chunk's wire bytes at once:
    when every row is a same-length tuple, each field is summed as a
    column through C-level ``map``/``sum`` passes keyed by the exact
    type set (the dispatch :func:`serialized_row_size` does per value,
    hoisted to once per column); any mixed or nested column falls back
    to the per-value dispatch just for that column.  Value-identical
    to the per-row sum — ``tests/test_shuffle.py`` pins it down.
    """
    n_rows = len(rows)
    if n_rows == 0:
        return 0
    lens = list(map(len, rows))
    width = lens[0]
    if set(map(type, rows)) != {tuple} or set(lens) != {width}:
        return sum(map(serialized_row_size, rows))
    total = n_rows * max(0, width - 1)  # tab separators
    for index in range(width):
        getter = _ITEMGETTERS[index] if index < 16 else itemgetter(index)
        column = list(map(getter, rows))
        types = set(map(type, column))
        if _NoneType in types:
            types.discard(_NoneType)
            column = [value for value in column if value is not None]
        if not types:
            continue
        if types == {str}:
            total += sum(map(len, column))
        elif types == {int}:
            total += sum(map(len, map(str, column)))
        elif types == {float}:
            total += sum(map(len, map(repr, column)))
        elif types == {bool}:
            total += 5 * len(column) - sum(column)
        else:
            # mixed or nested column: per-value dispatch, same math
            for value in column:
                kind = type(value)
                if kind is str:
                    total += len(value)
                elif kind is int:
                    total += len(str(value))
                elif kind is float:
                    total += len(repr(value))
                elif kind is bool:
                    total += 4 if value else 5
                else:
                    total += _field_size(value)
    return total


_NoneType = type(None)
#: pre-built getters for the first 16 columns (plenty for real plans)
_ITEMGETTERS = tuple(itemgetter(i) for i in range(16))


def _field_size(value) -> int:
    """Character length of ``_serialize_field(value)`` for one field.

    Mirrors ``_serialize_field`` exactly: a Bag *field* renders as bag
    text, but everything nested below goes through ``format_value``
    semantics (where a Bag inside a tuple falls to ``str``) — sizes
    must track the real serialization byte for byte, however odd.
    """
    if type(value) is Bag:
        return _bag_size(value.rows)
    return format_value_size(value)


def format_value_size(value) -> int:
    """Character length of ``format_value(value)`` without building it.

    The single home of the per-type size math (bool -> 4/5, int ->
    len(str), float -> len(repr), str -> len, nested -> structural
    recursion); the typed-dataset cache's fused sizers delegate here
    so serialization and sizing can never drift apart.
    """
    kind = type(value)
    if kind is str:
        return len(value)
    if kind is bool:
        return 4 if value else 5
    if kind is int:
        return len(str(value))
    if kind is float:
        return len(repr(value))
    if kind is list:
        return _bag_size(value)
    if kind is tuple:
        return _tuple_size(value)
    return len(format_value(value))


def _tuple_size(row: tuple) -> int:
    # "(" + ",".join(format_value(v)) + ")"
    total = 2 + max(0, len(row) - 1)
    for value in row:
        if value is not None:
            total += format_value_size(value)
    return total


def _bag_size(rows: List[Row]) -> int:
    # "{" + ",".join(format_tuple(t)) + "}"
    total = 2 + max(0, len(rows) - 1)
    for row in rows:
        total += _tuple_size(row) if type(row) is tuple else len(format_tuple(row))
    return total


def _serialize_field(value) -> str:
    if isinstance(value, Bag):
        return format_value(value.rows)
    return format_value(value)


def deserialize_row(line: str, schema: Schema) -> Row:
    """Parse one PigStorage line using *schema* for field typing."""
    parts = line.split("\t")
    values = []
    for i, fs in enumerate(schema):
        text = parts[i] if i < len(parts) else ""
        value = parse_text(text, fs.dtype)
        if fs.dtype is DataType.BAG and fs.inner is not None and value is not None:
            value = Bag(_retype_rows(value, fs.inner))
        values.append(value)
    return tuple(values)


def _retype_rows(raw_rows, inner: Schema) -> List[Row]:
    """Type the string fields a freshly parsed bag carries.

    Values that are already typed (a bag built in memory rather than
    parsed from text) pass through unchanged — round-tripping them
    through ``str`` would corrupt distinctions the text form cannot
    carry, e.g. an int in a double-typed field.
    """
    typed = []
    for raw in raw_rows:
        typed.append(
            tuple(
                parse_text(v, fs.dtype) if isinstance(v, str) else v
                for v, fs in zip(raw, inner)
            )
        )
    return typed


def snapshot_rows(rows: Iterable[Row]) -> Tuple[Row, ...]:
    """Rows decoupled from caller-held mutable containers.

    Row tuples are immutable and shared as-is; Bag values (the one
    mutable container a row can hold) are shallow-copied.  Both ends
    of the zero-copy plane need this: ``write_rows`` snapshots at call
    time (so later caller mutation cannot corrupt the deferred
    serialization or the pinned dataset), and result outputs hand the
    caller bags it may freely mutate.
    """
    out = []
    append = out.append
    for row in rows:
        # plain inner scan: a generator per row is measurable on the
        # write hot path, and bag-free rows (the common case) only pay
        # the type checks
        if type(row) is tuple:
            for value in row:
                if type(value) is Bag:
                    row = tuple(
                        Bag(v.rows) if type(v) is Bag else v for v in row
                    )
                    break
        append(row)
    return tuple(out)


def serialize_rows(rows: Iterable[Row]) -> str:
    """Serialize many rows into one newline-terminated text blob."""
    lines = [serialize_row(r) for r in rows]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def iter_data_lines(text: str) -> List[str]:
    """Split serialized row text into lines, keeping interior empties.

    An empty line is a legitimate all-null row; only the final empty
    element produced by the trailing newline is dropped.
    """
    if not text:
        return []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def deserialize_rows(text: str, schema: Schema) -> List[Row]:
    return [deserialize_row(line, schema) for line in iter_data_lines(text)]
