"""Row and bag representations plus PigStorage (de)serialization.

Rows are plain Python tuples — cheap, hashable, and directly usable as
shuffle keys.  :class:`Bag` wraps the lists of tuples produced by
GROUP/COGROUP so downstream code can ask for sizes and samples without
caring about the underlying container.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.relational.schema import Schema
from repro.relational.types import DataType, format_value, parse_text

Row = Tuple


class Bag:
    """A collection of rows grouped under one key.

    Pig bags are unordered multisets; we preserve arrival order for
    determinism (important for reproducible experiments and tests).
    """

    __slots__ = ("_rows",)

    def __init__(self, rows: Iterable[Row] = ()):
        self._rows: List[Row] = list(rows)

    def append(self, row: Row) -> None:
        self._rows.append(row)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other) -> bool:
        if isinstance(other, Bag):
            return self._rows == other._rows
        if isinstance(other, list):
            return self._rows == other
        return NotImplemented

    def __repr__(self) -> str:
        preview = ", ".join(repr(r) for r in self._rows[:3])
        suffix = ", ..." if len(self._rows) > 3 else ""
        return f"Bag([{preview}{suffix}], n={len(self._rows)})"

    @property
    def rows(self) -> List[Row]:
        return self._rows

    def project(self, index: int) -> List:
        """Extract one field from every row (used by aggregates)."""
        return [row[index] for row in self._rows]


def serialize_row(row: Row) -> str:
    """Render a row as one PigStorage line (tab-separated fields)."""
    return "\t".join(_serialize_field(v) for v in row)


def _serialize_field(value) -> str:
    if isinstance(value, Bag):
        return format_value(value.rows)
    return format_value(value)


def deserialize_row(line: str, schema: Schema) -> Row:
    """Parse one PigStorage line using *schema* for field typing."""
    parts = line.split("\t")
    values = []
    for i, fs in enumerate(schema):
        text = parts[i] if i < len(parts) else ""
        value = parse_text(text, fs.dtype)
        if fs.dtype is DataType.BAG and fs.inner is not None and value is not None:
            value = Bag(_retype_rows(value, fs.inner))
        values.append(value)
    return tuple(values)


def _retype_rows(raw_rows, inner: Schema) -> List[Row]:
    typed = []
    for raw in raw_rows:
        typed.append(
            tuple(
                parse_text(v if isinstance(v, str) else str(v), fs.dtype)
                for v, fs in zip(raw, inner)
            )
        )
    return typed


def serialize_rows(rows: Iterable[Row]) -> str:
    """Serialize many rows into one newline-terminated text blob."""
    lines = [serialize_row(r) for r in rows]
    if not lines:
        return ""
    return "\n".join(lines) + "\n"


def iter_data_lines(text: str) -> List[str]:
    """Split serialized row text into lines, keeping interior empties.

    An empty line is a legitimate all-null row; only the final empty
    element produced by the trailing newline is dropped.
    """
    if not text:
        return []
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return lines


def deserialize_rows(text: str, schema: Schema) -> List[Row]:
    return [deserialize_row(line, schema) for line in iter_data_lines(text)]
