"""Schemas: ordered, named, typed field lists attached to plan edges.

A :class:`Schema` describes the tuples flowing on one edge of a logical
or physical plan.  Fields produced by GROUP/COGROUP carry an *inner*
schema describing the tuples inside the bag, which lets expressions
such as ``SUM(C.est_revenue)`` resolve positions inside grouped bags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.exceptions import SchemaError
from repro.relational.types import DataType


@dataclass(frozen=True)
class FieldSchema:
    """One field: a name, a type, and (for bags/tuples) an inner schema."""

    name: str
    dtype: DataType = DataType.BYTEARRAY
    inner: Optional["Schema"] = None

    def with_name(self, name: str) -> "FieldSchema":
        return FieldSchema(name, self.dtype, self.inner)

    def fingerprint(self) -> tuple:
        inner = self.inner.fingerprint() if self.inner is not None else None
        return (self.name, self.dtype.value, inner)

    def to_dict(self) -> dict:
        out = {"name": self.name, "type": self.dtype.value}
        if self.inner is not None:
            out["inner"] = self.inner.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FieldSchema":
        inner = Schema.from_dict(data["inner"]) if "inner" in data else None
        return cls(data["name"], DataType.from_name(data["type"]), inner)


@dataclass(frozen=True)
class Schema:
    """An immutable ordered collection of :class:`FieldSchema`."""

    fields: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "fields", tuple(self.fields))
        seen = set()
        for f in self.fields:
            if not isinstance(f, FieldSchema):
                raise SchemaError(f"schema fields must be FieldSchema, got {f!r}")
            if f.name in seen:
                raise SchemaError(f"duplicate field name {f.name!r} in schema")
            seen.add(f.name)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of(cls, *specs) -> "Schema":
        """Build a schema from ``("name", DataType)`` pairs or bare names."""
        fields = []
        for spec in specs:
            if isinstance(spec, FieldSchema):
                fields.append(spec)
            elif isinstance(spec, str):
                fields.append(FieldSchema(spec))
            else:
                name, dtype = spec[0], spec[1]
                inner = spec[2] if len(spec) > 2 else None
                if isinstance(dtype, str):
                    dtype = DataType.from_name(dtype)
                fields.append(FieldSchema(name, dtype, inner))
        return cls(tuple(fields))

    @classmethod
    def parse(cls, text: str) -> "Schema":
        """Parse ``user:chararray, est_revenue:double`` (types optional)."""
        fields = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if ":" in part:
                name, type_name = part.split(":", 1)
                fields.append(
                    FieldSchema(name.strip(), DataType.from_name(type_name.strip()))
                )
            else:
                fields.append(FieldSchema(part))
        return cls(tuple(fields))

    # -- inspection ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[FieldSchema]:
        return iter(self.fields)

    def __getitem__(self, index: int) -> FieldSchema:
        return self.fields[index]

    @property
    def names(self) -> tuple:
        return tuple(f.name for f in self.fields)

    @property
    def types(self) -> tuple:
        return tuple(f.dtype for f in self.fields)

    def index_of(self, name: str) -> int:
        """Resolve a field name (or ``$n`` positional ref) to an index."""
        if name.startswith("$"):
            idx = int(name[1:])
            if not 0 <= idx < len(self.fields):
                raise SchemaError(f"positional reference {name} out of range")
            return idx
        for i, f in enumerate(self.fields):
            if f.name == name:
                return i
        raise SchemaError(
            f"field {name!r} not found in schema ({', '.join(self.names)})"
        )

    def has_field(self, name: str) -> bool:
        try:
            self.index_of(name)
            return True
        except SchemaError:
            return False

    def field_named(self, name: str) -> FieldSchema:
        return self.fields[self.index_of(name)]

    # -- derivation -------------------------------------------------------------

    def project(self, indexes: Iterable[int]) -> "Schema":
        return Schema(tuple(self.fields[i] for i in indexes))

    def concat(self, other: "Schema", disambiguate: bool = True) -> "Schema":
        """Concatenate two schemas, renaming collisions ``name_1`` style.

        Used by JOIN, whose output is the concatenation of both inputs.
        """
        fields = list(self.fields)
        names = set(self.names)
        for f in other.fields:
            name = f.name
            if disambiguate:
                suffix = 1
                while name in names:
                    name = f"{f.name}_{suffix}"
                    suffix += 1
            names.add(name)
            fields.append(f.with_name(name))
        return Schema(tuple(fields))

    def rename(self, mapping: dict) -> "Schema":
        return Schema(
            tuple(f.with_name(mapping.get(f.name, f.name)) for f in self.fields)
        )

    def fingerprint(self) -> tuple:
        return tuple(f.fingerprint() for f in self.fields)

    def to_dict(self) -> dict:
        return {"fields": [f.to_dict() for f in self.fields]}

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        return cls(tuple(FieldSchema.from_dict(f) for f in data["fields"]))

    def __str__(self) -> str:
        return "(" + ", ".join(f"{f.name}:{f.dtype.value}" for f in self.fields) + ")"
