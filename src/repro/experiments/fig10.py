"""Figure 10 — the effect of reusing sub-job outputs (150 GB).

Paper: L2–L8 and L11 under the Aggressive heuristic; three bars per
query: no reuse, generating sub-jobs (overhead), reusing sub-jobs.
Reported averages: **speedup 24.4**, **overhead 1.6**; "using ReStore
was beneficial if the output of a sub-job is reused even only once."
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    arithmetic_mean,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

PAPER_AVG_SPEEDUP = 24.4
PAPER_AVG_OVERHEAD = 1.6


def run(
    scale: str = "150GB",
    heuristic: str = "aggressive",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    rows = []
    for name in queries:
        m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
        rows.append(
            {
                "query": name,
                "no_reuse_min": m.t_no_reuse / 60.0,
                "generating_min": (m.t_generating or 0.0) / 60.0,
                "reusing_min": (m.t_reusing or 0.0) / 60.0,
                "overhead": m.overhead,
                "speedup": m.speedup,
            }
        )
    rows.append(
        {
            "query": "AVG",
            "overhead": arithmetic_mean([r["overhead"] for r in rows]),
            "speedup": arithmetic_mean([r["speedup"] for r in rows]),
        }
    )
    return ExperimentResult(
        title=f"Figure 10: sub-job reuse, {heuristic} heuristic ({scale})",
        columns=[
            "query",
            "no_reuse_min",
            "generating_min",
            "reusing_min",
            "overhead",
            "speedup",
        ],
        rows=rows,
        paper_claim=(
            f"avg speedup {PAPER_AVG_SPEEDUP}, avg overhead "
            f"{PAPER_AVG_OVERHEAD}; L6 has the highest overhead (large "
            "reduce-side Group output)"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
