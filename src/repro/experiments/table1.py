"""Table 1 — bytes loaded, bytes stored by each heuristic, final output.

Paper (per query at 150 GB): total input ~150.6 GB (173.6 GB for L11);
HC stores 1.8–3.7 GB, HA 2.7–10.1 GB, NH 2.8–24.3 GB; final outputs
range from 2 B (L5) to 1.6 GB (L11).  Key shape: **HC ≤ HA ≪ NH**,
with HA ≈ HC except where expensive-operator outputs are large (L3,
L5, L6, L7) and NH far larger everywhere.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    PigMixSandbox,
    measure_no_reuse,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

#: the paper's Table 1, for side-by-side comparison (GB except O/P)
PAPER_TABLE1 = {
    "L2": {"input": 150.6, "hc": 3.1, "ha": 3.1, "nh": 6.7, "out": "1.1 MB"},
    "L3": {"input": 150.7, "hc": 3.2, "ha": 8.2, "nh": 22.1, "out": "62.9 MB"},
    "L4": {"input": 150.6, "hc": 2.0, "ha": 2.8, "nh": 10.8, "out": "34.2 MB"},
    "L5": {"input": 150.7, "hc": 1.8, "ha": 4.6, "nh": 7.4, "out": "2 B"},
    "L6": {"input": 150.6, "hc": 3.7, "ha": 10.1, "nh": 24.3, "out": "92.7 MB"},
    "L7": {"input": 150.6, "hc": 2.2, "ha": 5.4, "nh": 5.4, "out": "1.5 MB"},
    "L8": {"input": 150.6, "hc": 3.3, "ha": 3.3, "nh": 11.4, "out": "27 B"},
    "L11": {"input": 173.6, "hc": 2.6, "ha": 2.7, "nh": 2.8, "out": "1.6 GB"},
}


def run(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    sandbox = PigMixSandbox(scale, pigmix_config)  # for GB scaling only
    rows = []
    for name in queries:
        base = measure_no_reuse(name, scale, pigmix_config)
        row = {
            "query": name,
            "input_GB": sandbox.scaled_gb(base.input_bytes),
            "output_GB": sandbox.scaled_gb(base.output_bytes),
        }
        for heuristic, label in (
            ("conservative", "HC"),
            ("aggressive", "HA"),
            ("no-heuristic", "NH"),
        ):
            m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
            row[f"{label}_GB"] = sandbox.scaled_gb(m.side_store_bytes)
        rows.append(row)
    return ExperimentResult(
        title=f"Table 1: stored bytes per heuristic ({scale})",
        columns=["query", "input_GB", "HC_GB", "HA_GB", "NH_GB", "output_GB"],
        rows=rows,
        paper_claim=(
            "HC <= HA << NH for every query; HA is close to HC except for "
            "expensive-operator queries (e.g. L6)"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
