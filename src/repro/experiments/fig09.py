"""Figure 9 — the effect of reusing whole job outputs (150 GB).

Paper: L3, L3a–c, L11, L11a–d; execution time with no reuse vs
reusing whole jobs stored during previous executions of the same
query.  Reported average speedup: **9.8×**, with **0% overhead** (no
extra Store operators are injected for whole-job reuse).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    arithmetic_mean,
    measure_whole_job_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import VARIANT_NAMES

PAPER_AVG_SPEEDUP = 9.8


def run(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or VARIANT_NAMES
    rows = []
    for name in queries:
        m = measure_whole_job_reuse(name, scale, pigmix_config)
        rows.append(
            {
                "query": name,
                "no_reuse_min": m.t_no_reuse / 60.0,
                "reusing_jobs_min": (m.t_reusing or 0.0) / 60.0,
                "speedup": m.speedup,
            }
        )
    avg = arithmetic_mean([r["speedup"] for r in rows])
    rows.append({"query": "AVG", "speedup": avg})
    return ExperimentResult(
        title=f"Figure 9: whole-job reuse ({scale})",
        columns=["query", "no_reuse_min", "reusing_jobs_min", "speedup"],
        rows=rows,
        paper_claim=(
            f"average speedup {PAPER_AVG_SPEEDUP} with 0% overhead; every "
            "query benefits"
        ),
        notes="speedups are simulated-cluster ratios at the declared scale",
    )


def main() -> None:  # pragma: no cover - manual entry point
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
