"""Figure 13 — execution time when reusing sub-jobs chosen by the
three heuristics (150 GB).

Paper: the Aggressive heuristic (HA) matches No-Heuristic (NH) benefit
— the extra sub-jobs NH stores add nothing — and beats the
Conservative heuristic (HC), which stores fewer sub-jobs and thus
gains less.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    measure_no_reuse,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

HEURISTICS = ("conservative", "aggressive", "no-heuristic")


def run(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    rows = []
    for name in queries:
        base = measure_no_reuse(name, scale, pigmix_config)
        row = {"query": name, "no_reuse_min": base.t_no_reuse / 60.0}
        for heuristic in HEURISTICS:
            m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
            label = {"conservative": "HC", "aggressive": "HA", "no-heuristic": "NH"}[
                heuristic
            ]
            row[f"reuse_{label}_min"] = (m.t_reusing or 0.0) / 60.0
        rows.append(row)
    return ExperimentResult(
        title=f"Figure 13: reuse time by heuristic ({scale})",
        columns=[
            "query",
            "no_reuse_min",
            "reuse_HC_min",
            "reuse_HA_min",
            "reuse_NH_min",
        ],
        rows=rows,
        paper_claim=(
            "HA matches NH (extra NH sub-jobs give no benefit); HC gains "
            "less than HA"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
