"""Figure 11 — Store-injection overhead at 15 GB vs 150 GB.

Paper: overhead (execution time with injected Stores / unmodified) is
*higher for the smaller instance*: average **2.4 at 15 GB** vs
**1.6 at 150 GB** — a fixed per-store cost looms larger when the
byte-proportional terms of Equation 2 are small.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    arithmetic_mean,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

PAPER_AVG_OVERHEAD = {"15GB": 2.4, "150GB": 1.6}


def run(
    heuristic: str = "aggressive",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    rows = []
    overheads = {"15GB": [], "150GB": []}
    for name in queries:
        row = {"query": name}
        for scale in ("15GB", "150GB"):
            m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
            row[f"overhead_{scale}"] = m.overhead
            overheads[scale].append(m.overhead)
        rows.append(row)
    rows.append(
        {
            "query": "AVG",
            "overhead_15GB": arithmetic_mean(overheads["15GB"]),
            "overhead_150GB": arithmetic_mean(overheads["150GB"]),
        }
    )
    return ExperimentResult(
        title="Figure 11: store-injection overhead, 15GB vs 150GB",
        columns=["query", "overhead_15GB", "overhead_150GB"],
        rows=rows,
        paper_claim=(
            "avg overhead 2.4 (15GB) vs 1.6 (150GB): relative overhead "
            "shrinks as data grows"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
