"""Ablation studies for ReStore's design choices (beyond the paper's
figures; DESIGN.md commits to benching these).

* **Repository ordering** (§3's two ordering rules): ReStore uses the
  *first* match for the rewrite, so scan order decides rewrite quality.
  We compare ordered vs insertion-order scans.
* **Selector rules** (§5 rules 1-2) vs the paper's keep-all policy:
  how many bytes the rules save and what reuse benefit costs.
* **Logical optimizer** as match canonicalizer: two spellings of the
  same computation only share repository entries when plans normalize.
* **Workload stream**: cumulative benefit over an analyst query stream
  with overlapping prefixes (the §1 motivation).
"""

from __future__ import annotations

from typing import Optional

from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.core.repository import Repository
from repro.core.selector import KeepAllSelector, RuleBasedSelector
from repro.experiments.common import (
    ExperimentResult,
    PigMixSandbox,
    run_script,
)
from repro.pig.engine import PigServer
from repro.pigmix.datagen import PigMixConfig
from repro.workloads.generator import WorkloadConfig, WorkloadGenerator


def _manager(sandbox, ordering_enabled=True, selector=None):
    config = ReStoreConfig(
        heuristic="aggressive",
        register_whole_jobs="temporary-only",
        selector=selector or KeepAllSelector(),
    )
    repository = Repository(ordering_enabled=ordering_enabled)
    return ReStoreManager(
        sandbox.dfs, sandbox.cost_model, repository=repository, config=config
    )


# -- ordering ablation ---------------------------------------------------------------


def run_ordering_ablation(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries=("L3", "L4", "L6"),
) -> ExperimentResult:
    """Reuse time with §3 ordering on vs off (insertion-order scan)."""
    rows = []
    for name in queries:
        row = {"query": name}
        for label, enabled in (("ordered", True), ("unordered", False)):
            sandbox = PigMixSandbox(scale, pigmix_config)
            manager = _manager(sandbox, ordering_enabled=enabled)
            run_script(sandbox, sandbox.query(name, f"o/{name}_p"), manager)
            reused = run_script(
                sandbox, sandbox.query(name, f"o/{name}_r"), manager
            )
            row[f"reuse_{label}_min"] = reused.sim_seconds / 60.0
        row["penalty"] = (
            row["reuse_unordered_min"] / max(1e-9, row["reuse_ordered_min"])
        )
        rows.append(row)
    return ExperimentResult(
        title=f"Ablation: repository ordering (§3 rules), {scale}",
        columns=["query", "reuse_ordered_min", "reuse_unordered_min", "penalty"],
        rows=rows,
        paper_claim=(
            "ordering makes the first match the best match; without it "
            "a small sub-plan can shadow a subsuming one"
        ),
    )


# -- selector ablation ----------------------------------------------------------------


def _wasteful_query(sandbox: PigMixSandbox, out: str) -> str:
    """A query whose filter keeps (nearly) everything: its sub-job
    output is as large as the input, so §5 Rule 1 must reject it."""
    pv = sandbox.dataset.paths["page_views"]
    return f"""
A = load '{pv}' as (user, action:int, timestamp:int, est_revenue:double,
    page_info, page_links);
B = filter A by action >= 0;
D = group B by user;
E = foreach D generate group, COUNT(B);
store E into '{out}';
"""


def run_selector_ablation(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries=("L2", "L6", "wasteful"),
) -> ExperimentResult:
    """Repository bytes and reuse benefit: keep-all vs §5 rules.

    PigMix's heuristic-chosen operators all reduce their input, so the
    rules mostly agree with keep-all there; the "wasteful" query (a
    filter that keeps everything) shows Rule 1 pruning a stored output
    as large as the source data.
    """
    rows = []
    for name in queries:
        row = {"query": name}
        for label, selector in (
            ("keep_all", KeepAllSelector()),
            ("rules", None),  # built per sandbox (needs its cost model)
        ):
            sandbox = PigMixSandbox(scale, pigmix_config)
            chosen = selector or RuleBasedSelector(sandbox.cost_model)
            manager = _manager(sandbox, selector=chosen)
            if name == "wasteful":
                prime = _wasteful_query(sandbox, f"o/{name}_p")
                rerun = _wasteful_query(sandbox, f"o/{name}_r")
            else:
                prime = sandbox.query(name, f"o/{name}_p")
                rerun = sandbox.query(name, f"o/{name}_r")
            run_script(sandbox, prime, manager)
            reused = run_script(sandbox, rerun, manager)
            row[f"stored_MB_{label}"] = (
                sandbox.scaled_gb(manager.repository.total_stored_bytes) * 1024
            )
            row[f"reuse_{label}_min"] = reused.sim_seconds / 60.0
        rows.append(row)
    return ExperimentResult(
        title=f"Ablation: §5 keep rules vs keep-all, {scale}",
        columns=[
            "query",
            "stored_MB_keep_all",
            "stored_MB_rules",
            "reuse_keep_all_min",
            "reuse_rules_min",
        ],
        rows=rows,
        paper_claim=(
            "rules 1-2 drop non-reducing/no-benefit outputs with little "
            "loss of reuse benefit"
        ),
        notes=(
            "rules save the wasteful query's ~2x-input storage bill, but "
            "because ReStore keeps no memory of rejected candidates the "
            "injection overhead recurs on every resubmission — a real "
            "design gap the paper's keep-all evaluation sidesteps"
        ),
    )


# -- optimizer ablation ------------------------------------------------------------------


SPELLING_A = """
A = load 'PV' as (user, action:int, timestamp:int, est_revenue:double,
    page_info, page_links);
B = filter A by action == 1;
C = filter B by est_revenue > 2.0;
D = foreach C generate user, est_revenue;
E = group D by user;
F = foreach E generate group, SUM(D.est_revenue);
store F into 'OUT';
"""

SPELLING_B = """
A = load 'PV' as (user, action:int, timestamp:int, est_revenue:double,
    page_info, page_links);
B = filter A by action == 1 and est_revenue > 2.0;
D = foreach B generate user, est_revenue;
E = group D by user;
F = foreach E generate group, SUM(D.est_revenue);
store F into 'OUT';
"""


def run_optimizer_ablation(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
) -> ExperimentResult:
    """Does the optimizer let differently-spelled queries share work?"""
    rows = []
    for label, optimize in (("optimized", True), ("unoptimized", False)):
        sandbox = PigMixSandbox(scale, pigmix_config)
        manager = _manager(sandbox)
        server = PigServer(
            sandbox.dfs,
            cluster=sandbox.cluster,
            cost_model=sandbox.cost_model,
            restore=manager,
            optimize=optimize,
        )
        pv = sandbox.dataset.paths["page_views"]
        server.run(SPELLING_A.replace("PV", pv).replace("OUT", "o/a"))
        result = server.run(SPELLING_B.replace("PV", pv).replace("OUT", "o/b"))
        rows.append(
            {
                "mode": label,
                "rewrites_on_spelling_b": manager.rewrite_count
                + manager.elimination_count,
                "spelling_b_min": result.sim_seconds / 60.0,
            }
        )
    return ExperimentResult(
        title=f"Ablation: optimizer as plan canonicalizer, {scale}",
        columns=["mode", "rewrites_on_spelling_b", "spelling_b_min"],
        rows=rows,
        paper_claim=(
            "matching happens on physical plans, so canonicalization "
            "(filter merging) is what lets different spellings match"
        ),
    )


# -- workload stream ---------------------------------------------------------------------


def run_workload_stream(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    workload_config: Optional[WorkloadConfig] = None,
) -> ExperimentResult:
    """Cumulative time over an analyst stream, with vs without ReStore."""
    workload_config = workload_config or WorkloadConfig(n_queries=10)

    plain_sandbox = PigMixSandbox(scale, pigmix_config)
    plain_queries = WorkloadGenerator(
        plain_sandbox.dataset, workload_config
    ).generate()

    restore_sandbox = PigMixSandbox(scale, pigmix_config)
    manager = _manager(restore_sandbox)
    restore_queries = WorkloadGenerator(
        restore_sandbox.dataset, workload_config
    ).generate()

    rows = []
    cumulative_plain = 0.0
    cumulative_restore = 0.0
    for plain_q, restore_q in zip(plain_queries, restore_queries):
        plain_run = run_script(plain_sandbox, plain_q.source)
        restore_run = run_script(restore_sandbox, restore_q.source, manager)
        cumulative_plain += plain_run.sim_seconds
        cumulative_restore += restore_run.sim_seconds
        rows.append(
            {
                "query": plain_q.name,
                "plain_min": plain_run.sim_seconds / 60.0,
                "restore_min": restore_run.sim_seconds / 60.0,
                "cum_plain_min": cumulative_plain / 60.0,
                "cum_restore_min": cumulative_restore / 60.0,
            }
        )
    rows.append(
        {
            "query": "TOTAL",
            "cum_plain_min": cumulative_plain / 60.0,
            "cum_restore_min": cumulative_restore / 60.0,
        }
    )
    return ExperimentResult(
        title=f"Workload stream: cumulative benefit over {len(plain_queries)} queries ({scale})",
        columns=[
            "query",
            "plain_min",
            "restore_min",
            "cum_plain_min",
            "cum_restore_min",
        ],
        rows=rows,
        paper_claim=(
            "§1 motivation: shared load/filter/project prefixes across an "
            "analyst workload amortize quickly once stored"
        ),
    )
