"""Figure 16 — overhead and speedup vs percentage of projected data.

Paper (§7.5, template QP): as the Project keeps more of the input
(1 field ≈ 18% .. 5 fields ≈ 74%), the overhead of storing its output
rises and the speedup from reusing it falls; "if the Project operator
reduces the size of the input data by more than half, there will be a
net benefit if this stored data is reused at least once."
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, SyntheticSandbox, run_script
from repro.pigmix.synthetic import SyntheticConfig, qp_query


def run(config: Optional[SyntheticConfig] = None) -> ExperimentResult:
    rows = []
    for n_fields in range(1, 6):
        no_reuse = SyntheticSandbox(config)
        base = run_script(
            no_reuse, qp_query(no_reuse.dataset, n_fields, f"out/qp{n_fields}")
        )

        sandbox = SyntheticSandbox(config)
        manager = sandbox.manager(heuristic="conservative")
        generating = run_script(
            sandbox,
            qp_query(sandbox.dataset, n_fields, f"out/qp{n_fields}_gen"),
            manager,
        )
        reusing = run_script(
            sandbox,
            qp_query(sandbox.dataset, n_fields, f"out/qp{n_fields}_reuse"),
            manager,
        )
        projected_pct = (
            100.0
            * generating.stats.total_side_store_bytes
            / max(1, sandbox.dataset.actual_bytes)
        )
        rows.append(
            {
                "n_fields": n_fields,
                "projected_pct": projected_pct,
                "overhead": generating.sim_seconds / base.sim_seconds,
                "speedup": base.sim_seconds / reusing.sim_seconds,
            }
        )
    return ExperimentResult(
        title="Figure 16: Project data reduction (QP, 40GB synthetic)",
        columns=["n_fields", "projected_pct", "overhead", "speedup"],
        rows=rows,
        paper_claim=(
            "overhead rises and speedup falls as the projection keeps more "
            "data (~18% at 1 field to ~74% at 5)"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
