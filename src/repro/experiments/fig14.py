"""Figure 14 — execution time *with* the extra Store operators chosen
by each heuristic (150 GB).

Paper: NH is always worst; HA is usually only slightly worse than HC,
but L6 is the exception where HA is much worse (it stores the large
Group output in the reducer).
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    measure_no_reuse,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

HEURISTIC_LABELS = {
    "conservative": "HC",
    "aggressive": "HA",
    "no-heuristic": "NH",
}


def run(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    rows = []
    for name in queries:
        base = measure_no_reuse(name, scale, pigmix_config)
        row = {"query": name, "no_reuse_min": base.t_no_reuse / 60.0}
        for heuristic, label in HEURISTIC_LABELS.items():
            m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
            row[f"store_{label}_min"] = (m.t_generating or 0.0) / 60.0
        rows.append(row)
    return ExperimentResult(
        title=f"Figure 14: execution time with injected stores ({scale})",
        columns=[
            "query",
            "no_reuse_min",
            "store_HC_min",
            "store_HA_min",
            "store_NH_min",
        ],
        rows=rows,
        paper_claim=(
            "NH always worst; HA usually close to HC except L6 where HA "
            "is much worse"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
