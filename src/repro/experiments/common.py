"""Shared experiment harness.

Every figure/table module builds on the same three run modes the
paper's evaluation uses (§7):

* **no reuse** — the unmodified workflow, fresh cluster, no ReStore;
* **generating sub-jobs** — ReStore injects Stores (chosen by a
  heuristic) while the query runs against an empty repository; this
  measures the §4 overhead;
* **reusing** — the same query resubmitted (with a fresh output path)
  against the repository populated by the generating run; this
  measures the §3 benefit.

Whole-job reuse (§7.1) primes the repository with whole-job outputs
only (heuristic "never") and resubmits.

Each mode runs in an isolated sandbox (fresh DFS + data) so one cell's
stored results never leak into another's.  Execution times are the
cost model's simulated cluster seconds at the declared scale
(15 GB / 150 GB), as calibrated in ``repro.costmodel.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.heuristics import heuristic_by_name
from repro.core.manager import ReStoreConfig, ReStoreManager
from repro.costmodel.calibration import GB
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.mapreduce.cluster import ClusterConfig
from repro.pig.engine import PigRunResult, PigServer
from repro.pigmix.datagen import PigMixConfig, PigMixDataGenerator, PigMixDataset
from repro.session import ReStoreSession
from repro.pigmix.queries import build_query
from repro.pigmix.synthetic import (
    SyntheticConfig,
    SyntheticDataGenerator,
    SyntheticDataset,
)


@dataclass
class ExperimentResult:
    """Uniform result shape consumed by benches and EXPERIMENTS.md."""

    title: str
    columns: List[str]
    rows: List[Dict[str, object]]
    paper_claim: str = ""
    notes: str = ""

    def format_table(self) -> str:
        widths = {
            c: max(len(c), *(len(_fmt(r.get(c))) for r in self.rows))
            for c in self.columns
        } if self.rows else {c: len(c) for c in self.columns}
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        lines = [self.title, "=" * len(self.title), header,
                 "  ".join("-" * widths[c] for c in self.columns)]
        for row in self.rows:
            lines.append(
                "  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        if self.paper_claim:
            lines.append(f"paper: {self.paper_claim}")
        if self.notes:
            lines.append(f"note:  {self.notes}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# -- sandboxes -------------------------------------------------------------------------


class PigMixSandbox:
    """Isolated DFS + PigMix data + engine at a declared scale."""

    def __init__(
        self,
        scale: str = "150GB",
        pigmix_config: Optional[PigMixConfig] = None,
        cluster: Optional[ClusterConfig] = None,
    ):
        self.scale = scale
        self.cluster = cluster or ClusterConfig()
        self.dfs = DistributedFileSystem(
            n_datanodes=self.cluster.n_worker_nodes
        )
        generator = PigMixDataGenerator(pigmix_config)
        self.dataset: PigMixDataset = generator.generate(self.dfs)
        self.cost_model = CostModel(
            cluster=self.cluster,
            data_scale=self.dataset.data_scale(scale),
        )

    def session(
        self, restore: Optional[ReStoreManager] = None
    ) -> ReStoreSession:
        """A session over this sandbox's DFS/cluster/cost model, with
        ReStore attached when a manager is supplied."""
        return ReStoreSession(
            dfs=self.dfs,
            cluster=self.cluster,
            cost_model=self.cost_model,
            manager=restore,
            restore_enabled=restore is not None,
        )

    def server(self, restore: Optional[ReStoreManager] = None) -> PigServer:
        return self.session(restore).server

    def manager(
        self,
        heuristic: str = "aggressive",
        register_whole_jobs: str = "all",
        rewrite_enabled: bool = True,
        inject_enabled: bool = True,
    ) -> ReStoreManager:
        config = ReStoreConfig(
            heuristic=heuristic_by_name(heuristic),
            register_whole_jobs=register_whole_jobs,
            rewrite_enabled=rewrite_enabled,
            inject_enabled=inject_enabled,
        )
        return ReStoreManager(self.dfs, self.cost_model, config=config)

    def query(self, name: str, out: str) -> str:
        return build_query(name, self.dataset, out)

    def scaled_gb(self, raw_bytes: float) -> float:
        return raw_bytes * self.cost_model.data_scale / GB


class SyntheticSandbox:
    """Isolated DFS + §7.5 synthetic data + engine (declared 40 GB)."""

    def __init__(
        self,
        config: Optional[SyntheticConfig] = None,
        cluster: Optional[ClusterConfig] = None,
    ):
        self.cluster = cluster or ClusterConfig()
        self.dfs = DistributedFileSystem(
            n_datanodes=self.cluster.n_worker_nodes
        )
        generator = SyntheticDataGenerator(config)
        self.dataset: SyntheticDataset = generator.generate(self.dfs)
        self.cost_model = CostModel(
            cluster=self.cluster, data_scale=self.dataset.data_scale
        )

    def session(
        self, restore: Optional[ReStoreManager] = None
    ) -> ReStoreSession:
        return ReStoreSession(
            dfs=self.dfs,
            cluster=self.cluster,
            cost_model=self.cost_model,
            manager=restore,
            restore_enabled=restore is not None,
        )

    def server(self, restore: Optional[ReStoreManager] = None) -> PigServer:
        return self.session(restore).server

    def manager(self, heuristic: str = "conservative") -> ReStoreManager:
        config = ReStoreConfig(
            heuristic=heuristic_by_name(heuristic),
            register_whole_jobs="temporary-only",
        )
        return ReStoreManager(self.dfs, self.cost_model, config=config)


# -- measurements --------------------------------------------------------------------------


@dataclass
class QueryMeasurement:
    """All the numbers one query contributes across the figures."""

    query: str
    scale: str
    t_no_reuse: float
    t_generating: Optional[float] = None
    t_reusing: Optional[float] = None
    input_bytes: int = 0
    output_bytes: int = 0
    side_store_bytes: int = 0
    events: List[str] = field(default_factory=list)

    @property
    def overhead(self) -> Optional[float]:
        if self.t_generating is None or self.t_no_reuse == 0:
            return None
        return self.t_generating / self.t_no_reuse

    @property
    def speedup(self) -> Optional[float]:
        if self.t_reusing in (None, 0):
            return None
        return self.t_no_reuse / self.t_reusing


def run_script(
    sandbox, source: str, restore: Optional[ReStoreManager] = None, name: str = ""
) -> PigRunResult:
    return sandbox.session(restore).run(source, name=name)


def measure_no_reuse(
    query_name: str,
    scale: str,
    pigmix_config: Optional[PigMixConfig] = None,
) -> QueryMeasurement:
    sandbox = PigMixSandbox(scale, pigmix_config)
    result = run_script(sandbox, sandbox.query(query_name, f"out/{query_name}"))
    total_in = sum(
        s.input_bytes for s in result.stats.job_stats.values()
    )
    total_out = sum(
        s.output_bytes
        for job_id, s in result.stats.job_stats.items()
        if not result.workflow.job_by_id(job_id).temporary
    )
    return QueryMeasurement(
        query=query_name,
        scale=scale,
        t_no_reuse=result.sim_seconds,
        input_bytes=total_in,
        output_bytes=total_out,
    )


def measure_subjob_reuse(
    query_name: str,
    scale: str,
    heuristic: str = "aggressive",
    pigmix_config: Optional[PigMixConfig] = None,
) -> QueryMeasurement:
    """The full §7.2 protocol: no-reuse, generating, reusing."""
    measurement = measure_no_reuse(query_name, scale, pigmix_config)

    sandbox = PigMixSandbox(scale, pigmix_config)
    manager = sandbox.manager(
        heuristic=heuristic, register_whole_jobs="temporary-only"
    )
    generating = run_script(
        sandbox, sandbox.query(query_name, f"out/{query_name}_gen"), manager
    )
    measurement.t_generating = generating.sim_seconds
    measurement.side_store_bytes = generating.stats.total_side_store_bytes

    reusing = run_script(
        sandbox, sandbox.query(query_name, f"out/{query_name}_reuse"), manager
    )
    measurement.t_reusing = reusing.sim_seconds
    measurement.events = ReStoreManager.legacy_strings(reusing.events)
    return measurement


def measure_whole_job_reuse(
    query_name: str,
    scale: str,
    pigmix_config: Optional[PigMixConfig] = None,
) -> QueryMeasurement:
    """The §7.1 protocol: prime whole-job outputs, resubmit."""
    measurement = measure_no_reuse(query_name, scale, pigmix_config)

    sandbox = PigMixSandbox(scale, pigmix_config)
    manager = sandbox.manager(heuristic="never", register_whole_jobs="all")
    run_script(
        sandbox, sandbox.query(query_name, f"out/{query_name}_prime"), manager
    )
    reusing = run_script(
        sandbox, sandbox.query(query_name, f"out/{query_name}_reuse"), manager
    )
    measurement.t_generating = measurement.t_no_reuse  # no injection overhead
    measurement.t_reusing = reusing.sim_seconds
    measurement.events = ReStoreManager.legacy_strings(reusing.events)
    return measurement


def geometric_mean(values: List[float]) -> float:
    product = 1.0
    count = 0
    for v in values:
        if v and v > 0:
            product *= v
            count += 1
    return product ** (1.0 / count) if count else 0.0


def arithmetic_mean(values: List[float]) -> float:
    values = [v for v in values if v is not None]
    return sum(values) / len(values) if values else 0.0
