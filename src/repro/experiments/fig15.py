"""Figure 15 — whole-job reuse vs sub-job reuse (HC and HA), 150 GB.

Paper: on L3/L11 and their variants all reuse modes help; the best
results come from whole-job reuse and HA sub-job reuse, and the gap
between those two is minimal — HA "captures the most expensive parts
of a MapReduce job while avoiding cheap parts".
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    measure_no_reuse,
    measure_subjob_reuse,
    measure_whole_job_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import VARIANT_NAMES


def run(
    scale: str = "150GB",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or VARIANT_NAMES
    rows = []
    for name in queries:
        base = measure_no_reuse(name, scale, pigmix_config)
        hc = measure_subjob_reuse(name, scale, "conservative", pigmix_config)
        ha = measure_subjob_reuse(name, scale, "aggressive", pigmix_config)
        whole = measure_whole_job_reuse(name, scale, pigmix_config)
        rows.append(
            {
                "query": name,
                "no_reuse_min": base.t_no_reuse / 60.0,
                "subjob_HC_min": (hc.t_reusing or 0.0) / 60.0,
                "subjob_HA_min": (ha.t_reusing or 0.0) / 60.0,
                "whole_job_min": (whole.t_reusing or 0.0) / 60.0,
            }
        )
    return ExperimentResult(
        title=f"Figure 15: whole jobs vs sub-jobs ({scale})",
        columns=[
            "query",
            "no_reuse_min",
            "subjob_HC_min",
            "subjob_HA_min",
            "whole_job_min",
        ],
        rows=rows,
        paper_claim=(
            "all reuse types help; whole-job and HA sub-job reuse are best "
            "and nearly tied"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
