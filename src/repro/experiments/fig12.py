"""Figure 12 — sub-job reuse speedup at 15 GB vs 150 GB.

Paper: speedup grows with data size — average **3.0 at 15 GB** vs
**24.4 at 150 GB** — because replacing ``T_load`` (the dominant term
at large scale) with a load of the much smaller stored output pays off
more the bigger the input is.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentResult,
    arithmetic_mean,
    measure_subjob_reuse,
)
from repro.pigmix.datagen import PigMixConfig
from repro.pigmix.queries import PIGMIX_QUERY_NAMES

PAPER_AVG_SPEEDUP = {"15GB": 3.0, "150GB": 24.4}


def run(
    heuristic: str = "aggressive",
    pigmix_config: Optional[PigMixConfig] = None,
    queries: Optional[List[str]] = None,
) -> ExperimentResult:
    queries = queries or PIGMIX_QUERY_NAMES
    rows = []
    speedups = {"15GB": [], "150GB": []}
    for name in queries:
        row = {"query": name}
        for scale in ("15GB", "150GB"):
            m = measure_subjob_reuse(name, scale, heuristic, pigmix_config)
            row[f"speedup_{scale}"] = m.speedup
            speedups[scale].append(m.speedup)
        rows.append(row)
    rows.append(
        {
            "query": "AVG",
            "speedup_15GB": arithmetic_mean(speedups["15GB"]),
            "speedup_150GB": arithmetic_mean(speedups["150GB"]),
        }
    )
    return ExperimentResult(
        title="Figure 12: sub-job reuse speedup, 15GB vs 150GB",
        columns=["query", "speedup_15GB", "speedup_150GB"],
        rows=rows,
        paper_claim=(
            "avg speedup 3.0 (15GB) vs 24.4 (150GB): reuse pays off more "
            "at larger scale"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
