"""Figure 17 — overhead and speedup vs percentage of filtered data.

Paper (§7.5, template QF): equality predicates on field6..field12
keep 0.5%..60% of the rows (Table 2); as more data survives the
Filter, storing its output costs more and reusing it helps less.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, SyntheticSandbox, run_script
from repro.pigmix.synthetic import TABLE2_FIELDS, SyntheticConfig, qf_query


def run(config: Optional[SyntheticConfig] = None) -> ExperimentResult:
    rows = []
    for field_name, (_, paper_pct) in TABLE2_FIELDS.items():
        no_reuse = SyntheticSandbox(config)
        base = run_script(
            no_reuse, qf_query(no_reuse.dataset, field_name, f"out/{field_name}")
        )

        sandbox = SyntheticSandbox(config)
        manager = sandbox.manager(heuristic="conservative")
        generating = run_script(
            sandbox,
            qf_query(sandbox.dataset, field_name, f"out/{field_name}_gen"),
            manager,
        )
        reusing = run_script(
            sandbox,
            qf_query(sandbox.dataset, field_name, f"out/{field_name}_reuse"),
            manager,
        )
        rows.append(
            {
                "field": field_name,
                "filtered_pct": paper_pct,
                "overhead": generating.sim_seconds / base.sim_seconds,
                "speedup": base.sim_seconds / reusing.sim_seconds,
            }
        )
    return ExperimentResult(
        title="Figure 17: Filter data reduction (QF, 40GB synthetic)",
        columns=["field", "filtered_pct", "overhead", "speedup"],
        rows=rows,
        paper_claim=(
            "overhead rises and speedup falls as the filter keeps more data "
            "(0.5% .. 60%)"
        ),
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
