"""Table 2 — the synthetic data set's cardinalities and selectivities.

Paper: field6..field12 have cardinalities 200, 100, 20, 10, 5, 2, 1.6
so that an equality predicate selects 0.5%, 1%, 5%, 10%, 20%, 50%,
60% of the rows.  We verify the generator reproduces those
selectivities (within sampling error).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, SyntheticSandbox
from repro.pigmix.synthetic import (
    FIELD_NAMES,
    TABLE2_FIELDS,
    SyntheticConfig,
)
from repro.relational.tuples import deserialize_rows
from repro.relational.schema import Schema
from repro.relational.types import DataType


def run(config: Optional[SyntheticConfig] = None) -> ExperimentResult:
    sandbox = SyntheticSandbox(config)
    schema = Schema.of(
        *[(f"field{i}", DataType.CHARARRAY) for i in range(1, 6)],
        *[(f"field{i}", DataType.INT) for i in range(6, 13)],
    )
    rows_data = deserialize_rows(
        sandbox.dfs.read_text(sandbox.dataset.path), schema
    )
    n = len(rows_data)
    rows = []
    for field_name, (cardinality, paper_pct) in TABLE2_FIELDS.items():
        index = FIELD_NAMES.index(field_name)
        values = [r[index] for r in rows_data]
        distinct = len(set(values))
        selected = sum(1 for v in values if v == 0)
        rows.append(
            {
                "field": field_name,
                "paper_cardinality": cardinality,
                "measured_distinct": distinct,
                "paper_selected_pct": paper_pct,
                "measured_selected_pct": 100.0 * selected / n,
            }
        )
    return ExperimentResult(
        title=f"Table 2: synthetic field selectivities (n={n})",
        columns=[
            "field",
            "paper_cardinality",
            "measured_distinct",
            "paper_selected_pct",
            "measured_selected_pct",
        ],
        rows=rows,
        paper_claim="equality predicates select 0.5/1/5/10/20/50/60 %",
        notes="measured % uses predicate `field == 0` on the generated data",
    )


def main() -> None:  # pragma: no cover
    print(run().format_table())


if __name__ == "__main__":  # pragma: no cover
    main()
