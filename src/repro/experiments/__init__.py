"""Paper-experiment harnesses: one module per table/figure (§7).

=========  =================================================
module     reproduces
=========  =================================================
fig09      Figure 9 — whole-job reuse (L3/L11 + variants)
fig10      Figure 10 — sub-job reuse, aggressive heuristic
fig11      Figure 11 — store overhead, 15 GB vs 150 GB
fig12      Figure 12 — reuse speedup, 15 GB vs 150 GB
fig13      Figure 13 — reuse time per heuristic
fig14      Figure 14 — store time per heuristic
table1     Table 1 — stored bytes per heuristic
fig15      Figure 15 — whole jobs vs sub-jobs
table2     Table 2 — synthetic selectivities
fig16      Figure 16 — Project data-reduction sweep (QP)
fig17      Figure 17 — Filter data-reduction sweep (QF)
=========  =================================================
"""

from repro.experiments import (  # noqa: F401
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    table1,
    table2,
)
from repro.experiments.common import (
    ExperimentResult,
    PigMixSandbox,
    QueryMeasurement,
    SyntheticSandbox,
    measure_no_reuse,
    measure_subjob_reuse,
    measure_whole_job_reuse,
)

ALL_EXPERIMENTS = {
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "table1": table1,
    "fig15": fig15,
    "table2": table2,
    "fig16": fig16,
    "fig17": fig17,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "PigMixSandbox",
    "QueryMeasurement",
    "SyntheticSandbox",
    "measure_no_reuse",
    "measure_subjob_reuse",
    "measure_whole_job_reuse",
]
