"""The fault injector: named sites, seeded clocks, byte-replayable runs.

Every fault-capable operation in the codebase is wrapped in a *named
injection site* — a :func:`fire` call that is a no-op (one global
``None`` check) unless a :class:`FaultInjector` is installed.  The
injector owns a :class:`FaultClock` (per-site, per-timing invocation
counters) and consults the installed
:class:`~repro.faults.plan.FaultPlan`: when a rule's scheduled hit
number comes up, the injector *acts* — crash the process, hang, raise
an :class:`InjectedFault`, corrupt the bytes flowing through the site,
or suppress the operation — and appends the firing to its ``fired``
log.  Identical plan + identical workload ⇒ identical clocks ⇒
identical log: chaos runs replay byte for byte.

Worker processes install their own injector (the plan ships through
the spawn context) keyed by the worker's pool *ordinal*, so a crash
rule aimed at worker 1 can never re-fire on the replacement worker
(ordinal 2) that retries the job.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.faults.plan import FaultPlan, FaultRule

#: returned by :func:`fire` in place of ``data`` when a ``corrupt``
#: rule hits a site whose payload is not bytes (the call site decides
#: how to garble its own medium — e.g. send raw junk down a pipe)
GARBLED = object()


class InjectedFault(OSError):
    """The error a ``raise``-action rule throws at its site.

    An :class:`OSError` subclass on purpose: persistence and pipe code
    already treat ``OSError`` as the I/O failure envelope, so injected
    faults exercise exactly the handling real ones would.
    """

    def __init__(self, site: str, hit: int):
        super().__init__(f"injected fault at {site} (hit {hit})")
        self.site = site
        self.hit = hit


class PartialWriteFault(InjectedFault):
    """A ``partial``-action rule: the write tore mid-syscall.

    Carries the ``prefix`` that reached the medium before the tear.
    Append-style sites (journal, block store) write the prefix and
    re-raise, leaving a genuinely torn tail for recovery to repair;
    atomic-replace sites (snapshot write-temp-rename) let it propagate
    untouched — a real partial write there dies in the temp file and
    never publishes, so the fault degenerates to a failed rotation.
    Uninstrumented sites inherit plain ``raise`` semantics for free.
    """

    def __init__(self, site: str, hit: int, prefix: bytes = b""):
        super().__init__(site, hit)
        self.prefix = prefix


#: every known injection site -> one-line description (the chaos sweep
#: parametrizes over this registry, so a new site is tested by default)
_SITES: Dict[str, str] = {}


def register_site(name: str, description: str) -> str:
    _SITES[name] = description
    return name


def registered_sites() -> Dict[str, str]:
    return dict(_SITES)


# -- the registry (all sites declared here, next to their semantics) ----------

#: worker-side hook exchange with the coordinator (crash-before-reply,
#: crash-after-reply, hang, garbled frame)
SITE_WORKER_HOOK = register_site(
    "worker.hook", "worker→coordinator listener-hook pipe exchange"
)
#: worker's final result send (crash/hang after the job ran)
SITE_WORKER_RESULT = register_site(
    "worker.result", "worker's terminal result/error send"
)
#: persister journal append (OSError → circuit breaker)
SITE_JOURNAL_APPEND = register_site(
    "journal.append", "journal write of buffered mutation records"
)
#: journal scan (bit-flip → CRC failure → torn-tail truncation)
SITE_JOURNAL_READ = register_site(
    "journal.read", "journal read-back during scan/recovery"
)
#: snapshot rotation write (OSError → circuit breaker, rotation aborted)
SITE_SNAPSHOT_WRITE = register_site(
    "snapshot.write", "snapshot storage write during rotation"
)
#: snapshot read-back (corrupt → checksum rejection at recovery)
SITE_SNAPSHOT_READ = register_site(
    "snapshot.read", "snapshot storage read during recovery/rebase"
)
#: local-file durability syscall (fsync failure)
SITE_STORAGE_FSYNC = register_site(
    "storage.fsync", "fsync of a local snapshot/journal file"
)
#: lazy-plan rebuild (fingerprint mismatch → entry quarantine)
SITE_SNAPSHOT_MATERIALIZE = register_site(
    "snapshot.materialize", "LazyPlan plan-graph rebuild at match time"
)
#: DFS block read (corrupted payload)
SITE_DFS_READ = register_site("dfs.read", "DFS file read (block payload)")
#: block-store segment append (partial write → torn segment, OSError →
#: payload capture skipped, scrub condemns at recovery)
SITE_BLOCKSTORE_APPEND = register_site(
    "blockstore.append", "block-store payload segment append"
)
#: block-store read-back during recovery scrub (bit rot → segment
#: quarantine / torn-tail truncation)
SITE_BLOCKSTORE_READ = register_site(
    "blockstore.read", "block-store segment read during recovery scrub"
)
#: coordinator liveness channel (suppress → standby promotion)
SITE_COORDINATOR_HEARTBEAT = register_site(
    "coordinator.heartbeat", "coordinator health heartbeat tick"
)


@dataclass
class FaultClock:
    """Per-(site, timing) invocation counters for one worker ordinal.

    Hit numbers are 1-based and deterministic: they advance once per
    :func:`fire` call whether or not a rule matches, so a plan's
    schedule addresses real invocation indexes, not fired ones.
    """

    counts: Dict[Tuple[str, str], int] = field(default_factory=dict)

    def tick(self, site: str, when: str) -> int:
        key = (site, when)
        self.counts[key] = self.counts.get(key, 0) + 1
        return self.counts[key]

    def hits(self, site: str, when: str = "before") -> int:
        return self.counts.get((site, when), 0)


class FaultInjector:
    """Executes one :class:`FaultPlan` against the process it lives in."""

    def __init__(self, plan: FaultPlan, *, worker_ordinal: int = 0) -> None:
        self.plan = plan
        self.worker_ordinal = worker_ordinal
        self.clock = FaultClock()
        #: (site, when, worker, hit, action) per firing — the replay log
        self.fired: List[Tuple[str, str, int, int, str]] = []
        self._revived: set = set()
        self._lock = threading.Lock()
        unknown = [s for s in plan.sites() if s not in _SITES]
        if unknown:
            raise ValueError(f"plan names unregistered sites: {unknown}")

    def revive(self, site: str) -> None:
        """Permanently disarm *site* (e.g. after failover replaced the
        entity the sticky rule was killing)."""
        with self._lock:
            self._revived.add(site)

    def reset(self) -> None:
        """Zero every clock, the fired log, and the revived set.

        Reusing one injector across seeds or bench lanes without a
        reset lets hit counters bleed between runs — rules scheduled
        for hit 1 silently never fire again.  Lanes that share an
        injector call this between runs; the test suite's autouse
        fixture calls it on the way out so no state leaks across tests.
        """
        with self._lock:
            self.clock = FaultClock()
            self.fired.clear()
            self._revived.clear()

    def _match(self, site: str, when: str, worker: int) -> Optional[
        Tuple[FaultRule, int]
    ]:
        with self._lock:
            hit = self.clock.tick(site, when)
            if site in self._revived:
                return None
            for rule in self.plan.for_site(site):
                if rule.matches(hit, when, worker):
                    self.fired.append((site, when, worker, hit, rule.action))
                    return rule, hit
        return None

    def fire(
        self,
        site: str,
        *,
        when: str = "before",
        worker: Optional[int] = None,
        data=None,
    ):
        """Advance *site*'s clock; act if a rule's hit number came up.

        Returns ``data`` (transformed for ``corrupt`` rules on bytes,
        :data:`GARBLED` for ``corrupt`` on non-bytes, ``None`` for
        ``suppress``, delayed but unchanged for ``slow``); raises
        :class:`InjectedFault` for ``raise`` rules and
        :class:`PartialWriteFault` (carrying the written prefix) for
        ``partial`` rules; never returns from ``crash``.
        """
        if worker is None:
            worker = self.worker_ordinal
        matched = self._match(site, when, worker)
        if matched is None:
            return data
        rule, hit = matched
        if rule.action == "crash":
            os._exit(170)
        if rule.action == "hang":
            time.sleep(rule.arg if rule.arg > 0 else 30.0)
            return data
        if rule.action == "raise":
            raise InjectedFault(site, hit)
        if rule.action == "slow":
            # seeded latency: the operation still succeeds, just late
            # (distinct from "hang", whose 30s default is meant to trip
            # exchange timeouts; slow-disk stays under them)
            time.sleep(rule.arg if rule.arg > 0 else 0.02)
            return data
        if rule.action == "partial":
            prefix = b""
            if isinstance(data, (bytes, bytearray, memoryview)):
                raw = bytes(data)
                cut = min(max(int(rule.arg), 0), len(raw))
                prefix = raw[:cut]
            raise PartialWriteFault(site, hit, prefix)
        if rule.action == "suppress":
            return None
        # corrupt: deterministic single-bit-flavoured damage
        if isinstance(data, (bytes, bytearray, memoryview)):
            raw = bytearray(bytes(data))
            if not raw:
                return bytes(raw)
            mask = int(rule.arg) or 0xFF
            raw[len(raw) // 2] ^= mask & 0xFF
            return bytes(raw)
        return GARBLED


# -- the module-global active injector (no-op fast path) ----------------------

_ACTIVE: Optional[FaultInjector] = None


def install(target) -> FaultInjector:
    """Install *target* (a plan or an injector) process-globally."""
    global _ACTIVE
    injector = (
        target if isinstance(target, FaultInjector) else FaultInjector(target)
    )
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[FaultInjector]:
    return _ACTIVE


def fire(site: str, *, when: str = "before", worker: Optional[int] = None, data=None):
    """Module-level :meth:`FaultInjector.fire`; a near-free no-op
    (one global load + None check) when no injector is installed."""
    injector = _ACTIVE
    if injector is None:
        return data
    return injector.fire(site, when=when, worker=worker, data=data)


__all__ = [
    "GARBLED",
    "FaultClock",
    "FaultInjector",
    "InjectedFault",
    "PartialWriteFault",
    "SITE_BLOCKSTORE_APPEND",
    "SITE_BLOCKSTORE_READ",
    "SITE_COORDINATOR_HEARTBEAT",
    "SITE_DFS_READ",
    "SITE_JOURNAL_APPEND",
    "SITE_JOURNAL_READ",
    "SITE_SNAPSHOT_MATERIALIZE",
    "SITE_SNAPSHOT_READ",
    "SITE_SNAPSHOT_WRITE",
    "SITE_STORAGE_FSYNC",
    "SITE_WORKER_HOOK",
    "SITE_WORKER_RESULT",
    "active",
    "fire",
    "install",
    "register_site",
    "registered_sites",
    "uninstall",
]
