"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a pure-data description of *which* injection
sites misbehave, *when* (which hit numbers of that site), and *how*
(crash / hang / raise / corrupt / partial / slow).  Plans are frozen,
picklable, and
carry their seed, so a chaos run is byte-replayable: the same plan
against the same workload produces the same fault timeline, and the
:class:`~repro.faults.injector.FaultInjector` records every firing in
a log the tests compare across replays.

Two plan builders cover the common shapes:

* :func:`storm_plan` — the bench's seeded fault storm (worker crash,
  worker hang, a journal-error window, one entry corruption, one
  coordinator kill), with every hit number drawn from the seed;
* hand-written plans in tests, one rule per scenario.

Worker-side rules target a worker *ordinal* (the pool's spawn
sequence number): a replacement worker spawned after a crash has a new
ordinal, so a one-shot crash rule can never re-fire on the retry and
walk the service past its retry budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

#: actions an injected rule can take when its site fires
ACTIONS = ("crash", "hang", "raise", "corrupt", "suppress", "partial", "slow")

#: rule timing relative to the instrumented operation
WHENS = ("before", "after")


@dataclass(frozen=True)
class FaultRule:
    """One scheduled misbehaviour of one named injection site.

    ``hits`` are 1-based per-site invocation numbers (per worker
    ordinal for worker-side sites); the rule fires when the site's
    clock reaches any of them.  ``sticky`` rules keep firing on every
    hit at or past their first scheduled one until the injector
    revives the site — that is how a dead coordinator stays dead until
    failover replaces it.
    """

    site: str
    action: str
    hits: Tuple[int, ...] = (1,)
    when: str = "before"
    #: worker ordinal this rule targets (0 = coordinator-side sites)
    worker: int = 0
    sticky: bool = False
    #: action parameter: hang/slow seconds, corrupt XOR mask, or the
    #: byte offset a ``partial`` write is cut at (0 = nothing lands)
    arg: float = 0.0

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}")
        if self.when not in WHENS:
            raise ValueError(f"unknown fault timing {self.when!r}")
        if not self.hits or any(h < 1 for h in self.hits):
            raise ValueError("hits must be 1-based invocation numbers")

    def matches(self, hit: int, when: str, worker: int) -> bool:
        if self.when != when or self.worker != worker:
            return False
        if self.sticky:
            return hit >= min(self.hits)
        return hit in self.hits


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable schedule of fault rules.

    The plan is plain data (it ships through the spawn context to
    worker processes untouched); all firing state lives in the
    injector's :class:`~repro.faults.injector.FaultClock`.
    """

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def for_site(self, site: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.site == site)

    def sites(self) -> Tuple[str, ...]:
        return tuple(sorted({rule.site for rule in self.rules}))

    def with_rules(self, *rules: FaultRule) -> "FaultPlan":
        return FaultPlan(seed=self.seed, rules=self.rules + tuple(rules))

    def __len__(self) -> int:
        return len(self.rules)


@dataclass
class StormSpec:
    """Knobs of :func:`storm_plan`, all derived deterministically from
    the seed unless pinned explicitly."""

    seed: int = 13
    #: jobs the storm's workload will run (hit numbers are drawn < this)
    n_jobs: int = 18
    #: must exceed the service's exchange timeout for the hang to be
    #: detected as one (the hung worker is killed mid-sleep)
    hang_seconds: float = 5.0
    #: journal appends that fail before the breaker's probe reopens
    journal_error_hits: int = 2
    worker_ordinals: Tuple[int, ...] = (1,)
    #: per-site hit overrides ({site: hit}) for tests that pin timing
    pinned: Dict[str, int] = field(default_factory=dict)


def storm_plan(spec: Optional[StormSpec] = None) -> FaultPlan:
    """The bench's seeded fault storm.

    One worker crash, one worker hang, a journal-error window (the
    circuit breaker trips, then recovers on probe), and one sticky
    coordinator kill late in the run — ordered so the journal is whole
    again *before* the coordinator dies, which is what makes the
    promotion lossless.  Entry corruption is injected separately (it
    targets a specific entry's cold bytes, not a site clock).
    """
    spec = spec or StormSpec()
    rng = random.Random(spec.seed)
    span = max(4, spec.n_jobs)
    # distinct early hit numbers for the worker faults
    crash_hit = spec.pinned.get("worker.hook", rng.randint(2, max(2, span // 3)))
    hang_hit = spec.pinned.get(
        "worker.result", crash_hit + 1 + rng.randint(1, 2)
    )
    journal_hit = spec.pinned.get("journal.append", rng.randint(1, 3))
    # the kill lands in the last third, after the breaker recovered
    kill_hit = spec.pinned.get(
        "coordinator.heartbeat", span - rng.randint(1, max(1, span // 6))
    )
    ordinal = spec.worker_ordinals[0]
    rules = (
        FaultRule(
            site="worker.hook",
            action="crash",
            hits=(crash_hit,),
            when="before",
            worker=ordinal,
        ),
        FaultRule(
            site="worker.result",
            action="hang",
            hits=(hang_hit,),
            when="before",
            worker=ordinal + 1,  # the crash's replacement worker
            arg=spec.hang_seconds,
        ),
        FaultRule(
            site="journal.append",
            action="raise",
            hits=tuple(range(journal_hit, journal_hit + spec.journal_error_hits)),
            when="before",
        ),
        FaultRule(
            site="coordinator.heartbeat",
            action="suppress",
            hits=(kill_hit,),
            when="before",
            sticky=True,
        ),
    )
    return FaultPlan(seed=spec.seed, rules=rules)


__all__ = [
    "ACTIONS",
    "WHENS",
    "FaultPlan",
    "FaultRule",
    "StormSpec",
    "storm_plan",
]
