"""Deterministic, seeded fault injection for chaos testing.

``repro.faults`` turns "does this survive a crash?" from a claim into
a replayable experiment: a :class:`FaultPlan` schedules misbehaviour
at named injection sites threaded through the worker pipe protocol,
the persistence I/O stack, and the DFS read path, and a
:class:`FaultInjector` executes it with per-site clocks so the same
plan against the same workload produces the same fault timeline.

Usage::

    from repro import faults

    plan = faults.FaultPlan(seed=7, rules=(
        faults.FaultRule(site="journal.append", action="raise", hits=(2,)),
    ))
    faults.install(plan)
    try:
        ...  # run the workload; the 2nd journal append raises
    finally:
        faults.uninstall()

Production code never imports plans — only :func:`fire`, whose no-op
fast path is one global load and a ``None`` check.
"""

from repro.faults.injector import (
    GARBLED,
    FaultClock,
    FaultInjector,
    InjectedFault,
    active,
    fire,
    install,
    register_site,
    registered_sites,
    uninstall,
)
from repro.faults.plan import (
    ACTIONS,
    WHENS,
    FaultPlan,
    FaultRule,
    StormSpec,
    storm_plan,
)

__all__ = [
    "ACTIONS",
    "GARBLED",
    "WHENS",
    "FaultClock",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "StormSpec",
    "active",
    "fire",
    "install",
    "register_site",
    "registered_sites",
    "storm_plan",
    "uninstall",
]
