"""Exception hierarchy shared across the whole reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a field reference cannot be resolved."""


class ExpressionError(ReproError):
    """An expression is malformed or cannot be evaluated."""


class DFSError(ReproError):
    """Base class for distributed-file-system errors."""


class FileNotFoundInDFS(DFSError):
    """The requested path does not exist in the DFS namespace."""


class FileAlreadyExists(DFSError):
    """An exclusive create collided with an existing path."""


class PigParseError(ReproError):
    """The Pig Latin text could not be tokenized or parsed."""

    def __init__(
        self,
        message: str,
        line: int | None = None,
        column: int | None = None,
    ):
        location = ""
        if line is not None:
            location = f" (line {line}" + (
                f", col {column})" if column is not None else ")"
            )
        super().__init__(message + location)
        self.line = line
        self.column = column


class PlanError(ReproError):
    """A logical or physical plan is structurally invalid."""


class CompilationError(ReproError):
    """The MapReduce compiler could not cut the plan into jobs."""


class ExecutionError(ReproError):
    """A MapReduce job failed while executing."""


class RepositoryError(ReproError):
    """The ReStore repository rejected an operation."""
