"""Typed ReStore events and the session event bus.

The manager used to log its decisions as pre-rendered strings; tooling
that wanted to react to a rewrite had to grep them.  This module gives
every decision a dataclass — ``RewriteApplied``, ``JobEliminated``,
``SubJobStored``, ``SubJobDiscarded``, ``EntryEvicted`` — delivered
through an :class:`EventBus` that supports subscription with type and
predicate filters.

``render()`` on each event reproduces the legacy log line;
``ReStoreManager.legacy_strings(events)`` projects a typed event list
onto that byte-identical text for reports that still want it.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple, Type, Union


@dataclass
class ReStoreEvent:
    """Base class for everything the manager announces.

    ``seq`` is a bus-assigned monotonically increasing sequence number
    (0 until the event passes through a bus); it makes global ordering
    explicit for subscribers that buffer events.

    ``session_id`` names the tenant session whose job produced the
    event ("" outside any session scope).  The manager stamps it from
    its active session scope, so multi-tenant deployments — many
    sessions sharing one manager and repository — can route and drain
    events per session without cross-talk.
    """

    seq: int = field(default=0, init=False, compare=False)
    session_id: str = field(default="", init=False, compare=False)

    def render(self) -> str:
        """The legacy human-readable log line for this event."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()


@dataclass
class RewriteApplied(ReStoreEvent):
    """A job's plan was rewritten to load a stored result (§3)."""

    job_id: str = ""
    entry_id: str = ""
    anchor_kind: str = ""
    output_path: str = ""
    #: True when the entire job matched and degraded to a copy job
    whole_job: bool = False
    #: True when the match was applied as a delta recomputation: the
    #: entry's input grew by an append, so the rewrite unions the
    #: stored output with the sub-plan rerun over just the tail
    delta: bool = False

    def render(self) -> str:
        if self.delta:
            return (
                f"{self.job_id}: reused sub-job {self.entry_id} "
                f"({self.anchor_kind}) from {self.output_path} "
                f"+ delta over appended tail"
            )
        if self.whole_job:
            return (
                f"{self.job_id}: whole job matched {self.entry_id}; "
                f"rewritten to copy {self.output_path}"
            )
        return (
            f"{self.job_id}: reused sub-job {self.entry_id} "
            f"({self.anchor_kind}) from {self.output_path}"
        )


@dataclass
class JobEliminated(ReStoreEvent):
    """A whole job was answered from the repository without running."""

    job_id: str = ""
    entry_id: str = ""
    output_path: str = ""
    #: "redirected" (intermediate job; consumers re-pointed) or
    #: "already-stored" (resubmission of the same query)
    reason: str = "redirected"

    def render(self) -> str:
        if self.reason == "already-stored":
            return f"{self.job_id}: result already stored at {self.output_path}"
        return (
            f"{self.job_id}: whole job answered by {self.entry_id}; "
            f"consumers redirected to {self.output_path}"
        )


@dataclass
class SubJobStored(ReStoreEvent):
    """An output passed the selector and entered the repository."""

    entry_id: str = ""
    output_path: str = ""
    anchor_kind: str = ""
    reason: str = ""

    def render(self) -> str:
        text = (
            f"stored {self.anchor_kind} output {self.output_path} "
            f"as {self.entry_id}"
        )
        return f"{text}: {self.reason}" if self.reason else text


@dataclass
class SubJobDiscarded(ReStoreEvent):
    """The selector rejected a freshly produced output (§5 rules)."""

    output_path: str = ""
    reason: str = ""
    anchor_kind: str = "sub-job"

    def render(self) -> str:
        if self.anchor_kind == "whole-job":
            return f"not keeping whole-job output {self.output_path}: {self.reason}"
        return f"discarded sub-job output {self.output_path}: {self.reason}"


@dataclass
class MatchScanned(ReStoreEvent):
    """The matcher finished scanning the repository for one job.

    Emitted on the bus only (not the legacy drain channel): it is
    telemetry about *how* the match pipeline ran — how far the
    fingerprint index pruned the candidate list and how many pairwise
    Algorithm-1 traversals were actually spent — not a reuse decision.
    """

    job_id: str = ""
    #: repository size when the job was matched
    entries_total: int = 0
    #: entries that survived fingerprint pruning (summed over passes)
    candidates: int = 0
    #: entries dismissed without a pairwise traversal
    pruned: int = 0
    #: pairwise plan traversals actually run
    traversals: int = 0
    #: rewrite passes (rescans) the job needed
    passes: int = 0
    #: rewrites + eliminations this scan produced
    matches: int = 0

    def render(self) -> str:
        return (
            f"{self.job_id}: scanned {self.entries_total} entries in "
            f"{self.passes} pass(es): {self.candidates} candidate(s), "
            f"{self.pruned} pruned, {self.traversals} traversal(s), "
            f"{self.matches} match(es)"
        )


@dataclass
class DeltaFallback(ReStoreEvent):
    """An append-grown entry could not be refreshed incrementally.

    The probe falls back to a full rerun (the stale entry is condemned
    so the rerun re-registers fresh state); the event records *why*,
    so the ``incremental`` bench can count the headroom a finer delta
    model (i2MapReduce-style keyed re-grouping) would unlock.
    """

    job_id: str = ""
    entry_id: str = ""
    #: the appended input that triggered the delta attempt
    path: str = ""
    #: "ineligible-chain" (GROUP/JOIN/LIMIT/multi-input shapes),
    #: "multi-load-probe", "tail-boundary" (append split a record),
    #: "refresh-in-flight", "no-recorded-extent", or "delta-disabled"
    reason: str = ""

    def render(self) -> str:
        return (
            f"{self.job_id}: delta fallback for {self.entry_id} "
            f"on {self.path}: {self.reason}"
        )


@dataclass
class EntryRefreshed(ReStoreEvent):
    """A delta run was merged into an entry's stored output.

    The appended tail of the entry's input ran through the sub-plan
    alone; the resulting delta rows were appended onto the stored
    output file and the entry's recorded extents advanced — the entry
    now answers probes over the grown input without a full rerun.
    """

    job_id: str = ""
    entry_id: str = ""
    output_path: str = ""
    delta_bytes: int = 0
    delta_records: int = 0

    def render(self) -> str:
        return (
            f"{self.job_id}: refreshed {self.entry_id} with "
            f"{self.delta_records} delta record(s) "
            f"({self.delta_bytes} bytes) onto {self.output_path}"
        )


@dataclass
class EntryEvicted(ReStoreEvent):
    """An eviction policy removed an entry (§5 rules 3-4, capacity)."""

    entry_id: str = ""
    policy: str = ""
    output_path: str = ""

    def render(self) -> str:
        return f"evicted {self.entry_id} ({self.policy}): {self.output_path}"


@dataclass
class SnapshotTaken(ReStoreEvent):
    """The persister wrote a repository snapshot and reset the journal.

    Emitted on the *persister's* bus (not the manager bus): standby
    replicas and durability tooling subscribe there, keeping the
    manager bus a pure reuse-decision channel.
    """

    path: str = ""
    entries: int = 0
    bytes: int = 0

    def render(self) -> str:
        return (
            f"snapshot: {self.entries} entries ({self.bytes} bytes) "
            f"to {self.path}"
        )


@dataclass
class JournalAppended(ReStoreEvent):
    """The persister flushed buffered mutation records to the journal
    (emitted on the persister's bus; standby replicas tail on it)."""

    path: str = ""
    records: int = 0
    bytes: int = 0

    def render(self) -> str:
        return f"journal: {self.records} record(s) ({self.bytes} bytes) to {self.path}"


@dataclass
class PersistenceDegraded(ReStoreEvent):
    """A journal/snapshot write failed and the persister's circuit
    breaker opened: mutation records buffer in memory (the reuse
    pipeline keeps serving) until a probe write succeeds.

    Emitted on the persister's bus, like the other durability events.
    """

    path: str = ""
    error: str = ""
    #: records parked in the in-memory backlog when the breaker opened
    buffered: int = 0

    def render(self) -> str:
        return (
            f"persistence degraded at {self.path}: {self.error} "
            f"({self.buffered} record(s) buffered)"
        )


@dataclass
class PersistenceRecovered(ReStoreEvent):
    """A probe write succeeded: the breaker closed and the buffered
    backlog drained to the journal (emitted on the persister's bus)."""

    path: str = ""
    #: backlog records flushed on recovery
    flushed: int = 0
    #: failed write attempts while the breaker was open
    failures: int = 0

    def render(self) -> str:
        return (
            f"persistence recovered at {self.path}: flushed "
            f"{self.flushed} record(s) after {self.failures} failure(s)"
        )


@dataclass
class EntryQuarantined(ReStoreEvent):
    """A stored entry failed integrity checks at match time (plan
    fingerprint mismatch, corrupt cold bytes) and was condemned
    instead of served; the probe proceeds as a match miss."""

    entry_id: str = ""
    output_path: str = ""
    reason: str = ""

    def render(self) -> str:
        return (
            f"quarantined {self.entry_id} ({self.reason}): "
            f"{self.output_path}"
        )


@dataclass
class WorkerKilled(ReStoreEvent):
    """A worker process was forcibly terminated (hung past its
    exchange timeout, or alive at a non-waiting shutdown)."""

    worker: str = ""
    pid: int = 0
    reason: str = ""

    def render(self) -> str:
        return f"killed worker {self.worker} (pid {self.pid}): {self.reason}"


@dataclass
class CoordinatorHeartbeat(ReStoreEvent):
    """One liveness tick of the coordinator's health channel (emitted
    on the persister's bus; the standby watchdog counts these)."""

    tick: int = 0

    def render(self) -> str:
        return f"coordinator heartbeat #{self.tick}"


@dataclass
class StandbyPromoted(ReStoreEvent):
    """The warm standby became the authoritative repository after the
    coordinator's health channel went silent."""

    entries: int = 0
    #: journal records the replica had applied at promotion
    records_applied: int = 0
    missed_beats: int = 0

    def render(self) -> str:
        return (
            f"standby promoted: {self.entries} entries, "
            f"{self.records_applied} record(s) applied, after "
            f"{self.missed_beats} missed heartbeat(s)"
        )


EventTypes = Union[Type[ReStoreEvent], Tuple[Type[ReStoreEvent], ...]]


@dataclass
class _Subscription:
    callback: Callable[[ReStoreEvent], None]
    event_types: Optional[Tuple[Type[ReStoreEvent], ...]]
    predicate: Optional[Callable[[ReStoreEvent], bool]]
    active: bool = True

    def wants(self, event: ReStoreEvent) -> bool:
        if not self.active:
            return False
        if self.event_types is not None and not isinstance(event, self.event_types):
            return False
        if self.predicate is not None and not self.predicate(event):
            return False
        return True


class EventBus:
    """Synchronous publish/subscribe fan-out for :class:`ReStoreEvent`.

    Subscribers are invoked in subscription order, on the emitting
    thread; ``emit`` stamps each event with a strictly increasing
    ``seq`` before dispatch.  The bus is thread-safe, and callbacks
    run *outside* the bus lock — a subscriber may freely call back
    into the manager or the bus without risking lock-order deadlocks.
    The trade-off: when several threads emit concurrently, a single
    subscriber can observe events slightly out of ``seq`` order; the
    stamped ``seq`` is the authoritative global order for buffering
    subscribers.
    """

    def __init__(self):
        self._subscriptions: List[_Subscription] = []
        self._seq = itertools.count(1)
        self._lock = threading.RLock()

    def subscribe(
        self,
        callback: Callable[[ReStoreEvent], None],
        event_types: Optional[EventTypes] = None,
        predicate: Optional[Callable[[ReStoreEvent], bool]] = None,
    ) -> Callable[[], None]:
        """Register ``callback``; returns an unsubscribe function.

        ``event_types`` restricts delivery to instances of the given
        event class(es); ``predicate`` adds an arbitrary filter.
        """
        if event_types is not None and not isinstance(event_types, tuple):
            event_types = (event_types,)
        subscription = _Subscription(callback, event_types, predicate)
        with self._lock:
            self._subscriptions.append(subscription)

        def unsubscribe() -> None:
            subscription.active = False
            with self._lock:
                if subscription in self._subscriptions:
                    self._subscriptions.remove(subscription)

        return unsubscribe

    def collect(
        self,
        event_types: Optional[EventTypes] = None,
        predicate: Optional[Callable[[ReStoreEvent], bool]] = None,
    ) -> List[ReStoreEvent]:
        """Subscribe a growing list and return it (handy for tooling
        and tests: ``seen = bus.collect(RewriteApplied)``)."""
        seen: List[ReStoreEvent] = []
        self.subscribe(seen.append, event_types=event_types, predicate=predicate)
        return seen

    def emit(self, event: ReStoreEvent) -> ReStoreEvent:
        with self._lock:
            event.seq = next(self._seq)
            subscriptions = list(self._subscriptions)
        for subscription in subscriptions:
            if subscription.wants(event):
                subscription.callback(event)
        return event


def render_events(events: Iterable[ReStoreEvent]) -> List[str]:
    """Legacy string projection of an event stream."""
    return [event.render() for event in events]
