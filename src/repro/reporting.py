"""Human-readable reports over runs, workflows and the repository.

Rendering helpers used by the CLI, the examples, and anyone embedding
the library who wants Pig-style job summaries without digging through
`JobStats` objects.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List

from repro.core.manager import ReStoreManager
from repro.core.repository import Repository
from repro.events import ReStoreEvent
from repro.mapreduce.job import Workflow
from repro.mapreduce.stats import JobStats, WorkflowStats
from repro.pig.engine import PigRunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session import ReStoreSession


def format_bytes(n: float) -> str:
    """1536 -> '1.5 KB' (binary units, one decimal)."""
    value = float(n)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if value < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    return f"{value:.1f} TB"


def format_duration(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


def job_report(stats: JobStats) -> str:
    """One job's statistics, Hadoop job-summary style."""
    lines = [f"job {stats.job_id} ({stats.name or 'unnamed'})"]
    lines.append(
        f"  input:   {format_bytes(stats.input_bytes)} "
        f"/ {stats.input_records} records from {len(stats.load_bytes)} path(s)"
    )
    if stats.shuffle_records:
        lines.append(
            f"  shuffle: {format_bytes(stats.shuffle_bytes)} "
            f"/ {stats.shuffle_records} records "
            f"-> {stats.reduce_groups} groups"
        )
    lines.append(
        f"  output:  {format_bytes(stats.output_bytes)} "
        f"/ {stats.output_records} records"
    )
    if stats.side_store_bytes:
        side = [s for s in stats.stores if s.side]
        lines.append(
            f"  ReStore: {len(side)} injected store(s), "
            f"{format_bytes(stats.side_store_bytes)}"
        )
    if stats.sim is not None:
        bd = stats.sim
        lines.append(
            f"  time:    {format_duration(bd.total)} "
            f"(startup {bd.t_startup:.0f}s, load {bd.t_load:.0f}s, "
            f"ops {bd.t_ops:.0f}s, sort {bd.t_sort:.0f}s, "
            f"store {bd.t_store:.0f}s, injected {bd.t_side_stores:.0f}s; "
            f"{bd.n_map_tasks} maps / {bd.n_reduce_tasks} reduces)"
        )
    return "\n".join(lines)


def workflow_report(workflow: Workflow, stats: WorkflowStats) -> str:
    """Per-job breakdown plus the Equation 1 critical-path total."""
    lines = [
        f"workflow {workflow.name!r}: {len(workflow.jobs)} job(s), "
        f"{stats.n_jobs_executed} executed, "
        f"{len(stats.eliminated_jobs)} answered from the repository"
    ]
    for job in workflow.topo_order():
        if job.job_id in stats.job_stats:
            lines.append(job_report(stats.job_stats[job.job_id]))
        else:
            lines.append(
                f"job {job.job_id}: eliminated "
                f"(reused {job.eliminated_by or 'stored result'})"
            )
    lines.append(
        f"total simulated time (critical path): "
        f"{format_duration(stats.sim_seconds)}"
    )
    return "\n".join(lines)


def event_report(events: Iterable[ReStoreEvent]) -> str:
    """Typed event stream rendered one line per event, with the event
    class name as a prefix so streams are grep-able by type."""
    lines = [
        f"  [{event.seq:>3}] {type(event).__name__}: {event.render()}"
        for event in events
    ]
    return "\n".join(lines) if lines else "  (no events)"


def run_report(result: PigRunResult) -> str:
    """Full report for one script execution."""
    parts = [workflow_report(result.workflow, result.stats)]
    if result.events:
        parts.append("ReStore activity:")
        parts.append(event_report(result.events))
    for path, rows in result.outputs.items():
        parts.append(f"output {path}: {len(rows)} row(s)")
    return "\n".join(parts)


def repository_report(repository: Repository) -> str:
    """Scan-ordered repository inventory with statistics."""
    lines = [
        f"repository: {len(repository)} entr"
        f"{'y' if len(repository) == 1 else 'ies'}, "
        f"{format_bytes(repository.total_stored_bytes)} stored"
    ]
    for entry in repository.ordered_entries():
        stats = entry.stats
        lines.append(
            f"  {entry.entry_id} [{entry.anchor_kind}] "
            f"{format_bytes(stats.input_bytes)} -> "
            f"{format_bytes(stats.output_bytes)} "
            f"(ratio {stats.io_ratio:.1f}, est {stats.exec_time_s:.0f}s, "
            f"used {entry.use_count}x) @ {entry.output_path}"
        )
    return "\n".join(lines)


def match_pipeline_report(manager: ReStoreManager) -> str:
    """The fingerprint-index telemetry: how much of each repository
    scan the index pruned before the pairwise traversal ran."""
    totals = manager.match_totals
    index = manager.repository.index_stats
    lines = [
        f"match pipeline: {totals.jobs_scanned} job(s) scanned in "
        f"{totals.passes} pass(es), {totals.traversals} pairwise "
        f"traversal(s)",
        f"  index: {totals.candidates_examined} candidate(s) examined, "
        f"{totals.candidates_pruned} pruned "
        f"({100.0 * totals.prune_ratio:.1f}% of {totals.entries_seen} "
        f"entries seen)",
        f"  exact-fingerprint lookups: {index.exact_hits}/"
        f"{index.exact_lookups} hit(s); ordering upkeep: "
        f"{index.subsume_checks} traversal(s), "
        f"{index.subsume_pruned} pair(s) pruned",
    ]
    return "\n".join(lines)


def manager_report(manager: ReStoreManager) -> str:
    """Repository inventory plus manager counters."""
    lines = [repository_report(manager.repository)]
    lines.append(match_pipeline_report(manager))
    lines.append(
        f"manager: {manager.rewrite_count} partial rewrite(s), "
        f"{manager.elimination_count} whole-job elimination(s), "
        f"{manager.quarantine_count} quarantined entr"
        f"{'y' if manager.quarantine_count == 1 else 'ies'}, "
        f"clock={manager.clock}"
    )
    return "\n".join(lines)


def session_report(session: "ReStoreSession") -> str:
    """Session summary: run totals, repository inventory, counters."""
    executed = sum(r.stats.n_jobs_executed for r in session.results)
    eliminated = sum(len(r.stats.eliminated_jobs) for r in session.results)
    sim_total = sum(r.sim_seconds for r in session.results)
    lines = [
        f"session: {len(session.results)} run(s), {executed} job(s) "
        f"executed, {eliminated} answered from the repository, "
        f"{format_duration(sim_total)} simulated",
    ]
    if session.manager is not None:
        lines.append(manager_report(session.manager))
    else:
        lines.append("ReStore: disabled")
    if session.persister is not None:
        persister = session.persister
        state = "open" if persister.breaker_open else "closed"
        lines.append(
            f"persistence: breaker {state}, "
            f"{persister.breaker_trips} trip(s), "
            f"{persister.buffered_records} buffered record(s)"
        )
    return "\n".join(lines)


def resilience_report(stats) -> str:
    """One line of self-healing counters from a
    :class:`~repro.service.jobservice.ServiceStats` (the bench summary
    and the chaos tests read this surface)."""
    return (
        f"resilience: {stats.retried} retried, {stats.timeouts} "
        f"timeout(s), {stats.quarantined_entries} quarantined, "
        f"{stats.promotions} promotion(s), {stats.breaker_trips} "
        f"breaker trip(s)"
    )


def comparison_table(
    labels: List[str], times_seconds: List[float], baseline_index: int = 0
) -> str:
    """Small speedup table against a chosen baseline."""
    if len(labels) != len(times_seconds):
        raise ValueError("labels and times must align")
    baseline = times_seconds[baseline_index]
    width = max(len(label) for label in labels)
    lines = []
    for label, seconds in zip(labels, times_seconds):
        speedup = baseline / seconds if seconds else float("inf")
        lines.append(
            f"{label.ljust(width)}  {format_duration(seconds):>10}  "
            f"{speedup:6.2f}x"
        )
    return "\n".join(lines)
