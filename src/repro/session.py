"""ReStoreSession: the one-object facade over the whole stack.

The paper's system is one coherent pipeline — Pig compiler, Hadoop
executor, and the ReStore manager wired into the job-submission loop
(§6) — and this module makes the public API match: one session owns
the simulated DFS, the cluster description, **one shared**
:class:`~repro.costmodel.model.CostModel`, the repository, the
manager, and the Pig server, all wired consistently.

Quick start::

    from repro import ReStoreSession

    with ReStoreSession() as session:
        session.write_file("data/users", "alice\\t1\\nbob\\t2\\n")
        result = session.run(
            "A = load 'data/users' as (name, uid:int);"
            "B = filter A by uid > 1; store B into 'out';"
        )
        print(result.outputs["out"])

Construction alternatives: the fluent :meth:`ReStoreSession.builder`,
or JSON-shaped config via :meth:`ReStoreSession.from_dict` (plugin
names resolve through the heuristic/selector/eviction registries).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Mapping, Optional, Union

from repro.core.eviction import EvictionPolicy
from repro.core.heuristics import Heuristic
from repro.core.manager import (
    MatchPipelineTotals,
    ReStoreConfig,
    ReStoreManager,
)
from repro.core.repository import Repository
from repro.core.selector import Selector
from repro.costmodel.model import CostModel
from repro.dfs.filesystem import DistributedFileSystem
from repro.events import EventBus
from repro.mapreduce.cluster import ClusterConfig
from repro.persistence.durability import (
    PersistenceConfig,
    RepositoryPersister,
    announce_scrub_condemnations,
    recover,
)
from repro.pig.engine import PigRunResult, PigServer


class ReStoreSession:
    """Owns and wires DFS + cluster + cost model + repository +
    manager + server; exposes ``run`` / ``explain`` / ``report``.

    The session guarantees the single-cost-model invariant: the
    manager's standalone-time estimates, the selector's Rule-2 checks,
    and the Hadoop simulator all consult the *same* ``CostModel``
    instance, so repository statistics can never disagree with the
    simulated execution they describe.
    """

    def __init__(
        self,
        dfs: Optional[DistributedFileSystem] = None,
        *,
        datanodes: Optional[int] = None,
        cluster: Optional[ClusterConfig] = None,
        cost_model: Optional[CostModel] = None,
        repository: Optional[Repository] = None,
        config: Optional[ReStoreConfig] = None,
        manager: Optional[ReStoreManager] = None,
        persistence: Optional[PersistenceConfig] = None,
        restore_enabled: bool = True,
        optimize: bool = True,
        default_parallel: int = 28,
        session_id: str = "",
    ):
        #: tenant identity for multi-session deployments.  When several
        #: sessions share one manager (e.g. under a JobService), each
        #: session's runs execute inside ``manager.session_scope`` so
        #: its events are stamped and drained without cross-talk.  The
        #: default "" keeps single-session behaviour unchanged.
        self.session_id = session_id
        self.cluster = cluster or ClusterConfig()
        if manager is not None:
            # Adopt a pre-built manager (e.g. restored from persisted
            # state): inherit its DFS and cost model, and reject
            # arguments the adoption would silently override.
            if repository is not None or config is not None:
                raise ValueError(
                    "manager= already carries a repository and config; "
                    "pass either a manager or repository=/config=, not both"
                )
            if dfs is not None and dfs is not manager.dfs:
                raise ValueError(
                    "dfs= differs from manager.dfs; the session and its "
                    "manager must share one filesystem"
                )
            dfs = manager.dfs
        if dfs is None:
            dfs = DistributedFileSystem(
                n_datanodes=datanodes or self.cluster.n_worker_nodes
            )
        self.dfs = dfs
        #: the attached RepositoryPersister when persistence= is given
        self.persister: Optional[RepositoryPersister] = None
        recovered = None
        if persistence is not None:
            if manager is not None:
                raise ValueError(
                    "persistence= builds its own durable manager state; "
                    "attach a RepositoryPersister to the manager directly "
                    "instead of passing both"
                )
            if repository is not None:
                raise ValueError(
                    "persistence= recovers its own repository from the "
                    "snapshot/journal; don't also pass repository="
                )
            if not restore_enabled:
                raise ValueError("persistence= requires restore_enabled=True")
            # recover before the manager exists: the restored
            # repository becomes the manager's repository, and the id
            # floors land in the DFS before any job allocates
            recovered = recover(persistence, self.dfs)
            repository = recovered.repository
        if manager is not None:
            self.cost_model = cost_model or manager.cost_model
            self.config = manager.config
            self.manager: Optional[ReStoreManager] = manager
        else:
            self.cost_model = cost_model or CostModel(cluster=self.cluster)
            self.config = config or ReStoreConfig()
            self.manager = (
                ReStoreManager(
                    self.dfs,
                    cost_model=self.cost_model,
                    repository=repository,
                    config=self.config,
                )
                if restore_enabled
                else None
            )
        if recovered is not None and self.manager is not None:
            self.manager.kept_paths.update(recovered.kept_paths)
            self.manager.clock = max(self.manager.clock, recovered.clock)
            self.persister = RepositoryPersister(
                self.manager, persistence, recovered=recovered
            )
            announce_scrub_condemnations(self.manager, recovered)
        self.server = PigServer(
            self.dfs,
            cluster=self.cluster,
            cost_model=self.cost_model,
            restore=self.manager,
            optimize=optimize,
            default_parallel=default_parallel,
            fast_data_plane=self.config.fast_data_plane,
            batch_size=self.config.batch_size,
            payload_reuse=self.config.payload_reuse,
        )
        self._events = self.manager.events if self.manager else EventBus()
        self._closed = False
        self.results: List[PigRunResult] = []

    # -- construction helpers ---------------------------------------------------

    @classmethod
    def builder(cls) -> "SessionBuilder":
        return SessionBuilder()

    @classmethod
    def from_dict(cls, data: Mapping) -> "ReStoreSession":
        """Build a session from JSON-shaped configuration::

            ReStoreSession.from_dict({
                "datanodes": 4,
                "restore": {"heuristic": "conservative",
                            "eviction_policies": ["time-window:4"]},
            })

        Top-level keys: ``datanodes``, ``restore`` (a
        :meth:`ReStoreConfig.from_dict` mapping, or ``False`` to
        disable ReStore), ``optimize``, ``default_parallel``.
        """
        known = {"datanodes", "restore", "optimize", "default_parallel"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown session keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        restore = data.get("restore", {})
        if restore is False:
            config, enabled = None, False
        else:
            config, enabled = ReStoreConfig.from_dict(restore or {}), True
        return cls(
            datanodes=data.get("datanodes"),
            config=config,
            restore_enabled=enabled,
            optimize=data.get("optimize", True),
            default_parallel=data.get("default_parallel", 28),
        )

    # -- component access --------------------------------------------------------

    @property
    def events(self) -> EventBus:
        """The manager's typed event bus (an inert bus when ReStore is
        disabled, so subscriptions never need guarding)."""
        return self._events

    @property
    def repository(self) -> Optional[Repository]:
        return self.manager.repository if self.manager else None

    @property
    def match_stats(self) -> Optional["MatchPipelineTotals"]:
        """Cumulative match-pipeline telemetry (candidates pruned,
        traversals run); None when ReStore is disabled.  Per-job
        figures stream live as :class:`repro.events.MatchScanned`
        events on :attr:`events`."""
        return self.manager.match_totals if self.manager else None

    @property
    def restore_enabled(self) -> bool:
        return self.manager is not None

    # -- lifecycle ----------------------------------------------------------------

    def __enter__(self) -> "ReStoreSession":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """End the session.  Subsequent ``run``/``explain`` calls
        raise; the DFS and repository objects stay readable so state
        can be inspected or persisted after closing.  A durable
        session flushes its journal and detaches the persister."""
        if self.persister is not None:
            self.persister.close()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- operations ----------------------------------------------------------------

    def write_file(self, path: str, payload, overwrite: bool = True) -> None:
        """Load data into the session's DFS (convenience passthrough)."""
        self._check_open()
        self.dfs.write_file(path, payload, overwrite=overwrite)

    @contextmanager
    def _scope(self):
        if self.manager is not None:
            with self.manager.session_scope(self.session_id):
                yield
        else:
            yield

    def execute(self, request) -> "JobOutcome":
        """Run one typed :class:`~repro.service.api.JobRequest`
        in-process — the single submission surface every ``run`` /
        ``run_workflow`` call (and the thread-mode service) converges
        on.  Returns a :class:`~repro.service.api.JobOutcome`."""
        from repro.service.api import JobOutcome

        self._check_open()
        if request.session_id and request.session_id != self.session_id:
            raise ValueError(
                f"request is addressed to session {request.session_id!r} "
                f"but this session is {self.session_id!r}"
            )
        with self._scope():
            if request.source is not None:
                result = self.server.run(request.source, name=request.name)
            else:
                result = self.server.run_workflow(request.workflow)
        self.results.append(result)
        return JobOutcome.from_result(result, session_id=self.session_id)

    def run(self, source: str, name: str = "") -> PigRunResult:
        """Compile and execute a Pig Latin script."""
        from repro.service.api import JobRequest

        return self.execute(
            JobRequest.from_source(
                source, session_id=self.session_id, name=name
            )
        ).to_result()

    def run_workflow(self, workflow) -> PigRunResult:
        """Execute a pre-compiled workflow (service/benchmark path)."""
        from repro.service.api import JobRequest

        return self.execute(
            JobRequest.from_workflow(workflow, session_id=self.session_id)
        ).to_result()

    def explain(self, source: str) -> str:
        """Render the compiled workflow like Pig's EXPLAIN."""
        self._check_open()
        return self.server.explain(source)

    def report(self) -> str:
        """Human-readable session summary: runs, repository inventory,
        and manager counters."""
        from repro.reporting import session_report

        return session_report(self)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        entries = len(self.repository) if self.repository is not None else 0
        return (
            f"ReStoreSession({state}, runs={len(self.results)}, "
            f"restore={'on' if self.manager else 'off'}, entries={entries})"
        )


class SessionBuilder:
    """Fluent construction of a :class:`ReStoreSession`::

        session = (ReStoreSession.builder()
                   .datanodes(4)
                   .heuristic("conservative")
                   .selector("rules")
                   .evict("time-window:4", "input-modified")
                   .build())

    Plugin setters accept registry names (resolved at ``build()``, so
    unknown names fail with the full list of valid entries) or
    instances.
    """

    def __init__(self):
        self._dfs: Optional[DistributedFileSystem] = None
        self._datanodes: Optional[int] = None
        self._cluster: Optional[ClusterConfig] = None
        self._cost_model: Optional[CostModel] = None
        self._repository: Optional[Repository] = None
        self._manager: Optional[ReStoreManager] = None
        self._persistence: Optional[PersistenceConfig] = None
        self._config: Optional[ReStoreConfig] = None
        self._config_kwargs: dict = {}
        self._eviction: List[Union[str, EvictionPolicy]] = []
        self._restore_enabled = True
        self._optimize = True
        self._default_parallel = 28
        self._session_id = ""

    # -- infrastructure ---------------------------------------------------------

    def dfs(self, dfs: DistributedFileSystem) -> "SessionBuilder":
        self._dfs = dfs
        return self

    def datanodes(self, n: int) -> "SessionBuilder":
        self._datanodes = n
        return self

    def cluster(self, cluster: ClusterConfig) -> "SessionBuilder":
        self._cluster = cluster
        return self

    def cost_model(self, cost_model: CostModel) -> "SessionBuilder":
        self._cost_model = cost_model
        return self

    def repository(self, repository: Repository) -> "SessionBuilder":
        self._repository = repository
        return self

    def manager(self, manager: ReStoreManager) -> "SessionBuilder":
        """Adopt a pre-built manager (e.g. a JobService's): the session
        inherits its DFS, cost model, repository, and config."""
        self._manager = manager
        return self

    def persistence(self, config: PersistenceConfig) -> "SessionBuilder":
        """Make the repository durable: recover from the configured
        snapshot/journal at build time and journal every mutation."""
        self._persistence = config
        return self

    def optimizer(self, enabled: bool) -> "SessionBuilder":
        self._optimize = enabled
        return self

    def default_parallel(self, n: int) -> "SessionBuilder":
        self._default_parallel = n
        return self

    def session_id(self, session_id: str) -> "SessionBuilder":
        """Name this session for multi-tenant event isolation."""
        self._session_id = session_id
        return self

    # -- ReStore behaviour -------------------------------------------------------

    def config(self, config: ReStoreConfig) -> "SessionBuilder":
        """Use a complete config (mutually exclusive with the
        per-field setters below)."""
        self._config = config
        return self

    def heuristic(self, heuristic: Union[str, Heuristic]) -> "SessionBuilder":
        self._config_kwargs["heuristic"] = heuristic
        return self

    def selector(self, selector: Union[str, Selector]) -> "SessionBuilder":
        self._config_kwargs["selector"] = selector
        return self

    def evict(
        self, *policies: Union[str, EvictionPolicy]
    ) -> "SessionBuilder":
        self._eviction.extend(policies)
        return self

    def register_whole_jobs(self, policy: str) -> "SessionBuilder":
        self._config_kwargs["register_whole_jobs"] = policy
        return self

    def rewrite(self, enabled: bool) -> "SessionBuilder":
        self._config_kwargs["rewrite_enabled"] = enabled
        return self

    def indexed_matching(self, enabled: bool) -> "SessionBuilder":
        self._config_kwargs["indexed_matching"] = enabled
        return self

    def fast_data_plane(self, enabled: bool) -> "SessionBuilder":
        """Toggle the zero-copy execution data plane (default on)."""
        self._config_kwargs["fast_data_plane"] = enabled
        return self

    def batch_size(self, n: int) -> "SessionBuilder":
        """Chunk size of the batched operator-evaluation tier
        (0 = per-row fast-plane dispatch)."""
        self._config_kwargs["batch_size"] = n
        return self

    def payload_reuse(self, enabled: bool) -> "SessionBuilder":
        """Toggle serialized-payload cloning for copy-style stores."""
        self._config_kwargs["payload_reuse"] = enabled
        return self

    def inject(self, enabled: bool) -> "SessionBuilder":
        self._config_kwargs["inject_enabled"] = enabled
        return self

    def without_restore(self) -> "SessionBuilder":
        self._restore_enabled = False
        return self

    # -- terminal ----------------------------------------------------------------

    def build(self) -> ReStoreSession:
        self._validate()
        config = self._config
        if config is None and (self._config_kwargs or self._eviction):
            kwargs = dict(self._config_kwargs)
            if self._eviction:
                kwargs["eviction_policies"] = list(self._eviction)
            config = ReStoreConfig(**kwargs)
        session = ReStoreSession(
            dfs=self._dfs,
            datanodes=self._datanodes,
            cluster=self._cluster,
            cost_model=self._cost_model,
            repository=self._repository,
            manager=self._manager,
            config=config,
            persistence=self._persistence,
            restore_enabled=self._restore_enabled,
            optimize=self._optimize,
            default_parallel=self._default_parallel,
            session_id=self._session_id,
        )
        return session

    def _validate(self) -> None:
        """Reject conflicting setter combinations here, at build time,
        with messages naming both offending builder calls."""
        if self._config is not None and (self._config_kwargs or self._eviction):
            raise ValueError(
                "pass either a complete config() or individual "
                "heuristic()/selector()/evict()/... setters, not both"
            )
        if self._persistence is not None:
            if self._repository is not None:
                raise ValueError(
                    "persistence() and repository() conflict: "
                    "persistence() recovers its own repository from the "
                    "snapshot/journal, so a repository() it would "
                    "silently discard is a configuration error — drop "
                    "one of the two calls"
                )
            if self._manager is not None:
                raise ValueError(
                    "persistence() and manager() conflict: the adopted "
                    "manager already owns live repository state; attach "
                    "a RepositoryPersister to that manager directly "
                    "instead of calling persistence()"
                )
            if not self._restore_enabled:
                raise ValueError(
                    "persistence() and without_restore() conflict: a "
                    "durable repository needs the ReStore manager that "
                    "owns it — drop one of the two calls"
                )
        if self._manager is not None:
            if self._repository is not None:
                raise ValueError(
                    "manager() and repository() conflict: the adopted "
                    "manager already carries its repository — drop one "
                    "of the two calls"
                )
            if self._config is not None or self._config_kwargs or self._eviction:
                raise ValueError(
                    "manager() and config()/heuristic()/selector()/"
                    "evict()/... conflict: the adopted manager already "
                    "carries its ReStoreConfig — configure that manager "
                    "instead"
                )
            if self._dfs is not None and self._dfs is not self._manager.dfs:
                raise ValueError(
                    "dfs() and manager() conflict: the dfs() instance "
                    "differs from manager().dfs, and a session must "
                    "share its manager's filesystem — drop the dfs() "
                    "call or pass the manager's own filesystem"
                )
            if not self._restore_enabled:
                raise ValueError(
                    "manager() and without_restore() conflict: adopting "
                    "a manager turns ReStore on — drop one of the two "
                    "calls"
                )
