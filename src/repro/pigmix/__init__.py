"""PigMix benchmark substrate: data generators and query texts."""

from repro.pigmix.datagen import (
    DECLARED_BYTES,
    PigMixConfig,
    PigMixDataGenerator,
    PigMixDataset,
)
from repro.pigmix.queries import (
    PIGMIX_QUERY_NAMES,
    QUERIES,
    VARIANT_NAMES,
    VARIANTS,
    build_query,
)
from repro.pigmix.synthetic import (
    SYNTHETIC_DECLARED_BYTES,
    TABLE2_FIELDS,
    SyntheticConfig,
    SyntheticDataGenerator,
    SyntheticDataset,
    expected_selectivity,
    qf_query,
    qp_query,
)

__all__ = [
    "DECLARED_BYTES",
    "PIGMIX_QUERY_NAMES",
    "PigMixConfig",
    "PigMixDataGenerator",
    "PigMixDataset",
    "QUERIES",
    "SYNTHETIC_DECLARED_BYTES",
    "SyntheticConfig",
    "SyntheticDataGenerator",
    "SyntheticDataset",
    "TABLE2_FIELDS",
    "VARIANTS",
    "VARIANT_NAMES",
    "build_query",
    "expected_selectivity",
    "qf_query",
    "qp_query",
]
