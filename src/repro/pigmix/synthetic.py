"""The synthetic workload of §7.5 (data reduction study).

The paper generates a 200M-row / 40 GB file with 12 fields: field1–
field5 are random 20-character strings (for the Project study) and
field6–field12 are integers whose cardinalities (Table 2) make an
equality predicate select 0.5%, 1%, 5%, 10%, 20%, 50% and 60% of the
rows respectively.  "Cardinality 1.6" (field12) is two values split
60/40, so selecting the majority value keeps 60%.

Query templates:

* QP — project k of the five string fields, group by them, COUNT;
* QF — equality-filter on one of field6..field12, group by field1,
  COUNT.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from repro.costmodel.calibration import GB
from repro.dfs.filesystem import DistributedFileSystem

#: Table 2 of the paper: field name -> (cardinality, % selected)
TABLE2_FIELDS = {
    "field6": (200, 0.5),
    "field7": (100, 1.0),
    "field8": (20, 5.0),
    "field9": (10, 10.0),
    "field10": (5, 20.0),
    "field11": (2, 50.0),
    "field12": (1.6, 60.0),
}

#: declared size of the paper's synthetic instance
SYNTHETIC_DECLARED_BYTES = 40.0 * GB

FIELD_NAMES = [f"field{i}" for i in range(1, 13)]
SCHEMA_TEXT = ", ".join(
    [f"field{i}" for i in range(1, 6)]
    + [f"field{i}:int" for i in range(6, 13)]
)


@dataclass
class SyntheticConfig:
    n_rows: int = 4000
    seed: int = 7
    path: str = "synthetic/data"


@dataclass
class SyntheticDataset:
    config: SyntheticConfig
    path: str = ""
    actual_bytes: int = 0

    @property
    def data_scale(self) -> float:
        return SYNTHETIC_DECLARED_BYTES / max(1, self.actual_bytes)


class SyntheticDataGenerator:
    """Generates the §7.5 table with Table 2's selectivities."""

    def __init__(self, config: SyntheticConfig | None = None):
        self.config = config or SyntheticConfig()

    def _int_field(self, rng: random.Random, name: str) -> int:
        cardinality, _ = TABLE2_FIELDS[name]
        if name == "field12":
            # two values, 60/40: an equality on 0 selects 60%
            return 0 if rng.random() < 0.6 else 1
        return rng.randrange(int(cardinality))

    def rows(self) -> List[str]:
        rng = random.Random(self.config.seed)
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        out = []
        for _ in range(self.config.n_rows):
            strings = [
                "".join(rng.choice(alphabet) for _ in range(20))
                for _ in range(5)
            ]
            ints = [self._int_field(rng, name) for name in FIELD_NAMES[5:]]
            # Zero-padding keeps integer semantics while giving the row
            # the paper's byte proportions: projecting one string field
            # keeps ~18% of the bytes, all five ~74% (§7.5).
            out.append("\t".join(strings + [f"{v:04d}" for v in ints]))
        return out

    def generate(self, dfs: DistributedFileSystem) -> SyntheticDataset:
        dataset = SyntheticDataset(config=self.config)
        dfs.write_file(
            self.config.path, "\n".join(self.rows()) + "\n", overwrite=True
        )
        dataset.path = self.config.path
        dataset.actual_bytes = dfs.file_size(self.config.path)
        return dataset


# -- query templates ---------------------------------------------------------------


def qp_query(dataset: SyntheticDataset, n_fields: int, out: str) -> str:
    """QP: project field1..field<n>, group by them, COUNT (§7.5)."""
    if not 1 <= n_fields <= 5:
        raise ValueError("QP projects between 1 and 5 fields")
    projected = ", ".join(f"field{i}" for i in range(1, n_fields + 1))
    group_key = f"({projected})" if n_fields > 1 else "field1"
    return f"""
A = load '{dataset.path}' as ({SCHEMA_TEXT});
B = foreach A generate {projected};
C = group B by {group_key};
D = foreach C generate COUNT($1);
store D into '{out}';
"""


def qf_query(
    dataset: SyntheticDataset, field_name: str, out: str, value: int = 0
) -> str:
    """QF: equality filter on one of field6..field12, group, COUNT."""
    if field_name not in TABLE2_FIELDS:
        raise ValueError(
            f"QF filters on one of {sorted(TABLE2_FIELDS)}, not {field_name!r}"
        )
    return f"""
A = load '{dataset.path}' as ({SCHEMA_TEXT});
B = filter A by {field_name} == {value};
C = group B by field1;
D = foreach C generate COUNT($1);
store D into '{out}';
"""


def expected_selectivity(field_name: str) -> float:
    """Fraction of rows an equality predicate keeps (Table 2)."""
    return TABLE2_FIELDS[field_name][1] / 100.0
