"""PigMix queries L2–L8 and L11 plus the paper's variants.

The paper evaluates the PigMix subset "L2–L8 and L11", which "test a
wide range of features and operators ... Join, Group, CoGroup, Filter,
Distinct, and Union" (§7), and builds variant workloads for the
whole-job reuse experiment (§7.1): L3 variants change the aggregation
function, L11 variants change the unioned data sets.

Queries are expressed in the Pig Latin subset this repo implements and
parameterized by the dataset's table paths and an output path.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.pigmix.datagen import PigMixDataGenerator, PigMixDataset

PV = PigMixDataGenerator.PAGE_VIEWS_SCHEMA
USERS = PigMixDataGenerator.USERS_SCHEMA
WIDEROW = PigMixDataGenerator.WIDEROW_SCHEMA


def _prelude(paths: Dict[str, str]) -> Dict[str, str]:
    return {
        "pv": paths["page_views"],
        "users": paths["users"],
        "power_users": paths["power_users"],
        "widerow": paths["widerow"],
    }


def l2(paths: Dict[str, str], out: str) -> str:
    """Scan + project + selective join with power_users (PigMix L2;
    the paper's Q1 is this query with the users table)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load '{p["power_users"]}' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
store C into '{out}';
"""


def l3(paths: Dict[str, str], out: str, agg: str = "SUM") -> str:
    """Join + group + aggregate (PigMix L3; the paper's Q2 shape).

    ``agg`` parameterizes the L3 variants of §7.1 (L3a/b/c "changed
    the aggregation function").
    """
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load '{p["power_users"]}' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name, B by user;
D = group C by $0;
E = foreach D generate group, {agg}(C.est_revenue);
store E into '{out}';
"""


def l4(paths: Dict[str, str], out: str) -> str:
    """Project + distinct + group + count (distinct aggregate)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, action;
C = distinct B;
D = group C by user;
E = foreach D generate group, COUNT(C.action);
store E into '{out}';
"""


def l5(paths: Dict[str, str], out: str) -> str:
    """Anti-join: users that never viewed a page (tiny output)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user;
alpha = load '{p["users"]}' as ({USERS});
beta = foreach alpha generate name;
C = join beta by name left outer, B by user;
D = filter C by user is null;
E = foreach D generate name;
store E into '{out}';
"""


def l6(paths: Dict[str, str], out: str) -> str:
    """Fine-grained group: large reduce-side group output (the paper's
    HA outlier — storing the Group result in the reducer is expensive)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, action, timestamp, est_revenue;
C = group B by (user, action);
D = foreach C generate group, SUM(B.est_revenue);
store D into '{out}';
"""


def l7(paths: Dict[str, str], out: str) -> str:
    """COGROUP of page_views with users."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, est_revenue;
alpha = load '{p["users"]}' as ({USERS});
beta = foreach alpha generate name, city;
C = cogroup B by user, beta by name;
D = foreach C generate group, SUM(B.est_revenue), COUNT(beta.city);
store D into '{out}';
"""


def l8(paths: Dict[str, str], out: str) -> str:
    """GROUP ALL: global aggregates (tiny output, 27 B in Table 1)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, est_revenue, timestamp;
C = group B all;
D = foreach C generate SUM(B.est_revenue), AVG(B.timestamp), COUNT(B.user);
store D into '{out}';
"""


def l11(
    paths: Dict[str, str],
    out: str,
    left: str = "page_views",
    right: str = "widerow",
) -> str:
    """Distinct users from two sources, unioned and deduplicated.

    Compiles to three MapReduce jobs where the third depends on the
    other two — exactly the workflow shape §7.1 describes.  ``left``
    and ``right`` pick the sources for the L11 variants ("changed the
    data sets that are combined").
    """
    schemas = {
        "page_views": (PV, "user"),
        "widerow": (WIDEROW, "user"),
        "users": (USERS, "name"),
        "power_users": (USERS, "name"),
    }
    lschema, lfield = schemas[left]
    rschema, rfield = schemas[right]
    return f"""
A = load '{paths[left]}' as ({lschema});
B = foreach A generate {lfield};
C = distinct B;
alpha = load '{paths[right]}' as ({rschema});
beta = foreach alpha generate {rfield};
gamma = distinct beta;
D = union C, gamma;
E = distinct D;
store E into '{out}';
"""


def l11_threeway(paths: Dict[str, str], out: str) -> str:
    """An L11 variant combining three sources (4 MapReduce jobs)."""
    return f"""
A = load '{paths["page_views"]}' as ({PV});
B = foreach A generate user;
C = distinct B;
alpha = load '{paths["widerow"]}' as ({WIDEROW});
beta = foreach alpha generate user;
gamma = distinct beta;
x = load '{paths["users"]}' as ({USERS});
y = foreach x generate name;
z = distinct y;
D = union C, gamma, z;
E = distinct D;
store E into '{out}';
"""


def l9(paths: Dict[str, str], out: str) -> str:
    """ORDER BY one field (PigMix L9 — excluded from the paper's
    evaluation as "not relevant to result reuse", supported here)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, est_revenue;
C = order B by est_revenue;
store C into '{out}';
"""


def l10(paths: Dict[str, str], out: str) -> str:
    """ORDER BY multiple fields (PigMix L10, same exclusion note)."""
    p = _prelude(paths)
    return f"""
A = load '{p["pv"]}' as ({PV});
B = foreach A generate user, action, est_revenue;
C = order B by user, est_revenue desc;
store C into '{out}';
"""


#: query name -> builder(paths, out) for the paper's PigMix subset
QUERIES: Dict[str, Callable[[Dict[str, str], str], str]] = {
    "L2": l2,
    "L3": l3,
    "L4": l4,
    "L5": l5,
    "L6": l6,
    "L7": l7,
    "L8": l8,
    "L11": l11,
}

#: the L3/L11 variant workload of §7.1 (whole-job reuse experiment)
VARIANTS: Dict[str, Callable[[Dict[str, str], str], str]] = {
    "L3": lambda p, o: l3(p, o, "SUM"),
    "L3a": lambda p, o: l3(p, o, "AVG"),
    "L3b": lambda p, o: l3(p, o, "COUNT"),
    "L3c": lambda p, o: l3(p, o, "MAX"),
    "L11": lambda p, o: l11(p, o, "page_views", "widerow"),
    "L11a": lambda p, o: l11(p, o, "page_views", "users"),
    "L11b": lambda p, o: l11(p, o, "page_views", "power_users"),
    # every variant scans page_views (the dominant table), as in §7.1
    "L11c": l11_threeway,
    "L11d": lambda p, o: l11(p, o, "widerow", "page_views"),
}

#: supported queries the paper excluded from its evaluation (§7)
EXTRA_QUERIES: Dict[str, Callable[[Dict[str, str], str], str]] = {
    "L9": l9,
    "L10": l10,
}

PIGMIX_QUERY_NAMES: List[str] = list(QUERIES)
VARIANT_NAMES: List[str] = list(VARIANTS)


def build_query(name: str, dataset: PigMixDataset, out: str) -> str:
    """Render query *name* against *dataset*, storing into *out*."""
    builders = {**QUERIES, **VARIANTS, **EXTRA_QUERIES}
    try:
        builder = builders[name]
    except KeyError:
        raise KeyError(
            f"unknown PigMix query {name!r}; known: {sorted(builders)}"
        ) from None
    return builder(dataset.paths, out)
